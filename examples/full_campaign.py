#!/usr/bin/env python3
"""Reproduce the paper's Figure 9/10: the full 11x11 Core 2 Duo matrix.

Runs the complete pairwise campaign (all 121 ordered pairings, several
repetitions each) on the simulated Core 2 Duo at 10 cm, prints the
numeric table (Figure 9), the grayscale visualization (Figure 10), the
selected-pairings bar chart (Figure 11), and the paper-vs-measured shape
statistics.

Run:  python examples/full_campaign.py [--repetitions N] [--machine NAME]
                                       [--workers N] [--cache-dir DIR]
Takes a few minutes for the full matrix; ``--workers`` fans the cells
out across processes and ``--cache-dir`` makes reruns near-instant.
"""

import argparse

from repro import load_calibrated_machine, run_campaign, selected_pairings_means
from repro.analysis import (
    bar_chart,
    claims_summary,
    core2duo_claims,
    experiment_report,
    grayscale_matrix,
)
from repro.machines import SELECTED_PAIRINGS, get_reference


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--machine", default="core2duo", help="catalog machine name")
    parser.add_argument("--repetitions", type=int, default=3, help="repetitions per cell")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--workers", type=int, default=0, help="worker processes (0: serial)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="on-disk result cache directory"
    )
    args = parser.parse_args()

    machine = load_calibrated_machine(args.machine, distance_m=0.10)
    print(f"Measuring the full pairwise matrix on {machine.describe()} ...")

    def progress(event_a: str, event_b: str, done: int, total: int) -> None:
        print(f"\r  [{done:3d}/{total}] {event_a}/{event_b}        ", end="", flush=True)

    campaign = run_campaign(
        machine,
        repetitions=args.repetitions,
        seed=args.seed,
        progress=progress,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    execution = campaign.metadata["execution"]
    print(
        f"\n  {execution['cells_simulated']} cell(s) simulated, "
        f"{execution['cache_hits']} from cache, "
        f"{execution['wall_seconds']:.1f} s wall\n"
    )

    reference = get_reference(args.machine, 0.10)
    print(experiment_report(campaign, reference))
    print()
    print(grayscale_matrix(campaign.mean(), campaign.events, "Figure 10 (measured):"))
    print()
    rows = selected_pairings_means(campaign, SELECTED_PAIRINGS)
    print(bar_chart(rows, title="Figure 11 (measured, selected pairings):"))
    if args.machine == "core2duo":
        print()
        print(claims_summary(core2duo_claims(campaign)))


if __name__ == "__main__":
    main()
