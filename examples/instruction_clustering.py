#!/usr/bin/env python3
"""Future-work demo: cluster instructions using SAVAT as the distance.

Section VII: measuring all O(N^2) pairings does not scale to a real ISA;
the paper proposes clustering opcodes by SAVAT and exploring sequences
with class representatives.  This example measures a campaign, clusters
it, and shows the measurement-count saving.

Run:  python examples/instruction_clustering.py
"""

from repro import find_groups, load_calibrated_machine, run_campaign
from repro.core.clustering import group_representatives, similarity_graph
from repro.core.single_instruction import most_leaky_instructions


def main() -> None:
    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    print(f"Running the pairwise campaign on {machine.describe()} ...")
    campaign = run_campaign(machine, repetitions=2, seed=42)

    groups = find_groups(campaign, num_groups=4)
    print()
    print("SAVAT clusters (paper Section V-A groups):")
    for group in groups:
        print("  {" + ", ".join(sorted(group)) + "}")

    representatives = group_representatives(groups)
    full = len(campaign.events) ** 2
    reduced = len(representatives) ** 2
    print()
    print(f"Representatives: {', '.join(representatives)}")
    print(
        f"Pairwise measurements needed: {full} -> {reduced} "
        f"({full / reduced:.0f}x fewer)"
    )

    graph = similarity_graph(campaign)
    print()
    print("Hard-to-distinguish event pairs (similarity graph edges):")
    for event_a, event_b, data in sorted(graph.edges(data=True)):
        print(f"  {event_a:>4} -- {event_b:<4}  {data['savat_zj']:.2f} zJ")

    print()
    print("Single-instruction SAVAT ranking (max over same-instruction pairs):")
    for label, value in most_leaky_instructions(campaign):
        print(f"  {value:6.2f} zJ  {label}")


if __name__ == "__main__":
    main()
