#!/usr/bin/env python3
"""Close the loop: find the leak, fix it, measure the fix.

SAVAT's purpose is to make side-channel mitigation *targeted*.  This
example runs the complete workflow a security engineer would:

1. **Audit** a leaky kernel (a square-and-multiply step whose 1-bit
   path does a table fetch and a divide) against the measured SAVAT
   matrix — the data-dependent branch is flagged.
2. **Mitigate** with compensating activity: pad the quiet path with the
   loud path's excess events.
3. **Re-measure**: the alternation methodology confirms the signal is
   gone, and reports exactly what the fix costs in execution time.

Run:  python examples/mitigation_study.py
"""

from repro import load_calibrated_machine, run_campaign
from repro.analysis import audit_program, audit_report
from repro.isa import assemble
from repro.mitigations import evaluate_branchless, evaluate_compensation

VICTIM = """
    ; one square-and-multiply step; ebx holds the secret bit
    test ebx, 1
    jz bit_is_zero
    mov eax, [esi]        ; fetch the multiplier from the table
    imul eax, 40503
    mov ebp, 65537
    idiv ebp              ; modular reduction
bit_is_zero:
    add edx, 1
    halt
"""


def main() -> None:
    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    print("Measuring the pairwise SAVAT matrix (audit costs) ...")
    matrix = run_campaign(
        machine,
        events=("LDM", "LDL2", "LDL1", "NOI", "ADD", "SUB", "MUL", "DIV"),
        repetitions=2,
        seed=99,
    )
    floor = float(matrix.symmetrized().diagonal().mean())

    print()
    print("Step 1 — audit the victim kernel:")
    program = assemble(VICTIM)
    risks = audit_program(program, matrix)
    print(audit_report(risks, floor))

    worst = risks[0]
    path_a = list(worst.fallthrough_events) or ["NOI"]
    path_b = list(worst.taken_events) or ["NOI"]

    print()
    print("Step 2+3 — compensate the branch and re-measure:")
    report = evaluate_compensation(machine, path_a, path_b)
    print(f"  loud path:        {'+'.join(report.sequence_a)}")
    print(f"  quiet path:       {'+'.join(report.sequence_b)}")
    print(f"  compensated to:   {'+'.join(report.compensated_b)}")
    print(f"  {report}")

    print()
    print("Alternative — rewrite the step branchless (cmov select):")
    branchless = evaluate_branchless(machine, [1, 0, 1, 1, 0, 0, 1, 0], block_work=8)
    print(f"  {branchless}")
    print()
    print("Both fixes trade worst-case execution time for silence; SAVAT")
    print("tells you this branch is the one place that trade is worth it.")


if __name__ == "__main__":
    main()
