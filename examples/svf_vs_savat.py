#!/usr/bin/env python3
"""Contrast SAVAT with the prior-art SVF metric (Sections I and VI).

SVF (Demme et al.) correlates the side-channel signal with high-level
execution phases: it says *whether* a program leaks, but not *which
instructions* do.  This demo computes both metrics for the modular-
exponentiation victim:

* SVF reports high leakage (the signal tracks the square/multiply phase
  pattern) — one number for the whole system;
* SAVAT decomposes the leak: the multiply block's table loads (off-chip
  accesses) dominate, the register arithmetic is nearly silent — which
  is exactly the actionable guidance the paper argues architects and
  programmers need.

Run:  python examples/svf_vs_savat.py
"""

import numpy as np

from repro import load_calibrated_machine, measure_savat
from repro.attacks import simulate_victim
from repro.baselines import compute_svf

KEY_BITS = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]


def main() -> None:
    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    execution = simulate_victim(machine, KEY_BITS, block_work=8)

    # SVF: correlate the victim's true activity pattern with what the
    # attacker's antenna sees.
    oracle = execution.trace.data  # ground-truth per-component activity
    observed = machine.coupling.project_trace(execution.trace)
    rng = np.random.default_rng(1)
    noise = rng.normal(0.0, np.abs(observed).mean() * 0.1, size=observed.shape)
    result = compute_svf(oracle, observed + noise, num_windows=48)
    print(f"SVF of the modexp victim at 10 cm: {result.svf:.3f}")
    print("  -> 'this system leaks its phase structure', and nothing more.")
    print()

    # SAVAT: attribute the leak to instruction-level events.
    print("SAVAT decomposition of the same leak (zJ):")
    for event_a, event_b, why in (
        ("LDM", "NOI", "the multiply block's table fetch vs nothing"),
        ("MUL", "NOI", "the multiply arithmetic vs nothing"),
        ("DIV", "NOI", "the modular reduction vs nothing"),
        ("ADD", "NOI", "plain bookkeeping vs nothing"),
    ):
        value = measure_savat(machine, event_a, event_b).savat_zj
        print(f"  {event_a:>4}/{event_b}: {value:6.2f}   ({why})")
    print()
    print("The table fetch is the leak; masking the multiplier arithmetic")
    print("would buy nothing. That attribution is what SVF cannot provide.")


if __name__ == "__main__":
    main()
