#!/usr/bin/env python3
"""Quickstart: measure one SAVAT value and read the result.

Loads the simulated Core 2 Duo laptop calibrated at the paper's 10 cm
antenna distance, measures the ADD/LDM pairwise SAVAT with the
alternation methodology (80 kHz, +/-1 kHz band), and prints everything a
lab notebook would record.

Run:  python examples/quickstart.py
"""

from repro import MeasurementConfig, load_calibrated_machine, measure_savat
from repro.units import watts_to_dbm


def main() -> None:
    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    print(f"Machine: {machine.describe()}")

    config = MeasurementConfig()  # the paper's setup: 80 kHz, RBW 1 Hz
    result = measure_savat(machine, "ADD", "LDM", config)

    plan = result.plan
    print()
    print(f"Alternation kernel: {plan.spec.name}")
    print(
        f"  per-iteration cost: A = {plan.cycles_per_iteration_a:.1f} cycles, "
        f"B = {plan.cycles_per_iteration_b:.1f} cycles"
    )
    print(f"  inst_loop_count:    {plan.spec.inst_loop_count}")
    print(f"  achieved frequency: {result.achieved_frequency_hz / 1e3:.2f} kHz")
    print(f"  A/B pairs per sec:  {result.pairs_per_second:.3e}")
    print()
    print(f"Band power at the antenna: {watts_to_dbm(result.signal_band_power_w):.1f} dBm")
    print(f"SAVAT(ADD, LDM) = {result.savat_zj:.2f} zJ   (paper: 4.2 zJ)")
    print()

    # The same-instruction measurement estimates the error floor.
    floor = measure_savat(machine, "ADD", "ADD", config)
    print(f"SAVAT(ADD, ADD) = {floor.savat_zj:.2f} zJ   (paper: 0.7 zJ — error floor)")


if __name__ == "__main__":
    main()
