#!/usr/bin/env python3
"""Reproduce the paper's Section V-B distance study (Figures 16-18).

Measures selected pairings on the Core 2 Duo at 10/25/50/100 cm —
every point is a real measurement through the full alternation
methodology; only the 25 cm *calibration target* is synthesized by
interpolating the paper's published 10/50/100 cm matrices.  Off-chip
events stay visible while on-chip events (L2 hits, DIV) sink into the
floor with distance — the paper's argument for assessing vulnerability
at attack-realistic range.

The four distances run as one :func:`repro.run_study` study: a shared
kernel-trace cache produces each pairing's activity trace once, and
the other three distances re-measure the cached trace, so the sweep
costs barely more than a single distance.

Run:  python examples/distance_study.py
"""

from repro import run_study
from repro.analysis import bar_chart, crossover_distance

PAIRINGS = (
    ("ADD", "LDM"),
    ("ADD", "LDL2"),
    ("ADD", "DIV"),
    ("LDL2", "LDM"),
    ("STL2", "STM"),
)

EVENTS = ("ADD", "DIV", "LDL2", "LDM", "STL2", "STM")

DISTANCES_M = (0.10, 0.25, 0.50, 1.00)


def main() -> None:
    study = run_study(
        ["core2duo"],
        DISTANCES_M,
        events=EVENTS,
        repetitions=2,
        seed=0,
    )
    results: dict[float, dict[str, float]] = {}
    for distance, matrix in zip(DISTANCES_M, study.matrices):
        results[distance] = {
            f"{a}/{b}": matrix.cell(a, b) for a, b in PAIRINGS
        }
        trace_cache = matrix.metadata["execution"]["trace_cache"]
        hits = trace_cache["memory_hits"] + trace_cache["disk_hits"]
        print(
            f"measured {len(PAIRINGS)} pairings at {distance * 100:.0f} cm "
            f"({hits} cached trace(s), {trace_cache['misses']} produced)"
        )

    print()
    header = "pairing".ljust(12) + "".join(f"{d * 100:>9.0f}cm" for d in DISTANCES_M)
    print(header)
    for pairing in results[DISTANCES_M[0]]:
        values = "".join(f"{results[d][pairing]:>11.2f}" for d in DISTANCES_M)
        print(f"{pairing:<12}{values}")
    print("(values in zJ)")

    # The physics the figures illustrate: every pairing's signal decays
    # monotonically as the antenna moves away, until it sinks into the
    # measurement's error floor (the same-instruction diagonal) — past
    # that point only floor noise remains, so steps inside the floor are
    # exempt from the monotonicity check.
    floors = {
        distance: float(matrix.symmetrized().diagonal().mean())
        for distance, matrix in zip(DISTANCES_M, study.matrices)
    }
    for pairing in results[DISTANCES_M[0]]:
        series = [results[d][pairing] for d in DISTANCES_M]
        for near, far in zip(DISTANCES_M, DISTANCES_M[1:]):
            decayed = results[far][pairing] <= results[near][pairing]
            at_floor = results[far][pairing] <= floors[far] * 1.25
            assert decayed or at_floor, (
                f"{pairing} SAVAT rises above the floor with distance: {series}"
            )
    print("every pairing decays monotonically with distance (down to the floor)")

    print()
    for distance in (0.50, 1.00):
        rows = [(pairing, results[distance][pairing]) for pairing in results[distance]]
        print(bar_chart(rows, title=f"Figure 16 (measured) at {distance * 100:.0f} cm:"))
        print()

    # Where does the DIV advantage sink below the off-chip signal?
    div_series = [results[d]["ADD/DIV"] for d in DISTANCES_M]
    offchip_series = [results[d]["ADD/LDM"] for d in DISTANCES_M]
    crossover = crossover_distance(list(DISTANCES_M), div_series, offchip_series)
    if crossover is None:
        print("ADD/LDM dominates ADD/DIV at every measured distance —")
        print("off-chip accesses are the long-range attacker's best target.")
    else:
        print(f"ADD/DIV falls below ADD/LDM at about {crossover * 100:.0f} cm.")


if __name__ == "__main__":
    main()
