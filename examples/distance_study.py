#!/usr/bin/env python3
"""Reproduce the paper's Section V-B distance study (Figures 16-18).

Measures selected pairings on the Core 2 Duo at 10/50/100 cm plus an
interpolated 25 cm point, showing how off-chip events stay visible while
on-chip events (L2 hits, DIV) sink into the floor with distance — the
paper's argument for assessing vulnerability at attack-realistic range.

Run:  python examples/distance_study.py
"""

from repro import load_calibrated_machine, measure_savat
from repro.analysis import bar_chart, crossover_distance

PAIRINGS = (
    ("ADD", "LDM"),
    ("ADD", "LDL2"),
    ("ADD", "DIV"),
    ("LDL2", "LDM"),
    ("STL2", "STM"),
)

DISTANCES_M = (0.10, 0.25, 0.50, 1.00)


def main() -> None:
    results: dict[float, dict[str, float]] = {}
    for distance in DISTANCES_M:
        machine = load_calibrated_machine("core2duo", distance_m=distance)
        row: dict[str, float] = {}
        for event_a, event_b in PAIRINGS:
            row[f"{event_a}/{event_b}"] = measure_savat(machine, event_a, event_b).savat_zj
        results[distance] = row
        print(f"measured {len(PAIRINGS)} pairings at {distance * 100:.0f} cm")

    print()
    header = "pairing".ljust(12) + "".join(f"{d * 100:>9.0f}cm" for d in DISTANCES_M)
    print(header)
    for pairing in results[DISTANCES_M[0]]:
        values = "".join(f"{results[d][pairing]:>11.2f}" for d in DISTANCES_M)
        print(f"{pairing:<12}{values}")
    print("(values in zJ)")

    print()
    for distance in (0.50, 1.00):
        rows = [(pairing, results[distance][pairing]) for pairing in results[distance]]
        print(bar_chart(rows, title=f"Figure 16 (measured) at {distance * 100:.0f} cm:"))
        print()

    # Where does the DIV advantage sink below the off-chip signal?
    div_series = [results[d]["ADD/DIV"] for d in DISTANCES_M]
    offchip_series = [results[d]["ADD/LDM"] for d in DISTANCES_M]
    crossover = crossover_distance(list(DISTANCES_M), div_series, offchip_series)
    if crossover is None:
        print("ADD/LDM dominates ADD/DIV at every measured distance —")
        print("off-chip accesses are the long-range attacker's best target.")
    else:
        print(f"ADD/DIV falls below ADD/LDM at about {crossover * 100:.0f} cm.")


if __name__ == "__main__":
    main()
