#!/usr/bin/env python3
"""The Section III attack model, end to end: EM key extraction.

A victim runs square-and-multiply modular exponentiation where 1-bits
execute an extra multiply block (with a table fetch — the data-dependent
memory access the paper warns about).  An attacker profiles block
templates on an identical machine, captures the victim's EM emanations,
and decodes the key — at several antenna distances, showing that attack
success tracks exactly the signal SAVAT quantifies.

Run:  python examples/rsa_attack_demo.py
"""

import numpy as np

from repro import load_calibrated_machine
from repro.attacks import profile_templates, run_attack

KEY_BITS = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1]
DISTANCES_M = (0.10, 0.50, 1.00)
TRIALS = 5


def main() -> None:
    key_text = "".join(str(bit) for bit in KEY_BITS)
    print(f"Victim secret key: {key_text} ({len(KEY_BITS)} bits)")
    print()
    print(f"{'distance':>10} {'template sep.':>15} {'bit accuracy':>14} {'exact keys':>12}")
    for distance in DISTANCES_M:
        machine = load_calibrated_machine("core2duo", distance_m=distance)
        templates = profile_templates(machine, block_work=8)
        results = [
            run_attack(machine, KEY_BITS, seed=seed, block_work=8)
            for seed in range(TRIALS)
        ]
        accuracy = float(np.mean([result.accuracy for result in results]))
        exact = sum(1 for result in results if result.exact)
        print(
            f"{distance * 100:>8.0f}cm {templates.head_separation:>15.2e} "
            f"{accuracy:>13.0%} {exact:>9d}/{TRIALS}"
        )
    print()
    print("At 10 cm the multiply block's table fetch (an off-chip access,")
    print("the highest-SAVAT event) separates the templates far above the")
    print("receiver noise and the key falls out; at 1 m the same attack is")
    print("coin-flipping — the defender's mitigation budget should go where")
    print("SAVAT says the signal is.")


if __name__ == "__main__":
    main()
