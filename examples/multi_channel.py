#!/usr/bin/env python3
"""Future-work demo (Section VII): SAVAT across multiple side channels.

Figure 1's three attackers — Eve (EM), Evan (acoustic), Evita (power) —
see the same computation through very different physics.  This example
measures the same instruction pairings through all three channel models
and prints each channel's normalized distinguishability profile: which
pairings each attacker can exploit.

Run:  python examples/multi_channel.py
"""

from repro import load_calibrated_machine, measure_savat
from repro.channels import (
    channel_comparison,
    distinguishability_profile,
    laptop_acoustic_channel,
    wall_power_channel,
)

PAIRINGS = [
    ("ADD", "LDM"),
    ("ADD", "LDL2"),
    ("LDM", "LDL2"),
    ("LDM", "STM"),
    ("ADD", "DIV"),
    ("ADD", "MUL"),
]


def main() -> None:
    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    print(f"Machine: {machine.describe()}")
    print()

    # Eve: the paper's EM channel (calibrated against Figure 9).
    em_row = {
        f"{a}/{b}": measure_savat(machine, a, b).savat_zj for a, b in PAIRINGS
    }
    # Evan and Evita: the acoustic and power channel models.
    table = channel_comparison(
        machine, [wall_power_channel(), laptop_acoustic_channel()], PAIRINGS
    )
    table["EM"] = em_row
    profile = distinguishability_profile(table)

    header = f"{'pairing':<12}" + "".join(f"{name:>12}" for name in ("EM", "power", "acoustic"))
    print("Normalized distinguishability (1.0 = channel's loudest pairing):")
    print(header)
    for pairing in em_row:
        row = "".join(f"{profile[name][pairing]:>12.2f}" for name in ("EM", "power", "acoustic"))
        print(f"{pairing:<12}{row}")

    print()
    print("Reading the table:")
    print(" * EM (Eve): rich field structure — LDM vs LDL2 is as loud as")
    print("   either vs arithmetic, and DIV stands out.")
    print(" * power (Evita): one current, one number — only total-energy")
    print("   differences survive, so memory traffic dominates everything.")
    print(" * acoustic (Evan): two VRM 'voices' — off-chip vs on-chip is")
    print("   audible, fine arithmetic structure is not.")


if __name__ == "__main__":
    main()
