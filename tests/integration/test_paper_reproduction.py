"""End-to-end reproduction checks: measured campaigns vs the paper.

These tests run real (subset) campaigns through the full pipeline —
kernel generation, cycle simulation, EM projection, band-power
measurement — and assert the *shape* claims of the paper's Section V.
They are the executable version of EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.analysis.report import core2duo_claims
from repro.analysis.stats import matrix_correlations
from repro.core.campaign import run_campaign
from repro.core.savat import MeasurementConfig, measure_savat
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import (
    CORE2DUO_10CM,
    CORE2DUO_100CM,
    REPORTED_STD_OVER_MEAN,
)

#: Representative event subset covering all four paper groups.
SUBSET = ("LDM", "STM", "LDL2", "STL2", "LDL1", "NOI", "ADD", "DIV")


@pytest.mark.slow
class TestCore2Duo10cmReproduction:
    @pytest.fixture(scope="class")
    def campaign(self, core2duo_10cm):
        return run_campaign(
            core2duo_10cm, events=SUBSET, repetitions=4, seed=2014
        )

    def test_shape_agreement_with_figure9(self, campaign):
        indices = [EVENT_ORDER.index(name) for name in SUBSET]
        reference = CORE2DUO_10CM.values_zj[np.ix_(indices, indices)]
        stats = matrix_correlations(campaign.mean(), reference)
        assert stats["spearman"] > 0.8
        assert stats["pearson"] > 0.7
        assert stats["mean_relative_error"] < 0.5

    def test_repeatability_matches_paper(self, campaign):
        """Paper: std/mean over ten repetitions averages ~0.05."""
        ratio = campaign.std_over_mean()
        assert 0.01 < ratio < 0.12
        assert ratio == pytest.approx(REPORTED_STD_OVER_MEAN, abs=0.05)

    def test_diagonal_predominantly_minimal(self, campaign):
        rows, columns = campaign.diagonal_minimality(tolerance_zj=0.3)
        assert rows >= len(SUBSET) - 2
        assert columns >= len(SUBSET) - 2

    def test_group_structure(self, campaign):
        """Off-chip and L2 events are far from arithmetic; arithmetic
        and L1 hits are mutually indistinguishable."""
        assert campaign.cell("ADD", "LDM") > 3 * campaign.cell("ADD", "ADD")
        assert campaign.cell("ADD", "STL2") > 3 * campaign.cell("ADD", "ADD")
        assert campaign.cell("ADD", "LDL1") < 2 * campaign.cell("ADD", "ADD")

    def test_ldm_vs_ldl2_highest_in_their_rows(self, campaign):
        """The 'fields differ' observation: LDM/LDL2 tops LDM/arith."""
        assert campaign.cell("LDM", "LDL2") > campaign.cell("LDM", "ADD")

    def test_asymmetry_is_small(self, campaign):
        assert campaign.asymmetry() < 0.2


@pytest.mark.slow
class TestDistanceReproduction:
    def test_savat_collapses_with_distance(self, core2duo_10cm, core2duo_100cm):
        near = measure_savat(core2duo_10cm, "ADD", "LDL2")
        far = measure_savat(core2duo_100cm, "ADD", "LDL2")
        assert far.savat_zj < 0.4 * near.savat_zj

    def test_offchip_dominates_at_100cm(self, core2duo_100cm):
        offchip = measure_savat(core2duo_100cm, "ADD", "LDM")
        l2 = measure_savat(core2duo_100cm, "ADD", "LDL2")
        assert offchip.savat_zj > 1.3 * l2.savat_zj

    def test_100cm_values_near_reference(self, core2duo_100cm):
        for pair in (("ADD", "LDM"), ("ADD", "LDL2"), ("LDM", "STM")):
            measured = measure_savat(core2duo_100cm, *pair).savat_zj
            reference = CORE2DUO_100CM.cell(*pair)
            assert measured == pytest.approx(reference, rel=0.45)


@pytest.mark.slow
class TestQualitativeClaimsOnMeasuredData:
    def test_most_section5_claims_hold_on_full_pipeline(self, core2duo_10cm):
        """Run the Section V claim checks against a measured campaign
        over the events they reference."""
        events = ("LDM", "STM", "LDL2", "STL2", "LDL1", "STL1", "NOI", "ADD", "SUB", "MUL", "DIV")
        campaign = run_campaign(core2duo_10cm, events=events, repetitions=2, seed=7)
        checks = core2duo_claims(campaign)
        passed = sum(1 for check in checks if check.holds)
        assert passed >= len(checks) - 1, "\n".join(str(c) for c in checks)


@pytest.mark.slow
class TestOtherMachines:
    def test_pentium3m_div_order_of_magnitude(self):
        from repro.machines.calibrated import load_calibrated_machine

        machine = load_calibrated_machine("pentium3m", 0.10)
        add_div = measure_savat(machine, "ADD", "DIV").savat_zj
        add_mul = measure_savat(machine, "ADD", "MUL").savat_zj
        assert add_div > 4 * add_mul

    def test_turionx2_div_rivals_offchip(self):
        from repro.machines.calibrated import load_calibrated_machine

        machine = load_calibrated_machine("turionx2", 0.10)
        add_div = measure_savat(machine, "ADD", "DIV").savat_zj
        add_ldm = measure_savat(machine, "ADD", "LDM").savat_zj
        assert add_div > 0.4 * add_ldm
