"""Golden trace/metrics test: the observability outputs of one campaign.

Runs a small campaign with injected faults and every observability
output enabled, then holds the artifacts to the contract the CI smoke
step relies on: the JSONL trace is schema-valid with per-attempt span
identities, the Prometheus file parses cleanly, and the registry
counters equal ``matrix.metadata["execution"]`` bit-for-bit (the
metadata is generated *from* the registry, so equality is exact).
"""

import io

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.faults import FaultPlan
from repro.core.savat import PHASE_NAMES, MeasurementConfig
from repro.obs import CampaignObservability
from repro.obs.check import (
    EXECUTION_COUNTERS,
    EXECUTION_GAUGES,
    check_against_execution,
    parse_prometheus,
)
from repro.obs.trace import read_trace, validate_trace_file

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2
CELLS = len(EVENTS) ** 2


def _run(machine, observability, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
        observability=observability,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


@pytest.mark.slow
class TestGoldenObservability:
    @pytest.fixture(scope="class")
    def golden(self, core2duo_10cm, tmp_path_factory):
        """One faulted campaign with trace, metrics, and progress on."""
        directory = tmp_path_factory.mktemp("obs-golden")
        trace_path = directory / "trace.jsonl"
        metrics_path = directory / "metrics.prom"
        progress_stream = io.StringIO()
        observability = CampaignObservability(
            trace=trace_path,
            metrics_out=metrics_path,
            progress=True,
            progress_stream=progress_stream,
        )
        matrix = _run(
            core2duo_10cm,
            observability,
            fault_plan=FaultPlan.from_spec("raise@0,1"),
        )
        return {
            "matrix": matrix,
            "observability": observability,
            "trace_path": trace_path,
            "metrics_path": metrics_path,
            "progress": progress_stream.getvalue(),
        }

    def test_trace_is_schema_valid(self, golden):
        assert validate_trace_file(golden["trace_path"]) == []

    def test_trace_tells_the_fault_story(self, golden):
        records = read_trace(golden["trace_path"])
        names = [r.get("name") for r in records[1:]]
        assert names[0] == "campaign_start"
        assert names[-1] == "campaign_end"
        faults = [r for r in records if r.get("name") == "fault_injected"]
        assert [(f["fault_kind"], f["i"], f["j"]) for f in faults] == [
            ("raise", 0, 1)
        ]
        retries = [r for r in records if r.get("name") == "cell_retry"]
        assert [(r["i"], r["j"], r["reason"]) for r in retries] == [
            (0, 1, "error")
        ]

    def test_span_identities_cover_every_attempt(self, golden):
        records = read_trace(golden["trace_path"])
        starts = {
            (r["i"], r["j"], r["attempt"])
            for r in records
            if r.get("kind") == "span_start"
        }
        # Every cell attempted once, plus the faulted cell's retry.
        expected = {(i, j, 0) for i in range(2) for j in range(2)}
        expected.add((0, 1, 1))
        assert starts == expected
        statuses = {
            (r["i"], r["j"], r["attempt"]): r["status"]
            for r in records
            if r.get("kind") == "span_end"
        }
        assert statuses[(0, 1, 0)] == "error"
        assert statuses[(0, 1, 1)] == "ok"

    def test_ok_spans_carry_worker_fragments(self, golden):
        records = read_trace(golden["trace_path"])
        fragments = [
            r["fragment"]
            for r in records
            if r.get("kind") == "span_end" and r["status"] == "ok"
        ]
        assert len(fragments) == CELLS
        for fragment in fragments:
            assert fragment["worker_pid"] > 0
            assert fragment["elapsed_s"] >= 0
            phases = set(fragment["phase_seconds"])
            assert phases  # at least one phase timed
            assert phases <= set(PHASE_NAMES)

    def test_metrics_file_matches_execution_metadata_exactly(self, golden):
        samples, errors = parse_prometheus(
            golden["metrics_path"].read_text()
        )
        assert errors == []
        execution = golden["matrix"].metadata["execution"]
        assert check_against_execution(samples, execution) == []

    def test_registry_counters_equal_metadata_bit_for_bit(self, golden):
        registry = golden["observability"].metrics
        execution = golden["matrix"].metadata["execution"]
        for key, metric in {**EXECUTION_COUNTERS, **EXECUTION_GAUGES}.items():
            assert registry.value(metric) == execution[key], key
        assert execution["retries"] == 1
        assert execution["cells_simulated"] == CELLS
        assert execution["faults_injected"] == {"raise": 1}
        assert registry.value(
            "savat_faults_injected_total", {"kind": "raise"}
        ) == 1

    def test_faulted_run_matches_the_clean_matrix(self, golden, core2duo_10cm):
        clean = _run(core2duo_10cm, None)
        assert np.array_equal(
            golden["matrix"].samples_zj, clean.samples_zj
        )

    def test_progress_line_reached_the_stream(self, golden):
        output = golden["progress"]
        assert f"[{CELLS}/{CELLS}]" in output
        assert "retries 1" in output
        assert output.endswith("\n")
