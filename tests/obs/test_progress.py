"""Unit tests for the live CLI progress reporter."""

import io

from repro.obs.progress import EWMA_ALPHA, ProgressReporter, format_eta


class SteppingClock:
    """A clock the test advances explicitly."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def _reporter(total=10, enabled=True):
    clock = SteppingClock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        total, stream=stream, enabled=enabled, clock=clock
    )
    return reporter, clock, stream


class TestFormatEta:
    def test_seconds(self):
        assert format_eta(42.4) == "42s"

    def test_minutes(self):
        assert format_eta(190) == "3m10s"

    def test_hours(self):
        assert format_eta(2 * 3600 + 5 * 60) == "2h05m"

    def test_negative_clamps_to_zero(self):
        assert format_eta(-3) == "0s"


class TestEwmaEta:
    def test_no_estimate_before_two_completions(self):
        reporter, clock, _stream = _reporter()
        assert reporter.eta_seconds() is None
        clock.advance(1.0)
        reporter.cell_completed("ADD/SUB", 1.0)
        assert reporter.eta_seconds() is None  # one completion, no interval

    def test_steady_intervals_predict_remaining_cells(self):
        reporter, clock, _stream = _reporter(total=10)
        for _ in range(4):
            clock.advance(2.0)
            reporter.cell_completed("ADD/SUB", 2.0)
        # Constant 2 s intervals: EWMA is exactly 2, 6 cells remain.
        assert reporter.ewma_interval_s == 2.0
        assert reporter.eta_seconds() == 12.0

    def test_ewma_updates_with_the_documented_alpha(self):
        reporter, clock, _stream = _reporter(total=10)
        clock.advance(1.0)
        reporter.cell_completed("A/A", 1.0)
        clock.advance(1.0)
        reporter.cell_completed("A/B", 1.0)  # first interval: 1.0
        clock.advance(3.0)
        reporter.cell_completed("B/A", 3.0)  # second interval: 3.0
        expected = 1.0 + EWMA_ALPHA * (3.0 - 1.0)
        assert reporter.ewma_interval_s == expected

    def test_eta_is_zero_when_done(self):
        reporter, clock, _stream = _reporter(total=2)
        for _ in range(2):
            clock.advance(1.0)
            reporter.cell_completed("A/A", 1.0)
        assert reporter.eta_seconds() == 0.0


class TestComposeAndRender:
    def test_compose_shows_progress_and_tickers(self):
        reporter, clock, _stream = _reporter(total=121)
        clock.advance(0.7)
        reporter.cell_completed("ADD/LDM", 0.71)
        reporter.note_retry()
        line = reporter.compose()
        assert "[  1/121]" in line
        assert "retries 1" in line
        assert "timeouts 0" in line
        assert "last ADD/LDM 0.71s" in line

    def test_disabled_reporter_writes_nothing(self):
        reporter, clock, stream = _reporter(enabled=False)
        clock.advance(1.0)
        reporter.cell_completed("A/A", 1.0)
        reporter.note_timeout()
        reporter.close()
        assert stream.getvalue() == ""

    def test_enabled_reporter_rewrites_in_place(self):
        reporter, clock, stream = _reporter(total=2)
        clock.advance(1.0)
        reporter.cell_completed("A/A", 1.0)
        clock.advance(1.0)
        reporter.cell_completed("A/B", 1.0)
        output = stream.getvalue()
        assert output.count("\r") == 2
        assert "\n" not in output

    def test_auto_detection_disables_on_non_tty(self):
        reporter = ProgressReporter(4, stream=io.StringIO(), enabled=None)
        assert reporter.enabled is False

    def test_close_terminates_the_line_once(self):
        reporter, clock, stream = _reporter(total=1)
        clock.advance(1.0)
        reporter.cell_completed("A/A", 1.0)
        reporter.close()
        reporter.close()  # idempotent
        assert stream.getvalue().count("\n") == 1

    def test_counters_track_notes(self):
        reporter, _clock, _stream = _reporter()
        reporter.note_retry()
        reporter.note_retry()
        reporter.note_timeout()
        assert (reporter.retries, reporter.timeouts) == (2, 1)
