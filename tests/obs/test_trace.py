"""Unit tests for the JSONL trace writer and its schema validator."""

import json

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    read_trace,
    validate_trace,
    validate_trace_file,
)


class FakeClock:
    """A monotonic clock advancing a fixed step per call."""

    def __init__(self, start=100.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _write_minimal_trace(path, clock=None):
    writer = TraceWriter(path, clock=clock or FakeClock())
    writer.start(campaign_key="abc123")
    writer.event("campaign_start", total_cells=1)
    writer.span_start("cell", i=0, j=0, attempt=0)
    writer.span_end("cell", i=0, j=0, attempt=0, status="ok")
    writer.event("campaign_end", status="ok")
    writer.close()
    return writer


class TestTraceWriter:
    def test_lifecycle_produces_a_valid_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_minimal_trace(path)
        assert validate_trace_file(path) == []

    def test_header_carries_the_schema_version(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_minimal_trace(path)
        header = read_trace(path)[0]
        assert header["kind"] == "header"
        assert header["trace_schema_version"] == TRACE_SCHEMA_VERSION
        assert header["campaign_key"] == "abc123"

    def test_writing_before_start_fails(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        with pytest.raises(ValueError):
            writer.event("too_early")

    def test_close_is_idempotent(self, tmp_path):
        writer = _write_minimal_trace(tmp_path / "trace.jsonl")
        assert not writer.is_open
        writer.close()  # second close must not raise
        assert not writer.is_open

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        _write_minimal_trace(path)
        assert path.is_file()

    def test_records_use_the_injected_clock(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_minimal_trace(path, clock=FakeClock(start=0.0, step=1.0))
        timestamps = [r["ts"] for r in read_trace(path) if "ts" in r]
        assert timestamps == [1.0, 2.0, 3.0, 4.0]


class TestReadTrace:
    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_trace(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "header"}\n\n{"kind": "event"}\n')
        assert len(read_trace(path)) == 2

    def test_missing_file_reports_one_error(self, tmp_path):
        errors = validate_trace_file(tmp_path / "absent.jsonl")
        assert len(errors) == 1


class TestValidateTrace:
    HEADER = {"kind": "header", "trace_schema_version": TRACE_SCHEMA_VERSION}
    END = {"kind": "event", "name": "campaign_end", "ts": 99.0}

    def test_empty_trace_is_invalid(self):
        assert validate_trace([]) == ["trace is empty"]

    def test_missing_header_is_reported(self):
        errors = validate_trace([dict(self.END)])
        assert any("not a header" in error for error in errors)

    def test_unknown_schema_version_is_rejected(self):
        errors = validate_trace(
            [{"kind": "header", "trace_schema_version": 999}, dict(self.END)]
        )
        assert any("schema version" in error for error in errors)

    def test_decreasing_timestamps_are_reported(self):
        errors = validate_trace(
            [
                dict(self.HEADER),
                {"kind": "event", "name": "a", "ts": 5.0},
                {"kind": "event", "name": "b", "ts": 4.0},
                dict(self.END, ts=100.0),
            ]
        )
        assert any("decreases" in error for error in errors)

    def test_duplicate_span_identity_is_reported(self):
        span = {"kind": "span_start", "name": "cell", "ts": 1.0,
                "i": 0, "j": 1, "attempt": 0}
        errors = validate_trace(
            [dict(self.HEADER), dict(span), dict(span, ts=2.0), dict(self.END)]
        )
        assert any("duplicate span identity" in error for error in errors)

    def test_distinct_attempts_are_distinct_spans(self):
        records = [dict(self.HEADER)]
        for attempt in (0, 1):
            ts = 1.0 + attempt
            records.append({"kind": "span_start", "name": "cell", "ts": ts,
                            "i": 0, "j": 1, "attempt": attempt})
            records.append({"kind": "span_end", "name": "cell", "ts": ts + 0.5,
                            "i": 0, "j": 1, "attempt": attempt, "status": "ok"})
        records.append(dict(self.END))
        assert validate_trace(records) == []

    def test_unclosed_span_is_reported(self):
        errors = validate_trace(
            [
                dict(self.HEADER),
                {"kind": "span_start", "name": "cell", "ts": 1.0,
                 "i": 0, "j": 0, "attempt": 0},
                dict(self.END),
            ]
        )
        assert any("never closed" in error for error in errors)

    def test_span_end_without_start_is_reported(self):
        errors = validate_trace(
            [
                dict(self.HEADER),
                {"kind": "span_end", "name": "cell", "ts": 1.0,
                 "i": 0, "j": 0, "attempt": 0, "status": "ok"},
                dict(self.END),
            ]
        )
        assert any("span_end without span_start" in error for error in errors)

    def test_missing_campaign_end_is_reported(self):
        errors = validate_trace(
            [dict(self.HEADER), {"kind": "event", "name": "other", "ts": 1.0}]
        )
        assert any("campaign_end" in error for error in errors)

    def test_unknown_kind_is_reported(self):
        errors = validate_trace(
            [dict(self.HEADER),
             {"kind": "mystery", "name": "x", "ts": 1.0},
             dict(self.END)]
        )
        assert any("unknown kind" in error for error in errors)

    def test_records_are_sorted_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write_minimal_trace(path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)
