"""Unit tests for the metrics registry and its Prometheus export."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.check import parse_prometheus
from repro.obs.metrics import MetricsRegistry, format_value


class TestRegistryBasics:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("savat_things_total", "Things.")
        counter.inc()
        counter.inc(2)
        assert registry.value("savat_things_total") == 3

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("savat_things_total", "Things.")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_sets_and_adds(self):
        gauge = MetricsRegistry().gauge("savat_level", "Level.")
        gauge.set(4.5)
        gauge.inc(-1.5)
        assert gauge.value() == 3.0

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("savat_faults_total", "Faults.", labelnames=("kind",))
        family.labels(kind="raise").inc()
        family.labels(kind="hang").inc(2)
        assert registry.value("savat_faults_total", {"kind": "raise"}) == 1
        assert registry.value("savat_faults_total", {"kind": "hang"}) == 2

    def test_series_iterate_in_creation_order(self):
        family = MetricsRegistry().gauge("savat_cell", "Cell.", labelnames=("pair",))
        for pair in ("B/A", "A/B", "C/C"):
            family.labels(pair=pair).set(1.0)
        assert [labels["pair"] for labels, _ in family.series()] == [
            "B/A", "A/B", "C/C",
        ]

    def test_wrong_labels_are_rejected(self):
        family = MetricsRegistry().counter("savat_x_total", "X.", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            family.labels(b="1")
        with pytest.raises(ConfigurationError):
            family.inc()  # labelled family has no label-less series

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name", "Bad.")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "Ok.", labelnames=("0bad",))

    def test_registration_is_idempotent_for_same_schema(self):
        registry = MetricsRegistry()
        first = registry.counter("savat_x_total", "X.")
        again = registry.counter("savat_x_total", "X again.")
        assert first is again

    def test_conflicting_reregistration_fails(self):
        registry = MetricsRegistry()
        registry.counter("savat_x_total", "X.")
        with pytest.raises(ConfigurationError):
            registry.gauge("savat_x_total", "Now a gauge.")
        with pytest.raises(ConfigurationError):
            registry.counter("savat_x_total", "X.", labelnames=("kind",))

    def test_unknown_metric_lookup_fails(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().get("savat_missing")


class TestPrometheusExport:
    def test_zero_valued_labelless_metrics_export(self):
        registry = MetricsRegistry()
        registry.counter("savat_untouched_total", "Never incremented.")
        samples, errors = parse_prometheus(registry.to_prometheus())
        assert errors == []
        assert samples[("savat_untouched_total", frozenset())] == 0

    def test_integral_values_render_without_fraction(self):
        assert format_value(3.0) == "3"
        assert format_value(0.5) == "0.5"
        registry = MetricsRegistry()
        registry.counter("savat_n_total", "N.").inc(7)
        assert "savat_n_total 7" in registry.to_prometheus().splitlines()

    def test_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.gauge("savat_level", "The level.")
        text = registry.to_prometheus()
        assert "# HELP savat_level The level." in text
        assert "# TYPE savat_level gauge" in text

    def test_label_values_are_escaped_and_still_parse(self):
        registry = MetricsRegistry()
        family = registry.counter("savat_x_total", "X.", labelnames=("pair",))
        family.labels(pair='A"B\\C').inc()
        text = registry.to_prometheus()
        assert 'pair="A\\"B\\\\C"' in text
        samples, errors = parse_prometheus(text)
        assert errors == []
        assert len(samples) == 1

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "savat_duration_seconds", "Durations.", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.7, 5.0):
            histogram.observe(value)
        lines = registry.to_prometheus().splitlines()
        assert 'savat_duration_seconds_bucket{le="0.1"} 1' in lines
        assert 'savat_duration_seconds_bucket{le="1"} 3' in lines
        assert 'savat_duration_seconds_bucket{le="10"} 4' in lines
        assert 'savat_duration_seconds_bucket{le="+Inf"} 4' in lines
        assert "savat_duration_seconds_count 4" in lines
        assert any(line.startswith("savat_duration_seconds_sum ") for line in lines)


class TestSnapshotExport:
    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("savat_x_total", "X.").inc(2)
        registry.histogram("savat_h_seconds", "H.", buckets=(1.0,)).observe(0.5)
        payload = json.loads(registry.to_json())
        assert payload["savat_x_total"]["series"][0]["value"] == 2
        assert payload["savat_h_seconds"]["series"][0]["count"] == 1

    def test_untouched_labelled_family_has_no_series(self):
        registry = MetricsRegistry()
        registry.counter("savat_x_total", "X.", labelnames=("kind",))
        assert registry.snapshot()["savat_x_total"]["series"] == []
