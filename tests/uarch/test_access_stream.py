"""Batched hierarchy replay vs the scalar access loop.

``MemoryHierarchy.access_stream`` and ``Cache.access_block`` exist only
as faster spellings of a loop over ``access``; these tests check that
random streams leave both implementations in byte-for-byte identical
states (tags, dirty bits, LRU order, every counter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheGeometry
from repro.uarch.hierarchy import MemoryHierarchy


L1 = CacheGeometry(size_bytes=1024, ways=2, line_bytes=64)
L2 = CacheGeometry(size_bytes=4096, ways=4, line_bytes=64)


def cache_state(cache):
    return (
        tuple(
            tuple((line.tag, line.dirty) for line in cache_set)
            for cache_set in cache._sets
        ),
        vars(cache.stats).copy(),
    )


def hierarchy_state(hierarchy):
    return (
        cache_state(hierarchy.l1),
        cache_state(hierarchy.l2),
        hierarchy.offchip_accesses,
    )


class TestAccessStream:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_stream_matches_scalar_loop(self, seed):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 16384, size=600) * 4
        writes = rng.random(600) < 0.4

        batched = MemoryHierarchy(L1, L2)
        batched.access_stream(addresses, writes)

        scalar = MemoryHierarchy(L1, L2)
        for address, write in zip(addresses.tolist(), writes.tolist()):
            scalar.access(address, write)

        assert hierarchy_state(batched) == hierarchy_state(scalar)

    def test_scalar_write_flag_broadcasts(self):
        addresses = np.arange(0, 8192, 64)
        batched = MemoryHierarchy(L1, L2)
        batched.access_stream(addresses, True)

        scalar = MemoryHierarchy(L1, L2)
        for address in addresses.tolist():
            scalar.access(address, True)

        assert hierarchy_state(batched) == hierarchy_state(scalar)

    def test_empty_stream_is_a_no_op(self):
        hierarchy = MemoryHierarchy(L1, L2)
        hierarchy.access_stream(np.array([], dtype=np.int64), False)
        assert hierarchy.l1.stats.accesses == 0
        assert hierarchy.l2.stats.accesses == 0

    def test_rejects_non_1d_stream(self):
        hierarchy = MemoryHierarchy(L1, L2)
        with pytest.raises(ConfigurationError):
            hierarchy.access_stream(np.zeros((2, 2), dtype=np.int64), False)

    def test_rejects_mismatched_write_flags(self):
        hierarchy = MemoryHierarchy(L1, L2)
        with pytest.raises(ConfigurationError):
            hierarchy.access_stream(np.zeros(4, dtype=np.int64), np.zeros(3, dtype=bool))


class TestCacheAccessBlock:
    @pytest.mark.parametrize("is_write", (False, True))
    def test_block_matches_scalar_accesses(self, is_write):
        rng = np.random.default_rng(7)
        addresses = (rng.integers(0, 512, size=300) * 64).tolist()

        batched = Cache(L1)
        batched.access_block(addresses, is_write)

        scalar = Cache(L1)
        for address in addresses:
            scalar.access(address, is_write)

        assert cache_state(batched) == cache_state(scalar)
