"""Unit tests for the two-level memory hierarchy."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.cache import CacheGeometry
from repro.uarch.hierarchy import MemoryHierarchy, MemoryLatencies


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        l1_geometry=CacheGeometry(size_bytes=512, ways=2, line_bytes=64),   # 8 lines
        l2_geometry=CacheGeometry(size_bytes=4096, ways=4, line_bytes=64),  # 64 lines
        latencies=MemoryLatencies(l1_cycles=3, l2_cycles=10, memory_cycles=100),
    )


class TestConfiguration:
    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(
                l1_geometry=CacheGeometry(4096, 4, 64),
                l2_geometry=CacheGeometry(512, 2, 64),
            )

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(
                l1_geometry=CacheGeometry(512, 2, 32),
                l2_geometry=CacheGeometry(4096, 4, 64),
            )

    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            MemoryLatencies(l1_cycles=10, l2_cycles=5, memory_cycles=100)


class TestAccessLevels:
    def test_cold_access_goes_to_memory(self):
        hierarchy = _hierarchy()
        report = hierarchy.access(0, False)
        assert report.level == "MEM"
        assert report.latency_cycles == 100
        assert report.offchip_transfers == 1

    def test_warm_access_hits_l1(self):
        hierarchy = _hierarchy()
        hierarchy.access(0, False)
        report = hierarchy.access(0, False)
        assert report.level == "L1"
        assert report.latency_cycles == 3
        assert report.offchip_transfers == 0

    def test_l1_evicted_but_l2_resident_hits_l2(self):
        hierarchy = _hierarchy()
        # Fill far beyond L1 (8 lines) but within L2 (64 lines); use a
        # stride that cycles one L1 set.
        addresses = [i * 512 for i in range(8)]  # same L1 set (8 sets), same-ish
        for address in addresses:
            hierarchy.access(address, False)
        report = hierarchy.access(addresses[0], False)
        assert report.level == "L2"
        assert report.latency_cycles == 10

    def test_clean_l1_eviction_causes_no_writeback(self):
        hierarchy = _hierarchy()
        addresses = [i * 512 for i in range(4)]
        for address in addresses:
            hierarchy.access(address, False)
        report = hierarchy.access(4 * 512, False)
        assert not report.l1_writeback

    def test_dirty_l1_eviction_writes_back_to_l2(self):
        hierarchy = _hierarchy()
        # L1 is 2-way with 4 sets: three writes to one set evict a dirty line.
        addresses = [i * 256 for i in range(3)]  # 256 % (4 sets * 64) maps set 0
        hierarchy.access(addresses[0], True)
        hierarchy.access(addresses[1], True)
        report = hierarchy.access(addresses[2], True)
        assert report.l1_writeback
        assert report.l2_accesses == 2  # write-back + demand fill

    def test_store_hitting_l2_generates_two_l2_accesses(self):
        """The paper's STL2 effect: dirty L1 victim + demand fill."""
        hierarchy = _hierarchy()
        # Warm a working set larger than L1, within L2, all stores.
        addresses = [i * 64 for i in range(32)]  # 2 KiB, 4x L1
        for _sweep in range(2):
            for address in addresses:
                hierarchy.access(address, True)
        report = hierarchy.access(addresses[0], True)
        assert report.level == "L2"
        assert report.l1_writeback
        assert report.l2_accesses == 2

    def test_dirty_l2_eviction_goes_offchip(self):
        hierarchy = _hierarchy()
        stride = 4096  # one L2 set (16 sets * 64B = 1024... use big stride)
        # 4-way L2 with 16 sets: five dirty lines in one set force a
        # dirty eviction off-chip.
        addresses = [i * (16 * 64) for i in range(5)]
        for address in addresses:
            hierarchy.access(address, True)
        report = hierarchy.access(5 * (16 * 64), True)
        assert report.offchip_transfers >= 1
        assert hierarchy.offchip_accesses > 0

    def test_warm_helper(self):
        hierarchy = _hierarchy()
        hierarchy.warm([0, 64, 128], is_write=False)
        assert hierarchy.access(0, False).level == "L1"

    def test_reset_clears_everything(self):
        hierarchy = _hierarchy()
        hierarchy.access(0, True)
        hierarchy.reset()
        assert hierarchy.l1.resident_lines() == 0
        assert hierarchy.l2.resident_lines() == 0
        assert hierarchy.offchip_accesses == 0
        assert hierarchy.l1.stats.accesses == 0

    def test_line_bytes_property(self):
        assert _hierarchy().line_bytes == 64
