"""Unit and property tests for activity traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.uarch.activity import ActivityBlock, ActivityRecorder, ActivityTrace
from repro.uarch.components import Component, COMPONENT_INDEX, NUM_COMPONENTS


class TestActivityRecorder:
    def test_single_event(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        recorder.add(Component.ALU, start_cycle=2, duration=3, amount_per_cycle=1.5)
        trace = recorder.finish(10)
        alu = trace.component(Component.ALU)
        assert alu[1] == 0
        assert list(alu[2:5]) == [1.5, 1.5, 1.5]
        assert alu[5] == 0

    def test_events_accumulate(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        recorder.add(Component.ALU, 0, 2, 1.0)
        recorder.add(Component.ALU, 1, 2, 1.0)
        trace = recorder.finish(4)
        assert list(trace.component(Component.ALU)) == [1.0, 2.0, 1.0, 0.0]

    def test_event_clipped_at_end(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        recorder.add(Component.DIV, 8, 10, 1.0)
        trace = recorder.finish(10)
        assert trace.component(Component.DIV).sum() == pytest.approx(2.0)

    def test_zero_duration_ignored(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        recorder.add(Component.ALU, 0, 0, 1.0)
        assert recorder.finish(4).data.sum() == 0

    def test_negative_start_rejected(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        with pytest.raises(SimulationError):
            recorder.add(Component.ALU, -1, 1, 1.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(SimulationError):
            ActivityRecorder(clock_hz=0)


class TestActivityBlocks:
    def test_extract_and_replay_matches_scalar_adds(self):
        """Replaying a block is bit-identical to re-adding its events."""
        template = ActivityRecorder(clock_hz=1e9)
        mark = template.mark()
        template.add(Component.ALU, 10, 1, 0.7)
        template.add(Component.FETCH, 10, 1, 1.1)
        template.add(Component.L2, 11, 14, 0.3)
        block = template.extract_block(mark, base_cycle=10)
        assert block.num_events == 3

        replayed = ActivityRecorder(clock_hz=1e9)
        replayed.add_block(block, 0)
        replayed.add_block(block, 5)
        replayed.add_block(block, 20)

        scalar = ActivityRecorder(clock_hz=1e9)
        for base in (0, 5, 20):
            scalar.add(Component.ALU, base, 1, 0.7)
            scalar.add(Component.FETCH, base, 1, 1.1)
            scalar.add(Component.L2, base + 1, 14, 0.3)

        fast = replayed.finish(40)
        reference = scalar.finish(40)
        assert np.array_equal(fast.data, reference.data)

    def test_mark_extract_leaves_events_in_place(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        recorder.add(Component.ALU, 0, 1, 1.0)
        mark = recorder.mark()
        recorder.add(Component.DIV, 3, 2, 0.5)
        block = recorder.extract_block(mark, base_cycle=3)
        assert block.num_events == 1
        assert list(block.offsets) == [0]
        trace = recorder.finish(8)
        assert trace.component(Component.DIV).sum() == pytest.approx(1.0)

    def test_negative_block_offset_rejected(self):
        recorder = ActivityRecorder(clock_hz=1e9)
        mark = recorder.mark()
        recorder.add(Component.ALU, 2, 1, 1.0)
        with pytest.raises(SimulationError):
            recorder.extract_block(mark, base_cycle=5)

    def test_mismatched_block_shapes_rejected(self):
        with pytest.raises(SimulationError):
            ActivityBlock(
                components=np.array([0, 1]),
                offsets=np.array([0]),
                durations=np.array([1, 1]),
                amounts=np.array([1.0, 1.0]),
            )

    def test_finish_is_insertion_order_independent(self):
        """The materialized trace depends only on the event multiset."""
        events = [
            (Component.ALU, 0, 1, 0.1),
            (Component.ALU, 0, 1, 0.3),
            (Component.ALU, 0, 3, 0.7),
            (Component.DRAM, 2, 5, 0.011),
            (Component.ALU, 1, 1, 0.9),
        ]
        forward = ActivityRecorder(clock_hz=1e9)
        for event in events:
            forward.add(*event)
        backward = ActivityRecorder(clock_hz=1e9)
        for event in reversed(events):
            backward.add(*event)
        assert np.array_equal(forward.finish(8).data, backward.finish(8).data)


class TestActivityTrace:
    def _trace(self, cycles=16) -> ActivityTrace:
        data = np.zeros((NUM_COMPONENTS, cycles))
        data[COMPONENT_INDEX[Component.ALU]] = 1.0
        data[COMPONENT_INDEX[Component.DRAM], : cycles // 2] = 2.0
        return ActivityTrace(data, clock_hz=2e9)

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            ActivityTrace(np.zeros((3, 10)), clock_hz=1e9)

    def test_duration(self):
        trace = self._trace(16)
        assert trace.duration_s == pytest.approx(8e-9)

    def test_totals(self):
        totals = self._trace(16).totals()
        assert totals[Component.ALU] == pytest.approx(16.0)
        assert totals[Component.DRAM] == pytest.approx(16.0)
        assert totals[Component.MUL] == 0.0

    def test_mean_rates(self):
        rates = self._trace(16).mean_rates()
        assert rates[COMPONENT_INDEX[Component.ALU]] == pytest.approx(1.0)
        assert rates[COMPONENT_INDEX[Component.DRAM]] == pytest.approx(1.0)

    def test_window(self):
        window = self._trace(16).window(0, 8)
        assert window.num_cycles == 8
        assert window.component(Component.DRAM).sum() == pytest.approx(16.0)

    def test_window_bounds_checked(self):
        with pytest.raises(SimulationError):
            self._trace(16).window(8, 4)
        with pytest.raises(SimulationError):
            self._trace(16).window(0, 99)

    def test_downsample_preserves_mean(self):
        trace = self._trace(16)
        coarse = trace.downsample(4)
        assert coarse.num_cycles == 4
        assert coarse.data.mean() == pytest.approx(trace.data.mean())
        assert coarse.clock_hz == pytest.approx(trace.clock_hz / 4)

    def test_downsample_too_short_rejected(self):
        with pytest.raises(SimulationError):
            self._trace(4).downsample(8)

    def test_project_single_mode(self):
        trace = self._trace(8)
        weights = np.zeros(NUM_COMPONENTS)
        weights[COMPONENT_INDEX[Component.ALU]] = 3.0
        projected = trace.project(weights)
        assert projected.shape == (1, 8)
        assert np.allclose(projected, 3.0)

    def test_project_shape_validation(self):
        with pytest.raises(SimulationError):
            self._trace(8).project(np.zeros((2, 3)))


@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(list(Component)),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=1, max_value=20),
            st.floats(min_value=0.01, max_value=10.0),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_recorder_conserves_unclipped_activity(events):
    """Property: total recorded activity equals the sum of event masses
    (when the trace is long enough that nothing clips)."""
    recorder = ActivityRecorder(clock_hz=1e9)
    expected = 0.0
    horizon = 0
    for component, start, duration, amount in events:
        recorder.add(component, start, duration, amount)
        expected += duration * amount
        horizon = max(horizon, start + duration)
    trace = recorder.finish(horizon)
    assert trace.data.sum() == pytest.approx(expected, rel=1e-9)


@given(factor=st.integers(min_value=1, max_value=16))
@settings(max_examples=20, deadline=None)
def test_downsample_conserves_total(factor):
    """Property: block-averaging preserves total activity (up to the
    dropped remainder block)."""
    rng = np.random.default_rng(7)
    cycles = 64
    data = rng.uniform(0, 2, size=(NUM_COMPONENTS, cycles))
    trace = ActivityTrace(data, clock_hz=1e9)
    coarse = trace.downsample(factor)
    usable = (cycles // factor) * factor
    assert coarse.data.sum() * factor == pytest.approx(data[:, :usable].sum(), rel=1e-9)
