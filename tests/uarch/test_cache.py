"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.uarch.cache import Cache, CacheGeometry


class TestCacheGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, ways=8, line_bytes=64)
        assert geometry.num_sets == 64

    def test_fully_associative(self):
        geometry = CacheGeometry(size_bytes=512, ways=8, line_bytes=64)
        assert geometry.num_sets == 1

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=3000, ways=4, line_bytes=64)
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=4096, ways=3, line_bytes=64)

    def test_too_small_for_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=64, ways=2, line_bytes=64)

    def test_set_index_wraps(self):
        geometry = CacheGeometry(size_bytes=1024, ways=2, line_bytes=64)
        assert geometry.set_index(0) == geometry.set_index(geometry.num_sets * 64)

    def test_line_address(self):
        geometry = CacheGeometry(size_bytes=1024, ways=2, line_bytes=64)
        assert geometry.line_address(130) == 128


def _tiny_cache(ways=2, sets=4) -> Cache:
    return Cache(CacheGeometry(size_bytes=ways * sets * 64, ways=ways, line_bytes=64))


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = _tiny_cache()
        assert not cache.access(0, False).hit
        assert cache.access(0, False).hit

    def test_same_line_different_bytes_hit(self):
        cache = _tiny_cache()
        cache.access(0, False)
        assert cache.access(63, False).hit

    def test_lru_eviction_order(self):
        cache = _tiny_cache(ways=2, sets=1)
        cache.access(0x000, False)
        cache.access(0x040, False)
        cache.access(0x000, False)  # refresh line 0
        result = cache.access(0x080, False)  # evicts LRU = 0x040
        assert result.evicted_line == 0x040

    def test_write_marks_dirty(self):
        cache = _tiny_cache()
        cache.access(0, True)
        assert cache.dirty_lines() == 1

    def test_write_hit_marks_dirty(self):
        cache = _tiny_cache()
        cache.access(0, False)
        assert cache.dirty_lines() == 0
        cache.access(0, True)
        assert cache.dirty_lines() == 1

    def test_dirty_eviction_reported(self):
        cache = _tiny_cache(ways=1, sets=1)
        cache.access(0x000, True)
        result = cache.access(0x040, False)
        assert result.evicted_dirty
        assert result.evicted_line == 0x000

    def test_clean_eviction_not_dirty(self):
        cache = _tiny_cache(ways=1, sets=1)
        cache.access(0x000, False)
        assert not cache.access(0x040, False).evicted_dirty

    def test_evicted_line_address_reconstruction(self):
        cache = _tiny_cache(ways=1, sets=4)
        address = 0x1040  # set 1 under 4 sets of 64B lines
        cache.access(address, False)
        result = cache.access(address + 4 * 64, False)  # same set, new tag
        assert result.evicted_line == (address // 64) * 64

    def test_stats(self):
        cache = _tiny_cache()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0x40, True)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.fills == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_lookup_does_not_modify(self):
        cache = _tiny_cache()
        assert not cache.lookup(0)
        assert cache.stats.accesses == 0
        cache.access(0, False)
        assert cache.lookup(0)

    def test_invalidate_all(self):
        cache = _tiny_cache()
        cache.access(0, True)
        cache.invalidate_all()
        assert cache.resident_lines() == 0
        assert not cache.access(0, False).hit

    def test_capacity_never_exceeded(self):
        cache = _tiny_cache(ways=2, sets=4)
        for i in range(64):
            cache.access(i * 64, False)
        assert cache.resident_lines() <= 8

    def test_sweep_within_capacity_all_hits_after_warm(self):
        cache = _tiny_cache(ways=2, sets=4)  # 8 lines
        addresses = [i * 64 for i in range(8)]
        for address in addresses:
            cache.access(address, False)
        assert all(cache.access(address, False).hit for address in addresses)

    def test_cyclic_sweep_beyond_capacity_always_misses(self):
        cache = _tiny_cache(ways=2, sets=4)  # 8 lines capacity
        addresses = [i * 64 for i in range(16)]  # 2x capacity
        for _sweep in range(3):
            results = [cache.access(address, False) for address in addresses]
        assert not any(result.hit for result in results)


class _ReferenceCache:
    """Oracle: per-set ordered dict of tags, most recent last."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.sets = [dict() for _ in range(geometry.num_sets)]

    def access(self, address: int, is_write: bool) -> bool:
        index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        cache_set = self.sets[index]
        hit = tag in cache_set
        if hit:
            dirty = cache_set.pop(tag) or is_write
            cache_set[tag] = dirty
        else:
            if len(cache_set) >= self.geometry.ways:
                victim = next(iter(cache_set))
                del cache_set[victim]
            cache_set[tag] = is_write
        return hit


@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4095), st.booleans()),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=60, deadline=None)
def test_cache_matches_reference_model(accesses):
    """Property: hit/miss decisions agree with an independent LRU oracle."""
    geometry = CacheGeometry(size_bytes=512, ways=2, line_bytes=64)
    cache = Cache(geometry)
    oracle = _ReferenceCache(geometry)
    for address, is_write in accesses:
        assert cache.access(address, is_write).hit == oracle.access(address, is_write)


@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=8191), st.booleans()),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=40, deadline=None)
def test_cache_invariants(accesses):
    """Property: stats add up and capacity bounds hold after any trace."""
    cache = Cache(CacheGeometry(size_bytes=1024, ways=4, line_bytes=64))
    for address, is_write in accesses:
        cache.access(address, is_write)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(accesses)
    assert stats.dirty_evictions <= stats.evictions <= stats.misses
    assert cache.resident_lines() <= 16
    assert cache.dirty_lines() <= cache.resident_lines()
