"""Unit tests for the branch predictor and its core integration."""

import pytest

from repro.isa.assembler import assemble
from repro.uarch.branch import BranchPredictor
from repro.uarch.cache import CacheGeometry
from repro.uarch.components import Component
from repro.uarch.core import Core


class TestBranchPredictor:
    def test_initial_prediction_not_taken(self):
        assert not BranchPredictor().predict(0x100)

    def test_learns_taken(self):
        predictor = BranchPredictor()
        predictor.record(0x100, taken=True)
        assert predictor.predict(0x100)

    def test_two_bit_hysteresis(self):
        """A saturated-taken counter survives one not-taken outcome."""
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.record(0x100, taken=True)
        predictor.record(0x100, taken=False)
        assert predictor.predict(0x100)  # still predicts taken
        predictor.record(0x100, taken=False)
        assert not predictor.predict(0x100)

    def test_mispredict_reported(self):
        predictor = BranchPredictor()
        assert predictor.record(0x100, taken=True)  # init not-taken -> miss
        predictor.record(0x100, taken=True)
        assert not predictor.record(0x100, taken=True)

    def test_independent_addresses(self):
        predictor = BranchPredictor()
        predictor.record(0x100, taken=True)
        predictor.record(0x100, taken=True)
        assert predictor.predict(0x100)
        assert not predictor.predict(0x200)

    def test_stats(self):
        predictor = BranchPredictor()
        predictor.record(1, True)   # miss
        predictor.record(1, True)
        predictor.record(1, True)
        assert predictor.stats.predictions == 3
        assert predictor.stats.mispredictions == 1
        assert predictor.stats.misprediction_rate == pytest.approx(1 / 3)

    def test_reset(self):
        predictor = BranchPredictor()
        predictor.record(1, True)
        predictor.reset()
        assert predictor.stats.predictions == 0
        assert not predictor.predict(1)


def _core() -> Core:
    return Core(
        clock_hz=1e9,
        l1_geometry=CacheGeometry(1024, 2, 64),
        l2_geometry=CacheGeometry(8192, 4, 64),
    )


class TestCoreIntegration:
    def test_loop_branch_learns(self):
        core = _core()
        core.run(
            assemble(
                """
                mov ecx, 50
                top: dec ecx
                jnz top
                halt
                """
            )
        )
        # Entry and exit mispredict; the 48 middle iterations hit.
        assert core.predictor.stats.mispredictions <= 3
        assert core.predictor.stats.predictions == 50

    def test_mispredict_costs_cycles(self):
        source = """
        mov eax, 1
        test eax, 1
        jz nowhere
        nowhere: halt
        """
        core = _core()
        result = core.run(assemble(source))
        # jz is not taken; initial prediction is not-taken -> no miss.
        baseline = result.cycles

        taken_source = """
        mov eax, 1
        test eax, 2
        jz somewhere
        somewhere: halt
        """
        core2 = _core()
        result2 = core2.run(assemble(taken_source))
        # jz IS taken; prediction says not-taken -> mispredict penalty.
        assert result2.cycles == baseline + core2.timings.branch_mispredict_cycles

    def test_mispredict_generates_flush_activity(self):
        core = _core()
        result = core.run(
            assemble("mov eax, 0\ntest eax, 1\njz off\noff: halt")
        )
        fetch_total = result.trace.totals()[Component.FETCH]
        # 3 executed instructions + the flush refetch burst.
        expected = 3 * core.activity.fetch + core.activity.flush_refetch
        assert fetch_total == pytest.approx(expected)

    def test_every_branch_touches_predictor_component(self):
        core = _core()
        result = core.run(assemble("jmp end\nend: halt"))
        assert result.trace.totals()[Component.BPRED] > 0

    def test_unconditional_jmp_never_mispredicts(self):
        core = _core()
        core.run(assemble("jmp end\nend: halt"))
        assert core.predictor.stats.predictions == 0

    def test_reset_clears_predictor(self):
        core = _core()
        core.run(assemble("mov ecx, 4\ntop: dec ecx\njnz top\nhalt"))
        core.reset()
        assert core.predictor.stats.predictions == 0
