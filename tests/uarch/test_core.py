"""Unit tests for the in-order core: semantics, timing, activity."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.uarch.components import Component
from repro.uarch.core import Core
from repro.uarch.cache import CacheGeometry
from repro.uarch.functional_units import FunctionalUnitTimings


def _core(**kwargs) -> Core:
    defaults = dict(
        clock_hz=1e9,
        l1_geometry=CacheGeometry(1024, 2, 64),
        l2_geometry=CacheGeometry(8192, 4, 64),
    )
    defaults.update(kwargs)
    return Core(**defaults)


def _run(core: Core, source: str):
    return core.run(assemble(source))


class TestArithmeticSemantics:
    def test_mov_imm(self):
        core = _core()
        _run(core, "mov eax, 42\nhalt")
        assert core.registers["eax"] == 42

    def test_mov_reg(self):
        core = _core()
        _run(core, "mov eax, 7\nmov ebx, eax\nhalt")
        assert core.registers["ebx"] == 7

    def test_add_sub(self):
        core = _core()
        _run(core, "mov eax, 10\nadd eax, 5\nsub eax, 3\nhalt")
        assert core.registers["eax"] == 12

    def test_add_wraps_32_bits(self):
        core = _core()
        _run(core, "mov eax, 0xFFFFFFFF\nadd eax, 2\nhalt")
        assert core.registers["eax"] == 1

    def test_logic_ops(self):
        core = _core()
        _run(core, "mov eax, 0xF0\nand eax, 0x3C\nor eax, 1\nxor eax, 0xFF\nhalt")
        assert core.registers["eax"] == (((0xF0 & 0x3C) | 1) ^ 0xFF)

    def test_shifts(self):
        core = _core()
        _run(core, "mov eax, 1\nshl eax, 4\nshr eax, 1\nhalt")
        assert core.registers["eax"] == 8

    def test_inc_dec(self):
        core = _core()
        _run(core, "mov ecx, 5\ninc ecx\ndec ecx\ndec ecx\nhalt")
        assert core.registers["ecx"] == 4

    def test_imul(self):
        core = _core()
        _run(core, "mov eax, 6\nimul eax, 7\nhalt")
        assert core.registers["eax"] == 42

    def test_idiv_quotient_and_remainder(self):
        core = _core()
        _run(core, "mov eax, 17\nmov ebx, 5\nidiv ebx\nhalt")
        assert core.registers["eax"] == 3
        assert core.registers["edx"] == 2

    def test_idiv_by_zero_is_defined(self):
        core = _core()
        _run(core, "mov eax, 17\nmov ebx, 0\nidiv ebx\nhalt")
        assert core.registers["eax"] == 17

    def test_lea_computes_address_without_memory_access(self):
        core = _core()
        _run(core, "mov esi, 0x100\nlea ebx, [esi+64]\nhalt")
        assert core.registers["ebx"] == 0x140
        assert core.hierarchy.l1.stats.accesses == 0


class TestControlFlow:
    def test_counted_loop(self):
        core = _core()
        result = _run(
            core,
            """
            mov ecx, 4
            mov eax, 0
            top: add eax, 2
            dec ecx
            jnz top
            halt
            """,
        )
        assert core.registers["eax"] == 8

    def test_jmp(self):
        core = _core()
        _run(core, "mov eax, 1\njmp end\nadd eax, 100\nend: halt")
        assert core.registers["eax"] == 1

    def test_jz_taken_on_zero(self):
        core = _core()
        _run(core, "mov eax, 1\nsub eax, 1\njz skip\nadd eax, 50\nskip: halt")
        assert core.registers["eax"] == 0

    def test_cmp_sets_zero_flag(self):
        core = _core()
        _run(core, "mov eax, 3\ncmp eax, 3\njz equal\nmov ebx, 1\nequal: halt")
        assert core.registers["ebx"] == 0

    def test_test_sets_zero_flag(self):
        core = _core()
        _run(core, "mov eax, 0xF0\ntest eax, 0x0F\njz disjoint\nmov ebx, 9\ndisjoint: halt")
        assert core.registers["ebx"] == 0

    def test_falling_off_end_stops(self):
        core = _core()
        result = _run(core, "mov eax, 5")
        assert result.stats.instructions == 1

    def test_runaway_loop_raises(self):
        core = _core()
        with pytest.raises(SimulationError, match="exceeded"):
            core.run(assemble("top: jmp top"), max_instructions=100)


class TestMemorySemantics:
    def test_store_then_load(self):
        core = _core()
        _run(core, "mov esi, 0x1000\nmov [esi], 99\nmov eax, [esi]\nhalt")
        assert core.registers["eax"] == 99

    def test_uninitialized_load_returns_zero(self):
        core = _core()
        _run(core, "mov esi, 0x2000\nmov eax, [esi]\nhalt")
        assert core.registers["eax"] == 0

    def test_indexed_addressing(self):
        core = _core()
        _run(
            core,
            "mov esi, 0x1000\nmov eax, 2\nmov [esi+eax*4+8], 7\n"
            "mov ebx, [esi+16]\nhalt",
        )
        assert core.registers["ebx"] == 7

    def test_memory_level_counting(self):
        core = _core()
        result = _run(core, "mov esi, 0x1000\nmov eax, [esi]\nmov eax, [esi]\nhalt")
        assert result.stats.level_counts == {"MEM": 1, "L1": 1}


class TestTimingAndActivity:
    def test_alu_costs_one_cycle(self):
        core = _core()
        baseline = _run(core, "halt").cycles
        core.reset()
        result = _run(core, "add eax, 1\nhalt")
        assert result.cycles == baseline + 1

    def test_div_costs_configured_latency(self):
        core = _core(timings=FunctionalUnitTimings(div_cycles=30))
        result = _run(core, "mov eax, 9\nidiv eax\nhalt")
        mov_cost = core.timings.mov_cycles
        assert result.cycles == mov_cost + 30

    def test_mul_activity_lands_on_mul_unit(self):
        core = _core()
        result = _run(core, "imul eax, 3\nhalt")
        assert result.trace.totals()[Component.MUL] > 0
        assert result.trace.totals()[Component.DIV] == 0

    def test_div_busy_for_its_latency(self):
        core = _core()
        result = _run(core, "mov eax, 9\nidiv eax\nhalt")
        busy_cycles = (result.trace.component(Component.DIV) > 0).sum()
        assert busy_cycles == core.timings.div_cycles

    def test_every_instruction_fetches(self):
        core = _core()
        result = _run(core, "nop\nnop\nadd eax, 1\nhalt")
        assert result.trace.totals()[Component.FETCH] == pytest.approx(
            3 * core.activity.fetch
        )

    def test_offchip_load_touches_bus_and_dram(self):
        core = _core()
        result = _run(core, "mov esi, 0x4000\nmov eax, [esi]\nhalt")
        totals = result.trace.totals()
        assert totals[Component.MEM_BUS] > 0
        assert totals[Component.DRAM] > 0
        assert totals[Component.L2] > 0

    def test_l1_hit_does_not_touch_l2(self):
        core = _core()
        _run(core, "mov esi, 0x4000\nmov eax, [esi]\nhalt")
        core.hierarchy.l1.stats.__init__()
        result = core.run(
            assemble("mov eax, [esi]\nhalt"), warm_hierarchy=True
        )
        # Only the residual L2 activity from the first (cold) load exists
        # in the first trace; this second trace must have none.
        assert result.trace.totals()[Component.L2] == 0

    def test_store_touches_wb_buffer(self):
        core = _core()
        result = _run(core, "mov esi, 0x1000\nmov [esi], 5\nhalt")
        assert result.trace.totals()[Component.WB_BUFFER] > 0

    def test_trace_length_equals_cycles(self):
        core = _core()
        result = _run(core, "add eax, 1\nimul eax, 2\nhalt")
        assert result.trace.num_cycles == result.cycles


class TestStateManagement:
    def test_reset_clears_registers_and_memory(self):
        core = _core()
        _run(core, "mov esi, 0x1000\nmov [esi], 1\nmov eax, 3\nhalt")
        core.reset()
        assert core.registers["eax"] == 0
        assert core.memory == {}

    def test_warm_hierarchy_preserves_cache(self):
        core = _core()
        _run(core, "mov esi, 0x1000\nmov eax, [esi]\nhalt")
        result = core.run(assemble("mov eax, [esi]\nhalt"), warm_hierarchy=True)
        assert result.stats.level_counts == {"L1": 1}

    def test_cold_run_resets_cache(self):
        core = _core()
        _run(core, "mov esi, 0x1000\nmov eax, [esi]\nhalt")
        result = core.run(assemble("mov esi, 0x1000\nmov eax, [esi]\nhalt"))
        assert result.stats.level_counts == {"MEM": 1}

    def test_registers_snapshot_returned(self):
        core = _core()
        result = _run(core, "mov eax, 11\nhalt")
        assert result.registers["eax"] == 11
