"""Randomized property tests: array cache engine vs the scalar reference.

The wavefront engine (`replay_stream` / `access_block` /
`MemoryHierarchy.access_stream`) must be *exactly* the scalar
`Cache.access` loop — same final tags, dirty bits, LRU order, and every
counter, on any stream.  Hypothesis drives streams with set aliasing,
dirty evictions, and capacity conflicts through both implementations;
the whole suite runs under both settings of the reference-path toggle.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import Cache, CacheGeometry, replay_stream
from repro.uarch.fastpath import use_fast_path, use_reference_path
from repro.uarch.hierarchy import MemoryHierarchy, MemoryLatencies

#: Small geometries so short streams exercise aliasing and evictions.
GEOMETRIES = [
    CacheGeometry(64, 1, 64),  # single direct-mapped set
    CacheGeometry(512, 2, 64),  # 4 sets x 2 ways
    CacheGeometry(1024, 4, 64),  # 4 sets x 4 ways
    CacheGeometry(4096, 8, 64),  # 8 sets x 8 ways
]

_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=127), st.booleans()),
    min_size=1,
    max_size=300,
)


#: Each property runs under both settings of the reference-path toggle
#: (a context manager inside the test body — hypothesis forbids
#: function-scoped fixtures).
_TOGGLES = {"fast": use_fast_path, "reference": use_reference_path}
_both_paths = pytest.mark.parametrize("path_toggle", sorted(_TOGGLES))


def _with_toggle(test):
    """Run the test body inside the selected path-toggle context."""

    @functools.wraps(test)
    def wrapper(path_toggle, **kwargs):
        with _TOGGLES[path_toggle]():
            test(path_toggle, **kwargs)

    return wrapper


def _scalar_replay(cache: Cache, lines, writes):
    results = []
    line_bytes = cache.geometry.line_bytes
    for line, write in zip(lines, writes):
        results.append(cache.access(int(line) * line_bytes, bool(write)))
    return results


@_both_paths
@given(geometry_index=st.integers(0, len(GEOMETRIES) - 1), stream=_streams)
@settings(max_examples=60, deadline=None)
@_with_toggle
def test_replay_stream_matches_scalar_access(path_toggle, geometry_index, stream):
    """Property: replay_stream == a scalar access loop, state and outputs."""
    geometry = GEOMETRIES[geometry_index]
    reference = Cache(geometry, name="reference")
    engine = Cache(geometry, name="engine")
    lines = np.array([line for line, _ in stream], dtype=np.int64)
    writes = np.array([write for _, write in stream], dtype=bool)

    results = _scalar_replay(reference, lines, writes)
    num_sets = geometry.num_sets
    hit, evicted, victim_tag, victim_dirty = replay_stream(
        engine._tags,
        engine._dirty,
        engine._occupancy,
        geometry.ways,
        lines % num_sets,
        lines // num_sets,
        writes,
    )

    assert np.array_equal(hit, [r.hit for r in results])
    assert np.array_equal(evicted, [r.evicted_line is not None for r in results])
    line_bytes = geometry.line_bytes
    expected_victims = [
        (r.evicted_line // line_bytes) // num_sets if r.evicted_line is not None else 0
        for r in results
    ]
    assert np.array_equal(victim_tag, expected_victims)
    assert np.array_equal(
        victim_dirty,
        [bool(r.evicted_dirty) if r.evicted_line is not None else False for r in results],
    )
    # Final state: tags (the LRU order), dirty bits, occupancy.
    assert np.array_equal(reference._tags, engine._tags)
    assert np.array_equal(reference._dirty, engine._dirty)
    assert np.array_equal(reference._occupancy, engine._occupancy)
    # Every counter, reconstructed from the per-access outputs.
    stats = vars(reference.stats)
    assert stats["accesses"] == len(stream)
    assert stats["hits"] == int(hit.sum())
    assert stats["misses"] == len(stream) - int(hit.sum())
    assert stats["fills"] == len(stream) - int(hit.sum())
    assert stats["evictions"] == int(evicted.sum())
    assert stats["dirty_evictions"] == int(victim_dirty.sum())


@_both_paths
@given(
    geometry_index=st.integers(0, len(GEOMETRIES) - 1),
    lines=st.lists(st.integers(0, 127), min_size=1, max_size=300),
    is_write=st.booleans(),
)
@settings(max_examples=60, deadline=None)
@_with_toggle
def test_access_block_matches_scalar_access(path_toggle, geometry_index, lines, is_write):
    """Property: access_block == a scalar loop, state and statistics."""
    geometry = GEOMETRIES[geometry_index]
    reference = Cache(geometry, name="reference")
    engine = Cache(geometry, name="engine")
    addresses = np.array(lines, dtype=np.int64) * geometry.line_bytes

    for address in addresses:
        reference.access(int(address), is_write)
    engine.access_block(addresses, is_write)

    assert np.array_equal(reference._tags, engine._tags)
    assert np.array_equal(reference._dirty, engine._dirty)
    assert np.array_equal(reference._occupancy, engine._occupancy)
    assert vars(reference.stats) == vars(engine.stats)


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        l1_geometry=CacheGeometry(512, 2, 64),
        l2_geometry=CacheGeometry(4096, 4, 64),
        latencies=MemoryLatencies(l1_cycles=2, l2_cycles=8, memory_cycles=60),
    )


def _hierarchy_state(hierarchy: MemoryHierarchy):
    return (
        hierarchy.l1._tags.copy(),
        hierarchy.l1._dirty.copy(),
        hierarchy.l1._occupancy.copy(),
        hierarchy.l2._tags.copy(),
        hierarchy.l2._dirty.copy(),
        hierarchy.l2._occupancy.copy(),
    )


@_both_paths
@given(stream=_streams)
@settings(max_examples=60, deadline=None)
@_with_toggle
def test_access_stream_matches_scalar_hierarchy(path_toggle, stream):
    """Property: hierarchy access_stream == a scalar access loop.

    Covers L1/L2 capacity conflicts and dirty write-back chains: the
    L2 here is only 8x the L1, so streams routinely push dirty lines
    through both levels and off chip.
    """
    reference = _hierarchy()
    engine = _hierarchy()
    addresses = np.array([line * 64 for line, _ in stream], dtype=np.int64)
    writes = np.array([write for _, write in stream], dtype=bool)

    reports = [
        reference.access(int(address), bool(write))
        for address, write in zip(addresses, writes)
    ]
    levels, l2_counts, offchip = engine.access_stream_reports(addresses, writes)

    level_names = {"L1": 0, "L2": 1, "MEM": 2}
    assert np.array_equal(levels, [level_names[r.level] for r in reports])
    assert np.array_equal(l2_counts, [r.l2_accesses for r in reports])
    assert np.array_equal(offchip, [r.offchip_transfers for r in reports])
    for state_a, state_b in zip(_hierarchy_state(reference), _hierarchy_state(engine)):
        assert np.array_equal(state_a, state_b)
    assert vars(reference.l1.stats) == vars(engine.l1.stats)
    assert vars(reference.l2.stats) == vars(engine.l2.stats)
    assert reference.offchip_accesses == engine.offchip_accesses
