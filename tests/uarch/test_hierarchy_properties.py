"""Property tests for multi-level hierarchy invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.uarch.cache import CacheGeometry
from repro.uarch.hierarchy import MemoryHierarchy, MemoryLatencies


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        l1_geometry=CacheGeometry(512, 2, 64),
        l2_geometry=CacheGeometry(4096, 4, 64),
        latencies=MemoryLatencies(l1_cycles=2, l2_cycles=8, memory_cycles=60),
    )


_accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=16383), st.booleans()),
    min_size=1,
    max_size=400,
)


@given(accesses=_accesses)
@settings(max_examples=40, deadline=None)
def test_immediate_reaccess_always_hits_l1(accesses):
    """Property: any address hits L1 right after being accessed."""
    hierarchy = _hierarchy()
    for address, is_write in accesses:
        hierarchy.access(address, is_write)
        assert hierarchy.access(address, False).level == "L1"


@given(accesses=_accesses)
@settings(max_examples=40, deadline=None)
def test_latency_matches_reported_level(accesses):
    """Property: the reported latency always corresponds to the level."""
    hierarchy = _hierarchy()
    expected = {"L1": 2, "L2": 8, "MEM": 60}
    for address, is_write in accesses:
        report = hierarchy.access(address, is_write)
        assert report.latency_cycles == expected[report.level]


@given(accesses=_accesses)
@settings(max_examples=40, deadline=None)
def test_offchip_counter_matches_transfers(accesses):
    """Property: the hierarchy's off-chip counter equals the sum of
    per-access transfer reports."""
    hierarchy = _hierarchy()
    total = 0
    for address, is_write in accesses:
        total += hierarchy.access(address, is_write).offchip_transfers
    assert hierarchy.offchip_accesses == total


@given(accesses=_accesses)
@settings(max_examples=40, deadline=None)
def test_read_only_traffic_never_writes_back(accesses):
    """Property: without stores there are no dirty write-backs anywhere."""
    hierarchy = _hierarchy()
    for address, _is_write in accesses:
        report = hierarchy.access(address, False)
        assert not report.l1_writeback
        assert not report.l2_writeback


@given(
    accesses=_accesses,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_reset_restores_cold_behaviour(accesses, seed):
    """Property: after reset, the hierarchy behaves exactly like new."""
    rng = np.random.default_rng(seed)
    probe = [(int(rng.integers(0, 16384)), bool(rng.integers(2))) for _ in range(20)]

    fresh = _hierarchy()
    fresh_levels = [fresh.access(a, w).level for a, w in probe]

    used = _hierarchy()
    for address, is_write in accesses:
        used.access(address, is_write)
    used.reset()
    reset_levels = [used.access(a, w).level for a, w in probe]

    assert fresh_levels == reset_levels
