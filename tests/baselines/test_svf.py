"""Unit tests for the simplified SVF baseline."""

import numpy as np
import pytest

from repro.baselines.svf import (
    compute_svf,
    similarity_matrix,
    window_features,
)
from repro.errors import ConfigurationError


class TestWindowFeatures:
    def test_shape(self):
        features = window_features(np.arange(100.0), 10)
        assert features.shape == (10, 1)

    def test_multichannel(self):
        series = np.vstack([np.arange(100.0), np.ones(100)])
        features = window_features(series, 5)
        assert features.shape == (5, 2)

    def test_means_correct(self):
        features = window_features(np.repeat([1.0, 3.0], 50), 2)
        assert features[0, 0] == pytest.approx(1.0)
        assert features[1, 0] == pytest.approx(3.0)

    def test_too_few_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            window_features(np.arange(100.0), 1)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            window_features(np.arange(5.0), 10)


class TestSimilarityMatrix:
    def test_zero_diagonal(self):
        matrix = similarity_matrix(np.random.default_rng(0).normal(size=(6, 3)))
        assert np.allclose(np.diag(matrix), 0.0)

    def test_symmetric(self):
        matrix = similarity_matrix(np.random.default_rng(1).normal(size=(6, 3)))
        assert np.allclose(matrix, matrix.T)

    def test_euclidean(self):
        features = np.array([[0.0], [3.0], [7.0]])
        matrix = similarity_matrix(features)
        assert matrix[0, 1] == pytest.approx(3.0)
        assert matrix[0, 2] == pytest.approx(7.0)

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            similarity_matrix(np.arange(5.0))


class TestComputeSvf:
    def test_identical_series_gives_one(self, rng):
        series = rng.normal(size=4096)
        result = compute_svf(series, series, num_windows=32)
        assert result.svf == pytest.approx(1.0)

    def test_scaled_series_still_one(self, rng):
        series = rng.normal(size=4096).cumsum()
        result = compute_svf(series, 5.0 * series, num_windows=32)
        assert result.svf == pytest.approx(1.0)

    def test_independent_series_near_zero(self, rng):
        oracle = rng.normal(size=8192).cumsum()
        signal = rng.normal(size=8192).cumsum()
        result = compute_svf(oracle, signal, num_windows=24)
        assert abs(result.svf) < 0.6  # uncorrelated random walks

    def test_noisy_observation_degrades_svf(self, rng):
        oracle = np.repeat(rng.uniform(0, 1, 64), 64)
        clean = compute_svf(oracle, oracle, num_windows=32).svf
        noisy_signal = oracle + rng.normal(0, 5.0, size=oracle.shape)
        noisy = compute_svf(oracle, noisy_signal, num_windows=32).svf
        assert noisy < clean

    def test_constant_signal_gives_zero(self, rng):
        oracle = rng.normal(size=1024)
        result = compute_svf(oracle, np.ones(1024), num_windows=16)
        assert result.svf == 0.0

    def test_result_carries_matrices(self, rng):
        series = rng.normal(size=1024)
        result = compute_svf(series, series, num_windows=16)
        assert result.oracle_similarity.shape == (16, 16)
        assert result.signal_similarity.shape == (16, 16)
        assert result.num_windows == 16
