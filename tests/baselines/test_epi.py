"""Tests for the energy-per-instruction baseline."""

import pytest

from repro.baselines.epi import (
    epi_table,
    measure_energy_per_instruction,
    ranking_disagreement,
)
from repro.errors import ConfigurationError


@pytest.mark.slow
class TestEpiMeasurement:
    @pytest.fixture(scope="class")
    def table(self, core2duo_10cm):
        return epi_table(core2duo_10cm)

    def test_all_events_measured(self, table):
        assert len(table) == 10  # everything but NOI

    def test_energies_positive_and_plausible(self, table):
        for result in table.values():
            assert 0 < result.energy_pj < 100_000

    def test_offchip_burns_most(self, table):
        """An off-chip access moves a cache line over board wires; it
        must dominate register arithmetic by orders of magnitude."""
        assert table["LDM"].energy_j > 20 * table["ADD"].energy_j

    def test_store_to_memory_costs_more_than_load(self, table):
        """STM's dirty write-backs move extra lines."""
        assert table["STM"].energy_j > table["LDM"].energy_j

    def test_cache_hierarchy_ordering(self, table):
        assert table["LDM"].energy_j > table["LDL2"].energy_j > table["LDL1"].energy_j

    def test_div_expensive_among_arithmetic(self, table):
        assert table["DIV"].energy_j > table["ADD"].energy_j

    def test_add_sub_equal(self, table):
        assert table["ADD"].energy_j == pytest.approx(table["SUB"].energy_j, rel=0.05)

    def test_string_accessors(self, core2duo_10cm):
        result = measure_energy_per_instruction(core2duo_10cm, "MUL")
        assert result.event == "MUL"
        assert result.cycles_per_instruction > 0


class TestRankingDisagreement:
    def test_identical_rankings(self):
        values = {"A": 1.0, "B": 2.0, "C": 3.0}
        report = ranking_disagreement(values, values)
        assert report["spearman"] == pytest.approx(1.0)
        assert report["max_rank_gap"] == 0

    def test_reversed_rankings(self):
        epi = {"A": 1.0, "B": 2.0, "C": 3.0}
        savat = {"A": 3.0, "B": 2.0, "C": 1.0}
        report = ranking_disagreement(epi, savat)
        assert report["spearman"] == pytest.approx(-1.0)
        assert report["max_rank_gap"] == 2

    def test_too_few_events_rejected(self):
        with pytest.raises(ConfigurationError):
            ranking_disagreement({"A": 1.0}, {"A": 1.0})

    @pytest.mark.slow
    def test_epi_and_savat_rankings_differ(self, core2duo_10cm):
        """The paper's §VI point: burning energy is not the same as
        handing the attacker signal."""
        from repro.machines.reference_data import CORE2DUO_10CM

        table = epi_table(core2duo_10cm)
        epi_values = {name: result.energy_j for name, result in table.items()}
        # Single-instruction SAVAT vs ADD as the common reference.
        savat_values = {
            name: CORE2DUO_10CM.cell(name, "ADD") for name in epi_values
        }
        report = ranking_disagreement(epi_values, savat_values)
        assert report["spearman"] < 0.98  # visibly imperfect agreement
        assert report["max_rank_gap"] >= 2
