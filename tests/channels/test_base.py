"""Unit tests for the generic channel model."""

import numpy as np
import pytest

from repro.channels.base import ChannelModel
from repro.em.environment import NoiseEnvironment
from repro.errors import ConfigurationError
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS


def _channel(lowpass_hz=None, num_modes=1) -> ChannelModel:
    weights = np.zeros((num_modes, NUM_COMPONENTS))
    weights[:, 0] = 1.0
    return ChannelModel(
        name="test",
        weights=weights,
        environment=NoiseEnvironment(include_thermal=False),
        lowpass_hz=lowpass_hz,
    )


class TestValidation:
    def test_weight_shape_checked(self):
        with pytest.raises(ConfigurationError):
            ChannelModel("x", np.zeros((1, 3)), NoiseEnvironment())

    def test_lowpass_positive(self):
        with pytest.raises(ConfigurationError):
            _channel(lowpass_hz=0.0)

    def test_num_modes(self):
        assert _channel(num_modes=3).num_modes == 3


class TestAttenuation:
    def test_flat_channel(self):
        assert _channel().attenuation_at(1e9) == 1.0

    def test_corner_is_3db(self):
        channel = _channel(lowpass_hz=1000.0)
        assert channel.attenuation_at(1000.0) == pytest.approx(1 / np.sqrt(2))

    def test_rolloff_above_corner(self):
        channel = _channel(lowpass_hz=1000.0)
        assert channel.attenuation_at(10_000.0) == pytest.approx(0.0995, rel=0.01)

    def test_passband_flat(self):
        channel = _channel(lowpass_hz=1000.0)
        assert channel.attenuation_at(10.0) == pytest.approx(1.0, abs=1e-3)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            _channel(lowpass_hz=1000.0).attenuation_at(0.0)


class TestProjection:
    def _square_trace(self, cycles=100_000, clock_hz=1e8) -> ActivityTrace:
        data = np.zeros((NUM_COMPONENTS, cycles))
        data[0, : cycles // 2] = 1.0
        return ActivityTrace(data, clock_hz=clock_hz)

    def test_flat_channel_passes_through(self):
        trace = self._square_trace(1000)
        waveform = _channel().project_trace(trace)
        assert np.allclose(waveform[0, :500], 1.0)
        assert np.allclose(waveform[0, 500:], 0.0)

    def test_lowpass_attenuates_fundamental(self):
        from repro.em.coupling import fourier_coefficient

        trace = self._square_trace()
        f_alt = trace.clock_hz / trace.num_cycles  # 1 kHz
        channel = _channel(lowpass_hz=f_alt)  # corner right at f_alt
        flat = abs(fourier_coefficient(_channel().project_trace(trace))[0])
        filtered = abs(fourier_coefficient(channel.project_trace(trace))[0])
        assert filtered == pytest.approx(flat / np.sqrt(2), rel=0.02)

    def test_periodic_steady_state_no_transient(self):
        """The filtered period must equal the same period filtered after
        many warm-up repetitions (i.e. the true periodic steady state)."""
        from scipy.signal import lfilter

        trace = self._square_trace(10_000, clock_hz=1e6)
        channel = _channel(lowpass_hz=50.0)  # very slow filter
        one_period = channel.project_trace(trace)

        waveform = trace.project(channel.weights)
        alpha = 2 * np.pi * 50.0 / 1e6
        tiled = np.tile(waveform, (1, 60))
        brute = lfilter([alpha], [1.0, alpha - 1.0], tiled, axis=1)[:, -10_000:]
        assert np.allclose(one_period, brute, atol=1e-9)

    def test_dc_preserved_by_filter(self):
        trace = self._square_trace(1000)
        filtered = _channel(lowpass_hz=1.0).project_trace(trace)
        assert filtered.mean() == pytest.approx(0.5, rel=0.01)
