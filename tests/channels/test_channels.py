"""Tests for the power/acoustic channel instances and measurement."""

import numpy as np
import pytest

from repro.channels import (
    channel_comparison,
    distinguishability_profile,
    laptop_acoustic_channel,
    measure_channel_savat,
    wall_power_channel,
)
from repro.errors import MeasurementError
from repro.uarch.components import COMPONENT_INDEX, Component


class TestChannelInstances:
    def test_power_is_single_mode(self):
        assert wall_power_channel().num_modes == 1

    def test_acoustic_separates_vrm_domains(self):
        channel = laptop_acoustic_channel()
        assert channel.num_modes == 2
        bus = COMPONENT_INDEX[Component.MEM_BUS]
        alu = COMPONENT_INDEX[Component.ALU]
        assert channel.weights[1, bus] > 0 and channel.weights[0, bus] == 0
        assert channel.weights[0, alu] > 0 and channel.weights[1, alu] == 0

    def test_power_channel_needs_slow_alternation(self):
        channel = wall_power_channel()
        assert channel.recommended_frequency_hz < channel.lowpass_hz
        # The paper's 80 kHz would be crushed by the PSU.
        assert channel.attenuation_at(80e3) < 0.05

    def test_offchip_burns_most_power(self):
        channel = wall_power_channel()
        weights = channel.weights[0]
        assert weights[COMPONENT_INDEX[Component.MEM_BUS]] == weights.max()


@pytest.mark.slow
class TestChannelMeasurement:
    def test_same_event_is_silent(self, core2duo_10cm):
        result = measure_channel_savat(core2duo_10cm, wall_power_channel(), "ADD", "ADD")
        signal = measure_channel_savat(core2duo_10cm, wall_power_channel(), "ADD", "LDM")
        assert result.savat_zj < 1e-3 * signal.savat_zj

    def test_power_channel_sees_memory_events(self, core2duo_10cm):
        channel = wall_power_channel()
        memory = measure_channel_savat(core2duo_10cm, channel, "ADD", "LDM")
        arithmetic = measure_channel_savat(core2duo_10cm, channel, "ADD", "SUB")
        assert memory.savat_zj > 100 * arithmetic.savat_zj

    def test_power_frequency_independence(self, core2duo_10cm):
        """SAVAT divides out the pair rate: within the channel passband
        the value must not depend on the chosen alternation frequency."""
        channel = wall_power_channel()
        slow = measure_channel_savat(
            core2duo_10cm, channel, "ADD", "LDM", alternation_frequency_hz=50.0
        )
        fast = measure_channel_savat(
            core2duo_10cm, channel, "ADD", "LDM", alternation_frequency_hz=200.0
        )
        assert slow.savat_zj == pytest.approx(fast.savat_zj, rel=0.10)

    def test_lowpass_punishes_fast_alternation(self, core2duo_10cm):
        channel = wall_power_channel()
        in_band = measure_channel_savat(
            core2duo_10cm, channel, "ADD", "LDM", alternation_frequency_hz=200.0
        )
        above = measure_channel_savat(
            core2duo_10cm, channel, "ADD", "LDM", alternation_frequency_hz=50e3
        )
        assert above.savat_zj < 0.01 * in_band.savat_zj

    def test_acoustic_hears_offchip_separately(self, core2duo_10cm):
        channel = laptop_acoustic_channel()
        offchip = measure_channel_savat(core2duo_10cm, channel, "ADD", "LDM")
        arith = measure_channel_savat(core2duo_10cm, channel, "ADD", "SUB")
        assert offchip.savat_zj > 50 * arith.savat_zj

    def test_invalid_frequency_rejected(self, core2duo_10cm):
        with pytest.raises(MeasurementError):
            measure_channel_savat(
                core2duo_10cm, wall_power_channel(), "ADD", "LDM",
                alternation_frequency_hz=-1.0,
            )

    def test_str(self, core2duo_10cm):
        result = measure_channel_savat(core2duo_10cm, wall_power_channel(), "ADD", "LDM")
        assert "SAVAT[power](ADD/LDM)" in str(result)


@pytest.mark.slow
class TestChannelComparison:
    def test_table_structure(self, core2duo_10cm):
        table = channel_comparison(
            core2duo_10cm,
            [wall_power_channel(), laptop_acoustic_channel()],
            [("ADD", "LDM"), ("ADD", "DIV")],
        )
        assert set(table) == {"power", "acoustic"}
        assert set(table["power"]) == {"ADD/LDM", "ADD/DIV"}

    def test_profile_normalized(self, core2duo_10cm):
        table = channel_comparison(
            core2duo_10cm,
            [wall_power_channel()],
            [("ADD", "LDM"), ("ADD", "DIV")],
        )
        profile = distinguishability_profile(table)
        assert max(profile["power"].values()) == pytest.approx(1.0)
