"""Unit tests for the terminal visualizations."""

import numpy as np
import pytest

from repro.analysis.visualize import (
    SHADE_RAMP,
    bar_chart,
    grayscale_matrix,
    matrix_table,
    shade,
    spectrum_plot,
)
from repro.errors import ConfigurationError


class TestShade:
    def test_extremes(self):
        assert shade(0.0, 0.0, 1.0) == SHADE_RAMP[0]
        assert shade(1.0, 0.0, 1.0) == SHADE_RAMP[-1]

    def test_clipped(self):
        assert shade(5.0, 0.0, 1.0) == SHADE_RAMP[-1]
        assert shade(-5.0, 0.0, 1.0) == SHADE_RAMP[0]

    def test_degenerate_range(self):
        assert shade(1.0, 2.0, 2.0) == SHADE_RAMP[0]


class TestMatrixTable:
    def test_contains_labels_and_values(self):
        text = matrix_table(np.array([[1.5, 2.0], [3.0, 4.0]]), ["A", "B"], "Title")
        assert "Title" in text
        assert "A" in text
        assert "1.5" in text
        assert "4.0" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            matrix_table(np.ones((2, 3)), ["A", "B"])


class TestGrayscaleMatrix:
    def test_extremes_rendered(self):
        values = np.array([[0.0, 10.0], [5.0, 0.0]])
        text = grayscale_matrix(values, ["AA", "BB"])
        assert SHADE_RAMP[-1] * 2 in text  # black cell
        assert "white = 0.0" in text
        assert "black = 10.0" in text

    def test_row_per_label(self):
        values = np.eye(3)
        text = grayscale_matrix(values, ["A", "B", "C"])
        assert len(text.splitlines()) == 3 + 2  # header + rows + legend


class TestBarChart:
    def test_values_and_labels_present(self):
        text = bar_chart([("ADD/LDM", 4.2), ("ADD/ADD", 0.7)], title="Fig")
        assert "ADD/LDM" in text
        assert "4.20 zJ" in text

    def test_bar_lengths_proportional(self):
        text = bar_chart([("big", 10.0), ("small", 1.0)], width=50)
        lines = text.splitlines()
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar == 50
        assert small_bar == pytest.approx(5, abs=1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart([("x", 1.0)], width=2)


class TestSpectrumPlot:
    def test_renders_peak(self):
        freqs = np.linspace(78e3, 82e3, 1000)
        psd = np.full(1000, 1e-17)
        psd[500] = 1e-15
        text = spectrum_plot(freqs, psd, title="Fig 7")
        assert "Fig 7" in text
        assert "78.0 kHz" in text
        assert "#" in text

    def test_bad_input_rejected(self):
        with pytest.raises(ConfigurationError):
            spectrum_plot(np.arange(10.0), np.arange(5.0))
        with pytest.raises(ConfigurationError):
            spectrum_plot(np.arange(10.0), np.arange(10.0), height=1)
