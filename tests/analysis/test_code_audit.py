"""Tests for the static SAVAT code audit."""

import pytest

from repro.analysis.code_audit import (
    audit_program,
    audit_report,
    instruction_event,
)
from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError
from repro.isa.assembler import assemble
from repro.isa.events import EVENT_ORDER
from repro.isa.instructions import Instruction, Opcode, imm, mem, reg
from repro.machines.reference_data import CORE2DUO_10CM

#: A square-and-multiply-ish kernel: the secret-bit branch selects
#: between a path with a table load + divide and a plain path.
LEAKY_SOURCE = """
    test ebx, 1
    jz bit_is_zero
    mov eax, [esi]        ; table fetch (1-bit path)
    imul eax, 40503
    mov ebp, 65537
    idiv ebp
bit_is_zero:
    add edx, 1
    halt
"""

#: The compensated version: both paths execute the same event bag.
BALANCED_SOURCE = """
    test ebx, 1
    jz bit_is_zero
    add eax, 7
    add edx, 3
    jmp join
bit_is_zero:
    add eax, 9
    add edx, 5
join:
    halt
"""


@pytest.fixture(scope="module")
def matrix() -> SavatMatrix:
    return SavatMatrix(EVENT_ORDER, CORE2DUO_10CM.values_zj, "core2duo", 0.10)


class TestInstructionEvent:
    def test_alu_maps_to_add(self):
        instruction = Instruction(Opcode.XOR, dest=reg("eax"), src=imm(1))
        assert instruction_event(instruction) == "ADD"

    def test_load_worst_case(self):
        instruction = Instruction(Opcode.LOAD, dest=reg("eax"), src=mem("esi"))
        assert instruction_event(instruction) == "LDM"
        assert instruction_event(instruction, memory_assumption="L1") == "LDL1"

    def test_store_assumption(self):
        instruction = Instruction(Opcode.STORE, dest=mem("esi"), src=imm(1))
        assert instruction_event(instruction, memory_assumption="L2") == "STL2"

    def test_branch_maps_to_none(self):
        assert instruction_event(Instruction(Opcode.JMP, target="x")) is None

    def test_unknown_assumption_rejected(self):
        instruction = Instruction(Opcode.LOAD, dest=reg("eax"), src=mem("esi"))
        with pytest.raises(ConfigurationError):
            instruction_event(instruction, memory_assumption="L9")


class TestAuditProgram:
    def test_leaky_branch_flagged(self, matrix):
        program = assemble(LEAKY_SOURCE)
        risks = audit_program(program, matrix)
        assert len(risks) == 1
        risk = risks[0]
        # The taken path (bit 0) is the short one; fallthrough has the
        # load + div.
        assert "LDM" in risk.fallthrough_events
        assert "DIV" in risk.fallthrough_events
        floor = float(matrix.symmetrized().diagonal().mean())
        assert risk.savat_estimate_zj > 4 * floor

    def test_balanced_branch_scores_floor(self, matrix):
        program = assemble(BALANCED_SOURCE)
        risks = audit_program(program, matrix)
        assert len(risks) == 1
        floor = float(matrix.symmetrized().diagonal().mean())
        assert risks[0].savat_estimate_zj <= 2 * floor

    def test_risks_sorted_loudest_first(self, matrix):
        source = LEAKY_SOURCE.replace("halt", "") + BALANCED_SOURCE.replace(
            "bit_is_zero", "second_zero"
        ).replace("join", "join2")
        program = assemble(source)
        risks = audit_program(program, matrix)
        assert len(risks) == 2
        assert risks[0].savat_estimate_zj >= risks[1].savat_estimate_zj

    def test_loop_backedges_ignored(self, matrix):
        program = assemble("mov ecx, 4\ntop: dec ecx\njnz top\nhalt")
        assert audit_program(program, matrix) == []

    def test_memory_assumption_changes_score(self, matrix):
        program = assemble(LEAKY_SOURCE)
        worst = audit_program(program, matrix, memory_assumption="MEMORY")
        mild = audit_program(program, matrix, memory_assumption="L1")
        assert worst[0].savat_estimate_zj > mild[0].savat_estimate_zj

    def test_invalid_horizon_rejected(self, matrix):
        with pytest.raises(ConfigurationError):
            audit_program(assemble("halt"), matrix, horizon=0)


class TestAuditReport:
    def test_verdicts(self, matrix):
        floor = float(matrix.symmetrized().diagonal().mean())
        leaky = audit_program(assemble(LEAKY_SOURCE), matrix)
        text = audit_report(leaky, floor)
        assert "LEAKS" in text
        balanced = audit_program(assemble(BALANCED_SOURCE), matrix)
        assert "BALANCED" in audit_report(balanced, floor)

    def test_no_branches_message(self, matrix):
        assert "no conditional branches" in audit_report([], 0.7)
