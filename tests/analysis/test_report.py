"""Tests for the paper-claims checking machinery.

These run against the paper's *own* published matrices, so they verify
both the claim-check logic and (again) that the reference data supports
the prose.
"""

import pytest

from repro.analysis.report import (
    claims_summary,
    core2duo_claims,
    distance_claims,
    experiment_report,
)
from repro.core.matrix import SavatMatrix
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import (
    CORE2DUO_10CM,
    CORE2DUO_50CM,
    CORE2DUO_100CM,
)


def _wrap(reference) -> SavatMatrix:
    return SavatMatrix(EVENT_ORDER, reference.values_zj, reference.machine, reference.distance_m)


class TestCore2DuoClaims:
    def test_all_claims_hold_on_paper_data(self):
        checks = core2duo_claims(_wrap(CORE2DUO_10CM))
        failing = [check.claim for check in checks if not check.holds]
        assert failing == []

    def test_claim_count(self):
        assert len(core2duo_claims(_wrap(CORE2DUO_10CM))) == 7


class TestDistanceClaims:
    def test_all_distance_claims_hold_on_paper_data(self):
        checks = distance_claims(
            _wrap(CORE2DUO_10CM), _wrap(CORE2DUO_50CM), _wrap(CORE2DUO_100CM)
        )
        failing = [check.claim for check in checks if not check.holds]
        assert failing == []


class TestRendering:
    def test_claims_summary_format(self):
        checks = core2duo_claims(_wrap(CORE2DUO_10CM))
        text = claims_summary(checks)
        assert text.startswith(f"{len(checks)}/{len(checks)} claims hold")
        assert "[PASS]" in text

    def test_experiment_report_contents(self):
        matrix = _wrap(CORE2DUO_10CM)
        text = experiment_report(matrix, CORE2DUO_10CM)
        assert "Measured SAVAT" in text
        assert "Paper SAVAT" in text
        assert "Pearson 1.000" in text
        assert "core2duo" in text
