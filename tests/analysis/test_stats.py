"""Unit tests for the analysis statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    crossover_distance,
    group_means,
    matrix_correlations,
    offdiagonal,
)
from repro.errors import ConfigurationError


class TestOffdiagonal:
    def test_excludes_diagonal(self):
        matrix = np.arange(9.0).reshape(3, 3)
        values = offdiagonal(matrix)
        assert len(values) == 6
        assert 0.0 not in values  # matrix[0,0]
        assert 4.0 not in values  # matrix[1,1]

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            offdiagonal(np.ones((2, 3)))


class TestMatrixCorrelations:
    def test_identical_matrices(self):
        matrix = np.random.default_rng(0).uniform(1, 5, (4, 4))
        stats = matrix_correlations(matrix, matrix)
        assert stats["pearson"] == pytest.approx(1.0)
        assert stats["spearman"] == pytest.approx(1.0)
        assert stats["mean_relative_error"] == pytest.approx(0.0)

    def test_scaled_matrix_keeps_correlation(self):
        matrix = np.random.default_rng(1).uniform(1, 5, (4, 4))
        stats = matrix_correlations(2.0 * matrix, matrix)
        assert stats["pearson"] == pytest.approx(1.0)
        assert stats["mean_relative_error"] == pytest.approx(1.0)

    def test_anticorrelated(self):
        matrix = np.random.default_rng(2).uniform(1, 5, (4, 4))
        stats = matrix_correlations(-matrix, matrix)
        assert stats["pearson"] == pytest.approx(-1.0)


class TestGroupMeans:
    def test_intra_and_inter(self):
        labels = ["A", "B", "C"]
        matrix = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        groups = {"close": ["A", "B"], "far": ["C"]}
        means = group_means(matrix, labels, groups)
        assert means[("close", "close")] == pytest.approx(1.0)  # A-B both ways
        assert means[("close", "far")] == pytest.approx(5.0)
        assert ("far", "far") not in means  # only the self-pair, excluded


class TestCrossoverDistance:
    def test_crossing_series(self):
        distances = [0.1, 0.5, 1.0]
        values_a = [10.0, 2.0, 0.5]
        values_b = [5.0, 3.0, 2.0]
        crossover = crossover_distance(distances, values_a, values_b)
        assert crossover is not None
        assert 0.1 < crossover < 0.5

    def test_no_crossing(self):
        assert crossover_distance([0.1, 1.0], [10.0, 5.0], [1.0, 0.5]) is None

    def test_exact_tie_returns_that_distance(self):
        assert crossover_distance([0.1, 1.0], [5.0, 1.0], [5.0, 2.0]) == 0.1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            crossover_distance([0.1], [1.0], [2.0])
