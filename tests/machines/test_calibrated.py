"""Tests for calibrated-machine loading and distance synthesis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.em.environment import NoiseEnvironment
from repro.machines.calibrated import (
    load_calibrated_machine,
    reference_for,
)


class TestReferenceFor:
    def test_published_distances_pass_through(self):
        reference = reference_for("core2duo", 0.10)
        assert reference.exact
        assert reference.figure.startswith("Fig")

    def test_core2duo_interpolated_distance(self):
        reference = reference_for("core2duo", 0.25)
        assert not reference.exact
        # Interpolated values sit (to fit tolerance) between the 10 cm
        # and 50 cm anchors.
        assert reference.cell("ADD", "LDM") <= reference_for("core2duo", 0.10).cell("ADD", "LDM")
        assert (
            reference.cell("ADD", "LDM")
            >= 0.9 * reference_for("core2duo", 0.50).cell("ADD", "LDM")
        )

    def test_other_machine_scaled_distance(self):
        reference = reference_for("pentium3m", 0.50)
        assert not reference.exact
        base = reference_for("pentium3m", 0.10)
        assert reference.cell("ADD", "LDM") < base.symmetrized()[7, 0]

    def test_unknown_machine_rejected(self):
        with pytest.raises(Exception):
            reference_for("imaginary", 0.10)


class TestLoadCalibratedMachine:
    def test_cached_instances_shared(self, core2duo_10cm):
        again = load_calibrated_machine("core2duo", 0.10)
        assert again.calibration is core2duo_10cm.calibration

    def test_environment_override_does_not_recalibrate(self, core2duo_10cm):
        quiet = NoiseEnvironment(instrument_floor_w_per_hz=0.0, include_thermal=False)
        machine = load_calibrated_machine("core2duo", 0.10, environment=quiet)
        assert machine.environment is quiet
        assert machine.calibration is core2duo_10cm.calibration

    def test_describe(self, core2duo_10cm):
        text = core2duo_10cm.describe()
        assert "Core 2 Duo" in text
        assert "10 cm" in text

    def test_self_noise_lookup_case_insensitive(self, core2duo_10cm):
        assert core2duo_10cm.self_noise_j("add") == core2duo_10cm.self_noise_j("ADD")

    def test_make_core_is_fresh(self, core2duo_10cm):
        core1 = core2duo_10cm.make_core()
        core2 = core2duo_10cm.make_core()
        assert core1 is not core2


class TestDistanceValidation:
    """Bad distances fail at the loader with one clear error line.

    A zero or negative distance used to surface deep inside the
    propagation model (divide-by-zero in the near-field roll-off, or an
    inverted attenuation ratio); NaN/inf produced nonsense calibrations.
    """

    @pytest.mark.parametrize(
        "distance", [0.0, -0.10, float("nan"), float("inf"), float("-inf")]
    )
    def test_invalid_distances_rejected(self, distance):
        with pytest.raises(ConfigurationError, match="positive, finite"):
            load_calibrated_machine("core2duo", distance)

    def test_error_names_the_offending_value(self):
        with pytest.raises(ConfigurationError, match="-0.25"):
            load_calibrated_machine("core2duo", -0.25)

    def test_validation_happens_before_the_calibration_cache(self):
        # A rejected distance must not poison the loader cache.
        with pytest.raises(ConfigurationError):
            load_calibrated_machine("core2duo", -1.0)
        machine = load_calibrated_machine("core2duo", 0.10)
        assert machine.distance_m == 0.10
