"""Unit tests for the Figure 6 machine catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.machines.catalog import (
    CORE2DUO,
    MACHINE_NAMES,
    PENTIUM3M,
    TURIONX2,
    get_machine,
)


class TestFigure6Geometry:
    def test_core2duo_caches(self):
        assert CORE2DUO.l1_geometry.size_bytes == 32 * 1024
        assert CORE2DUO.l1_geometry.ways == 8
        assert CORE2DUO.l2_geometry.size_bytes == 4096 * 1024
        assert CORE2DUO.l2_geometry.ways == 16

    def test_pentium3m_caches(self):
        assert PENTIUM3M.l1_geometry.size_bytes == 16 * 1024
        assert PENTIUM3M.l1_geometry.ways == 4
        assert PENTIUM3M.l2_geometry.size_bytes == 512 * 1024
        assert PENTIUM3M.l2_geometry.ways == 8

    def test_turionx2_caches(self):
        assert TURIONX2.l1_geometry.size_bytes == 64 * 1024
        assert TURIONX2.l1_geometry.ways == 2
        assert TURIONX2.l2_geometry.size_bytes == 1024 * 1024
        assert TURIONX2.l2_geometry.ways == 16


class TestCatalog:
    def test_three_machines(self):
        assert MACHINE_NAMES == ("core2duo", "pentium3m", "turionx2")

    def test_lookup_case_insensitive(self):
        assert get_machine("Core2Duo") is CORE2DUO

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            get_machine("pentium4")

    def test_make_core_uses_spec(self):
        core = CORE2DUO.make_core()
        assert core.clock_hz == CORE2DUO.clock_hz
        assert core.hierarchy.l1_geometry == CORE2DUO.l1_geometry

    def test_describe_mentions_figure6_numbers(self):
        text = CORE2DUO.describe()
        assert "32 KB" in text
        assert "4096 KB" in text

    def test_older_dividers_slower(self):
        """Pentium 3 M and Turion dividers are slower than Core 2's —
        the microarchitectural reason their DIV SAVAT is higher."""
        assert PENTIUM3M.timings.div_cycles > CORE2DUO.timings.div_cycles
        assert TURIONX2.timings.div_cycles > CORE2DUO.timings.div_cycles
