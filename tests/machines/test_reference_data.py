"""Tests validating the published reference matrices against the
paper's own textual claims — these pin the data used for calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import (
    CORE2DUO_10CM,
    CORE2DUO_50CM,
    CORE2DUO_100CM,
    PENTIUM3M_10CM,
    REFERENCE_MATRICES,
    SELECTED_PAIRINGS,
    TURIONX2_10CM,
    alignment_score,
    get_reference,
    reconstruction_report,
)


class TestCore2Duo10cm:
    def test_shape_and_order(self):
        assert CORE2DUO_10CM.values_zj.shape == (11, 11)

    def test_spot_values_from_figure9(self):
        assert CORE2DUO_10CM.cell("LDM", "LDM") == 1.8
        assert CORE2DUO_10CM.cell("STL2", "LDM") == 11.5
        assert CORE2DUO_10CM.cell("ADD", "DIV") == 1.0
        assert CORE2DUO_10CM.cell("DIV", "STL2") == 9.3

    def test_diagonal_smallest_with_one_exception(self):
        """Section V: "each of the diagonal entries ... is the smallest
        value in its respective row and column (with one exception for
        STM/LDM)."  At the table's 0.1 zJ display precision a few
        diagonals tie their row minimum; every deviation is at most one
        display quantum."""
        matrix = CORE2DUO_10CM.values_zj
        for i in range(11):
            assert matrix[i, i] <= matrix[i].min() + 0.1 + 1e-9, EVENT_ORDER[i]
            assert matrix[i, i] <= matrix[:, i].min() + 0.1 + 1e-9, EVENT_ORDER[i]
        strict_row_violations = [
            EVENT_ORDER[i] for i in range(11) if matrix[i, i] > matrix[i].min() + 1e-9
        ]
        assert "STM" in strict_row_violations

    def test_four_group_structure(self):
        """Off-chip / L2 / arith+L1 / DIV group means separate cleanly."""
        arithmetic = ("LDL1", "STL1", "NOI", "ADD", "SUB", "MUL")
        intra_arith = np.mean(
            [CORE2DUO_10CM.cell(a, b) for a in arithmetic for b in arithmetic if a != b]
        )
        offchip_vs_arith = np.mean(
            [CORE2DUO_10CM.cell(a, b) for a in ("LDM", "STM") for b in arithmetic]
        )
        assert intra_arith < 1.0
        assert offchip_vs_arith > 3.5

    def test_ldm_ldl2_higher_than_either_vs_arith(self):
        assert CORE2DUO_10CM.cell("LDM", "LDL2") > CORE2DUO_10CM.cell("LDM", "ADD")
        assert CORE2DUO_10CM.cell("LDM", "LDL2") > CORE2DUO_10CM.cell("LDL2", "ADD")

    def test_symmetrized_is_symmetric(self):
        symmetric = CORE2DUO_10CM.symmetrized()
        assert np.allclose(symmetric, symmetric.T)


class TestDistanceMatrices:
    def test_values_drop_with_distance(self):
        for a, b in (("ADD", "LDM"), ("ADD", "LDL2"), ("STL2", "DIV")):
            assert CORE2DUO_50CM.cell(a, b) < CORE2DUO_10CM.cell(a, b)

    def test_small_change_from_50_to_100(self):
        near = CORE2DUO_50CM.values_zj
        far = CORE2DUO_100CM.values_zj
        assert np.abs(near - far).max() <= 0.3

    def test_offchip_dominates_at_distance(self):
        for matrix in (CORE2DUO_50CM, CORE2DUO_100CM):
            assert matrix.cell("ADD", "LDM") > 1.3 * matrix.cell("ADD", "LDL2")


class TestReconstructedMatrices:
    def test_flagged_inexact(self):
        assert not PENTIUM3M_10CM.exact
        assert not TURIONX2_10CM.exact
        assert CORE2DUO_10CM.exact

    def test_pentium3m_prose_claims(self):
        """'the ADD/DIV SAVAT is an order of magnitude higher than the
        ADD/MUL SAVAT' and 'LDM has higher SAVAT values than STM'."""
        assert PENTIUM3M_10CM.cell("ADD", "DIV") >= 8 * PENTIUM3M_10CM.cell("ADD", "MUL")
        assert PENTIUM3M_10CM.cell("LDM", "ADD") > PENTIUM3M_10CM.cell("STM", "ADD")

    def test_pentium3m_offchip_above_l2(self):
        """'off-chip accesses here have much higher SAVAT values than do
        L2 accesses'."""
        assert PENTIUM3M_10CM.cell("LDM", "ADD") > 3 * PENTIUM3M_10CM.cell("LDL2", "ADD")

    def test_turionx2_div_rivals_offchip(self):
        """'the DIV instruction here has an even higher SAVAT — they
        rival those of off-chip memory accesses'."""
        div_vs_arith = np.mean(
            [TURIONX2_10CM.symmetrized()[10, j] for j in range(6, 10)]
        )
        offchip_vs_arith = np.mean(
            [TURIONX2_10CM.symmetrized()[0, j] for j in range(6, 10)]
        )
        assert div_vs_arith > 0.5 * offchip_vs_arith

    def test_reconstruction_selection_is_best(self):
        """Inserting the stray value at the front must beat every other
        insertion point on asymmetry."""
        report = reconstruction_report()
        chosen = report["insert@0"]["asymmetry"]
        assert all(
            chosen <= entry["asymmetry"] + 1e-12 for entry in report.values()
        )


class TestLookup:
    def test_published_lookup(self):
        assert get_reference("core2duo", 0.10) is CORE2DUO_10CM
        assert get_reference("CORE2DUO", 0.5) is CORE2DUO_50CM

    def test_unpublished_lookup_rejected(self):
        with pytest.raises(ConfigurationError, match="no published matrix"):
            get_reference("pentium3m", 0.50)

    def test_five_published_matrices(self):
        assert len(REFERENCE_MATRICES) == 5

    def test_selected_pairings_are_figure11(self):
        assert ("ADD", "ADD") in SELECTED_PAIRINGS
        assert ("STL2", "DIV") in SELECTED_PAIRINGS
        assert len(SELECTED_PAIRINGS) == 11

    def test_cell_accessor_case_insensitive(self):
        assert CORE2DUO_10CM.cell("add", "ldm") == CORE2DUO_10CM.cell("ADD", "LDM")

    def test_negative_values_rejected(self):
        from repro.machines.reference_data import ReferenceMatrix

        with pytest.raises(ConfigurationError):
            ReferenceMatrix("x", 0.1, -np.ones((11, 11)), "test")

    def test_wrong_shape_rejected(self):
        from repro.machines.reference_data import ReferenceMatrix

        with pytest.raises(ConfigurationError):
            ReferenceMatrix("x", 0.1, np.ones((4, 4)), "test")
