"""Tests for the EM-model calibration machinery."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.isa.events import EVENT_ORDER
from repro.machines.calibration import (
    classical_mds,
    fit_coupling_weights,
    pair_geometry_factor,
    profile_event,
)
from repro.machines.catalog import CORE2DUO
from repro.uarch.components import COMPONENT_INDEX, Component, NUM_COMPONENTS


class TestGeometryFactor:
    def test_symmetric(self):
        assert pair_geometry_factor(9, 200, 2.4e9) == pytest.approx(
            pair_geometry_factor(200, 9, 2.4e9)
        )

    def test_equal_duty_maximizes_shape_term(self):
        balanced = pair_geometry_factor(100, 100, 1e9)
        skewed = pair_geometry_factor(10, 190, 1e9)
        assert balanced > skewed

    def test_scales_with_period(self):
        short = pair_geometry_factor(10, 10, 1e9)
        long = pair_geometry_factor(20, 20, 1e9)
        assert long == pytest.approx(2 * short)

    def test_known_value(self):
        # duty 0.5: G = 2 * 1 * (cpi_a+cpi_b) / (pi^2 R f).
        expected = 2 * 200 / (np.pi**2 * 50.0 * 1e9)
        assert pair_geometry_factor(100, 100, 1e9) == pytest.approx(expected)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CalibrationError):
            pair_geometry_factor(0, 10, 1e9)


class TestClassicalMds:
    def test_recovers_planted_points(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(8, 2))
        deltas = points[:, None, :] - points[None, :, :]
        squared = (deltas**2).sum(axis=2)
        recovered, stress = classical_mds(squared, 2)
        assert stress == pytest.approx(0.0, abs=1e-9)
        recovered_deltas = recovered[:, None, :] - recovered[None, :, :]
        assert np.allclose((recovered_deltas**2).sum(axis=2), squared, atol=1e-9)

    def test_rank_reduction_reports_stress(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(8, 5))
        deltas = points[:, None, :] - points[None, :, :]
        squared = (deltas**2).sum(axis=2)
        _recovered, stress = classical_mds(squared, 2)
        assert stress > 0.0

    def test_invalid_dims_rejected(self):
        with pytest.raises(CalibrationError):
            classical_mds(np.zeros((4, 4)), 4)

    def test_non_square_rejected(self):
        with pytest.raises(CalibrationError):
            classical_mds(np.zeros((4, 5)), 2)


class TestCouplingFit:
    def test_exact_fit_when_points_in_row_space(self):
        rng = np.random.default_rng(5)
        rates = rng.uniform(0, 2, size=(6, NUM_COMPONENTS))
        true_weights = rng.normal(size=(2, NUM_COMPONENTS))
        points = (rates - rates.mean(axis=0)) @ true_weights.T
        weights, fitted = fit_coupling_weights(rates, points)
        assert np.allclose(fitted, points - points.mean(axis=0), atol=1e-8)

    def test_count_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            fit_coupling_weights(np.zeros((5, NUM_COMPONENTS)), np.zeros((4, 2)))


class TestEventProfiles:
    @pytest.fixture(scope="class")
    def profiles(self):
        return {
            name: profile_event(CORE2DUO, name)
            for name in ("ADD", "DIV", "LDM", "STM", "LDL2", "STL2", "LDL1", "NOI")
        }

    def test_div_occupies_divider(self, profiles):
        index = COMPONENT_INDEX[Component.DIV]
        assert profiles["DIV"].activity_rates[index] > 0
        assert profiles["ADD"].activity_rates[index] == 0

    def test_memory_events_touch_bus(self, profiles):
        index = COMPONENT_INDEX[Component.MEM_BUS]
        assert profiles["LDM"].activity_rates[index] > 0
        assert profiles["LDL2"].activity_rates[index] == 0

    def test_stm_moves_more_bus_traffic_than_ldm(self, profiles):
        """STM's dirty write-backs add off-chip transfers."""
        index = COMPONENT_INDEX[Component.MEM_BUS]
        stm_per_iter = (
            profiles["STM"].activity_rates[index] * profiles["STM"].cycles_per_iteration
        )
        ldm_per_iter = (
            profiles["LDM"].activity_rates[index] * profiles["LDM"].cycles_per_iteration
        )
        assert stm_per_iter > 1.5 * ldm_per_iter

    def test_stl2_doubles_l2_traffic_vs_ldl2(self, profiles):
        """The paper's STL2 explanation: fill + dirty write-back = two
        L2 accesses per store."""
        index = COMPONENT_INDEX[Component.L2]
        stl2_per_iter = (
            profiles["STL2"].activity_rates[index]
            * profiles["STL2"].cycles_per_iteration
        )
        ldl2_per_iter = (
            profiles["LDL2"].activity_rates[index]
            * profiles["LDL2"].cycles_per_iteration
        )
        assert stl2_per_iter == pytest.approx(2 * ldl2_per_iter, rel=0.1)

    def test_noi_differs_from_add_only_in_front_end_and_alu(self, profiles):
        delta = profiles["ADD"].activity_rates - profiles["NOI"].activity_rates
        active = {
            component
            for component, index in COMPONENT_INDEX.items()
            if abs(delta[index]) > 1e-9
        }
        assert Component.MEM_BUS not in active
        assert Component.DIV not in active


@pytest.mark.slow
class TestFullCalibration:
    def test_core2duo_fit_quality(self, core2duo_10cm):
        """The calibrated analytic model must reproduce Figure 9's shape."""
        from scipy import stats

        predicted = core2duo_10cm.calibration.predicted_matrix_zj()
        reference = core2duo_10cm.calibration.reference.symmetrized()
        upper = np.triu_indices(11, 1)
        spearman = stats.spearmanr(predicted[upper], reference[upper]).statistic
        relative = np.mean(np.abs(predicted[upper] - reference[upper]) / reference[upper])
        assert spearman > 0.85
        assert relative < 0.35

    def test_self_noise_matches_diagonal(self, core2duo_10cm):
        reference = core2duo_10cm.calibration.reference.symmetrized()
        for i, name in enumerate(EVENT_ORDER):
            assert core2duo_10cm.self_noise_j(name) == pytest.approx(
                reference[i, i] * 1e-21 / 2
            )

    def test_coupling_distance_recorded(self, core2duo_10cm):
        assert core2duo_10cm.coupling.distance_m == pytest.approx(0.10)
