"""Meta-tests: public-API hygiene across the whole package.

These keep the library honest as it grows: every module documented,
every ``__all__`` name real, every public callable carrying a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _is_package in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring is a stub"


@pytest.mark.parametrize(
    "module_name",
    [name for name in MODULES if name.endswith("__init__") or "." not in name.removeprefix("repro.")],
)
def test_package_all_names_exist(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def _public_functions():
    seen = set()
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export
            key = f"{module_name}.{name}"
            if key not in seen:
                seen.add(key)
                yield key, obj


@pytest.mark.parametrize("qualified_name,obj", list(_public_functions()))
def test_public_callable_documented(qualified_name, obj):
    assert obj.__doc__, f"{qualified_name} lacks a docstring"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_present():
    assert repro.__version__
