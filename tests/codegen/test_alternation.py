"""Unit tests for the Figure 4 alternation-kernel builder."""

import pytest

from repro.codegen.alternation import (
    AlternationSpec,
    build_alternation_program,
    build_half_program,
    build_probe_program,
    plan_alternation,
    pointer_update_instructions,
)
from repro.codegen.pointers import SweepPlan
from repro.errors import ConfigurationError
from repro.isa.events import get_event
from repro.isa.instructions import Opcode
from repro.uarch.cache import CacheGeometry

L1 = CacheGeometry(size_bytes=32 * 1024, ways=8, line_bytes=64)
L2 = CacheGeometry(size_bytes=4 * 1024 * 1024, ways=16, line_bytes=64)


def _spec(name_a="ADD", name_b="LDM", count=8) -> AlternationSpec:
    return plan_alternation(get_event(name_a), get_event(name_b), L1, L2, count)


class TestPointerUpdate:
    def test_six_instructions(self):
        plan = SweepPlan(base=0, footprint=4096, offset=64)
        assert len(pointer_update_instructions("esi", plan)) == 6

    def test_uses_only_alu_and_agu(self):
        plan = SweepPlan(base=0, footprint=4096, offset=64)
        opcodes = {i.opcode for i in pointer_update_instructions("esi", plan)}
        assert opcodes <= {Opcode.LEA, Opcode.AND, Opcode.MOV, Opcode.OR}

    def test_no_memory_access(self):
        plan = SweepPlan(base=0, footprint=4096, offset=64)
        assert not any(i.is_memory for i in pointer_update_instructions("esi", plan))


class TestHalfProgram:
    def test_iteration_structure(self):
        spec = _spec()
        half = build_half_program(spec.event_a, 8, spec.sweep_a, "esi", "a")
        # mov ecx + one loop body: 6 pointer update + test + dec + jnz
        assert len(half) == 1 + 6 + 1 + 2

    def test_noi_half_omits_test_slot(self):
        spec = _spec("NOI", "ADD")
        half = build_half_program(spec.event_a, 8, spec.sweep_a, "esi", "a")
        assert len(half) == 1 + 6 + 2  # no test slot
        assert half.count_role("test") == 0

    def test_test_slot_tagged(self):
        spec = _spec()
        half = build_half_program(spec.event_a, 4, spec.sweep_a, "esi", "a")
        assert half.count_role("test") == 1  # one slot; ecx repeats it

    def test_surrounding_code_identical_across_events(self):
        """The methodology's core requirement: only the test slot differs."""
        for name in ("ADD", "MUL", "DIV", "LDL1"):
            spec = _spec(name, "LDM")
            half = build_half_program(spec.event_a, 4, spec.sweep_a, "esi", "a")
            non_test = [str(i) for i in half if i.role != "test"]
            baseline_spec = _spec("ADD", "LDM")
            baseline_half = build_half_program(
                baseline_spec.event_a, 4, baseline_spec.sweep_a, "esi", "a"
            )
            baseline_non_test = [str(i) for i in baseline_half if i.role != "test"]
            assert non_test == baseline_non_test

    def test_memory_halves_differ_only_in_constants(self):
        """Memory events share the code shape; only mask immediates vary."""
        spec = _spec("LDL1", "LDM")
        half_small = build_half_program(spec.event_a, 2, spec.sweep_a, "esi", "a")
        spec2 = _spec("LDM", "LDL1")
        half_large = build_half_program(spec2.event_a, 2, spec2.sweep_a, "esi", "a")
        assert [i.opcode for i in half_small] == [i.opcode for i in half_large]


class TestAlternationProgram:
    def test_ends_with_halt(self):
        program = build_alternation_program(_spec())
        assert program[len(program) - 1].opcode is Opcode.HALT

    def test_contains_both_halves(self):
        program = build_alternation_program(_spec(count=4))
        assert program.label_index("a_loop") < program.label_index("b_loop")

    def test_test_instruction_count(self):
        program = build_alternation_program(_spec(count=4))
        assert program.count_role("test") == 2  # one slot per half

    def test_disjoint_sweep_regions(self):
        spec = _spec("LDM", "STM")
        end_a = spec.sweep_a.base + spec.sweep_a.footprint
        assert end_a <= spec.sweep_b.base

    def test_initial_registers(self):
        spec = _spec()
        registers = spec.initial_registers()
        assert registers["esi"] == spec.sweep_a.base
        assert registers["edi"] == spec.sweep_b.base
        assert registers["eax"] != 0  # idiv-safe

    def test_name(self):
        assert _spec(count=8).name == "ADD/LDM x8"

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(count=0)


class TestProbeProgram:
    def test_probe_halts(self):
        spec = _spec()
        probe = build_probe_program(spec.event_a, 16, spec.sweep_a)
        assert probe[len(probe) - 1].opcode is Opcode.HALT

    def test_probe_iterations(self):
        spec = _spec()
        probe = build_probe_program(spec.event_b, 16, spec.sweep_b)
        assert probe.count_role("test") == 1
