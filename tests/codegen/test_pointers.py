"""Unit and property tests for sweep planning and cache priming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.pointers import (
    BASE_ADDRESS_A,
    SweepPlan,
    footprint_bytes,
    plan_sweep,
    prime_for_sweep,
)
from repro.errors import ConfigurationError
from repro.isa.events import get_event
from repro.uarch.cache import CacheGeometry
from repro.uarch.hierarchy import MemoryHierarchy

L1 = CacheGeometry(size_bytes=32 * 1024, ways=8, line_bytes=64)
L2 = CacheGeometry(size_bytes=4 * 1024 * 1024, ways=16, line_bytes=64)


class TestFootprintSizing:
    def test_l1_events_fit_l1(self):
        for name in ("LDL1", "STL1"):
            assert footprint_bytes(get_event(name), L1, L2) <= L1.size_bytes // 2

    def test_l2_events_between_l1_and_l2(self):
        for name in ("LDL2", "STL2"):
            size = footprint_bytes(get_event(name), L1, L2)
            assert L1.size_bytes < size <= L2.size_bytes // 2

    def test_memory_events_exceed_l2(self):
        for name in ("LDM", "STM"):
            assert footprint_bytes(get_event(name), L1, L2) > L2.size_bytes

    def test_non_memory_events_get_nominal_footprint(self):
        assert footprint_bytes(get_event("ADD"), L1, L2) == L1.size_bytes // 2

    def test_degenerate_geometry_rejected(self):
        small_l2 = CacheGeometry(size_bytes=32 * 1024, ways=8, line_bytes=64)
        with pytest.raises(ConfigurationError):
            footprint_bytes(get_event("LDL2"), L1, small_l2)


class TestSweepPlan:
    def test_mask(self):
        plan = SweepPlan(base=0, footprint=4096, offset=64)
        assert plan.mask == 4095

    def test_num_slots(self):
        plan = SweepPlan(base=0, footprint=4096, offset=64)
        assert plan.num_slots == 64

    def test_addresses_cycle_back(self):
        plan = SweepPlan(base=0x1000, footprint=256, offset=64)
        addresses = plan.addresses()
        assert len(addresses) == 4
        assert addresses[-1] == 0x1000  # ends back at base

    def test_addresses_stay_in_array(self):
        plan = SweepPlan(base=0x10000, footprint=1024, offset=64)
        for address in plan.addresses():
            assert 0x10000 <= address < 0x10000 + 1024

    def test_non_power_of_two_footprint_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan(base=0, footprint=3000, offset=64)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPlan(base=100, footprint=4096, offset=64)

    def test_plan_sweep_aligns_base(self):
        plan = plan_sweep(get_event("LDM"), L1, L2, base=BASE_ADDRESS_A)
        assert plan.base % plan.footprint == 0


@given(
    footprint_log2=st.integers(min_value=7, max_value=14),
    start_slot=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=50, deadline=None)
def test_sweep_update_formula_cycles_all_slots(footprint_log2, start_slot):
    """Property: the paper's pointer update visits every slot exactly once
    per cycle, from any starting point."""
    footprint = 1 << footprint_log2
    plan = SweepPlan(base=0, footprint=footprint, offset=64)
    start = (start_slot % plan.num_slots) * 64
    addresses = plan.addresses(start=start)
    assert len(set(addresses)) == plan.num_slots


def _hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(
        l1_geometry=CacheGeometry(1024, 2, 64),
        l2_geometry=CacheGeometry(8192, 4, 64),
    )


class TestPriming:
    def test_l1_sweep_hits_after_priming(self):
        hierarchy = _hierarchy()
        plan = SweepPlan(base=0x10000, footprint=512, offset=64)  # fits L1
        prime_for_sweep(hierarchy, plan, is_write=False)
        for address in plan.addresses():
            assert hierarchy.access(address, False).level == "L1"

    def test_l2_sweep_misses_l1_hits_l2(self):
        hierarchy = _hierarchy()
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)  # 4x L1, fits L2
        prime_for_sweep(hierarchy, plan, is_write=False)
        levels = {hierarchy.access(a, False).level for a in plan.addresses()}
        assert levels == {"L2"}

    def test_memory_sweep_always_misses(self):
        hierarchy = _hierarchy()
        plan = SweepPlan(base=0x10000, footprint=16384, offset=64)  # 2x L2
        prime_for_sweep(hierarchy, plan, is_write=False)
        levels = {hierarchy.access(a, False).level for a in plan.addresses()}
        assert levels == {"MEM"}

    def test_store_priming_marks_dirty(self):
        hierarchy = _hierarchy()
        plan = SweepPlan(base=0x10000, footprint=512, offset=64)
        prime_for_sweep(hierarchy, plan, is_write=True)
        assert hierarchy.l1.dirty_lines() == 8

    def test_priming_leaves_stats_clean(self):
        hierarchy = _hierarchy()
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        prime_for_sweep(hierarchy, plan, is_write=False)
        assert hierarchy.l1.stats.accesses == 0
        assert hierarchy.l2.stats.accesses == 0

    def test_priming_matches_brute_force_warm(self):
        """Priming must be behaviour-equivalent to sweeping the array to
        steady state the slow way."""
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        primed = _hierarchy()
        prime_for_sweep(primed, plan, is_write=True)
        brute = _hierarchy()
        for _sweep in range(3):
            for address in plan.addresses():
                brute.access(address, True)
        for address in plan.addresses():
            report_primed = primed.access(address, True)
            report_brute = brute.access(address, True)
            assert report_primed.level == report_brute.level
            assert report_primed.l1_writeback == report_brute.l1_writeback

    def test_no_reset_priming_preserves_earlier_sweep(self):
        hierarchy = _hierarchy()
        plan_a = SweepPlan(base=0x10000, footprint=512, offset=64)
        plan_b = SweepPlan(base=0x40000, footprint=512, offset=64)
        prime_for_sweep(hierarchy, plan_a, is_write=False)
        prime_for_sweep(hierarchy, plan_b, is_write=False, reset=False)
        # Both half-L1-sized arrays fit L1 together (2 x 512 B in 1 KiB).
        assert hierarchy.access(plan_a.addresses()[0], False).level == "L1"
        assert hierarchy.access(plan_b.addresses()[0], False).level == "L1"
