"""Unit tests for alternation-frequency planning."""

import pytest

from repro.codegen.frequency import (
    FrequencyPlan,
    measure_cycles_per_iteration,
    solve_inst_loop_count,
)
from repro.errors import MeasurementError
from repro.isa.events import get_event
from repro.machines.catalog import CORE2DUO


@pytest.fixture(scope="module")
def core():
    return CORE2DUO.make_core()


class TestCyclesPerIteration:
    def test_div_slower_than_add(self, core):
        cpi_add = measure_cycles_per_iteration(core, get_event("ADD"))
        cpi_div = measure_cycles_per_iteration(core, get_event("DIV"))
        assert cpi_div > cpi_add + 10

    def test_memory_hierarchy_ordering(self, core):
        cpi_l1 = measure_cycles_per_iteration(core, get_event("LDL1"))
        cpi_l2 = measure_cycles_per_iteration(core, get_event("LDL2"))
        cpi_mem = measure_cycles_per_iteration(core, get_event("LDM"))
        assert cpi_l1 < cpi_l2 < cpi_mem

    def test_noi_cheapest(self, core):
        cpi_noi = measure_cycles_per_iteration(core, get_event("NOI"))
        cpi_add = measure_cycles_per_iteration(core, get_event("ADD"))
        assert cpi_noi <= cpi_add

    def test_steady_state_is_deterministic(self, core):
        first = measure_cycles_per_iteration(core, get_event("STL2"))
        second = measure_cycles_per_iteration(core, get_event("STL2"))
        assert first == pytest.approx(second)


class TestSolver:
    def test_hits_target_within_two_percent(self, core):
        plan = solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 80e3)
        assert plan.predicted_frequency_hz == pytest.approx(80e3, rel=0.02)

    def test_slow_pair_uses_smaller_count(self, core):
        fast = solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 80e3)
        slow = solve_inst_loop_count(core, get_event("LDM"), get_event("STM"), 80e3)
        assert slow.spec.inst_loop_count < fast.spec.inst_loop_count

    def test_higher_frequency_means_fewer_iterations(self, core):
        low = solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 40e3)
        high = solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 160e3)
        assert high.spec.inst_loop_count < low.spec.inst_loop_count

    def test_pairs_per_second(self, core):
        plan = solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 80e3)
        expected = plan.spec.inst_loop_count * plan.predicted_frequency_hz
        assert plan.pairs_per_second == pytest.approx(expected)

    def test_predicted_period(self, core):
        plan = solve_inst_loop_count(core, get_event("ADD"), get_event("MUL"), 80e3)
        assert plan.predicted_period_cycles == pytest.approx(
            core.clock_hz / plan.predicted_frequency_hz, rel=1e-6
        )

    def test_impossible_frequency_rejected(self, core):
        with pytest.raises(MeasurementError, match="cannot alternate"):
            solve_inst_loop_count(core, get_event("LDM"), get_event("STM"), 50e6)

    def test_nonpositive_frequency_rejected(self, core):
        with pytest.raises(MeasurementError):
            solve_inst_loop_count(core, get_event("ADD"), get_event("SUB"), 0.0)
