"""Shared fixtures for the test suite.

Calibrated machines are session-scoped because calibration costs a few
seconds; measurement tests share them read-only.  ``tiny_spec`` is a
deliberately small machine whose cache behaviour is easy to reason about
exhaustively in unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines.calibrated import load_calibrated_machine
from repro.machines.specs import MachineSpec
from repro.uarch.cache import CacheGeometry


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_spec() -> MachineSpec:
    """A small machine for fast, exhaustive microarchitecture tests."""
    return MachineSpec(
        name="tiny",
        display_name="Tiny Test Machine",
        clock_hz=1e9,
        l1_geometry=CacheGeometry(size_bytes=1024, ways=2, line_bytes=64),
        l2_geometry=CacheGeometry(size_bytes=8192, ways=4, line_bytes=64),
    )


@pytest.fixture(scope="session")
def core2duo_10cm():
    """Calibrated Core 2 Duo at the paper's 10 cm distance."""
    return load_calibrated_machine("core2duo", 0.10)


@pytest.fixture(scope="session")
def core2duo_100cm():
    """Calibrated Core 2 Duo at 100 cm."""
    return load_calibrated_machine("core2duo", 1.00)
