"""Tests for the savat command-line interface."""

import argparse
import json

import numpy as np
import pytest

from repro.cli import (
    _campaign_execution_kwargs,
    _campaign_summary_lines,
    _distance,
    _distance_list,
    _event_list,
    _machine_list,
    _measurement_config,
    build_parser,
    main,
)


class TestEventList:
    def test_parses_comma_separated_names(self):
        assert _event_list("ADD,SUB,MUL") == ["ADD", "SUB", "MUL"]

    def test_is_case_insensitive(self):
        assert _event_list("add,Sub") == ["ADD", "SUB"]

    def test_strips_whitespace_and_drops_empty_tokens(self):
        assert _event_list(" ADD , ,SUB, ") == ["ADD", "SUB"]

    def test_unknown_token_names_itself_and_the_choices(self):
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            _event_list("ADD,bogus")
        assert "unknown event 'bogus'" in str(excinfo.value)
        assert "ADD" in str(excinfo.value)  # valid choices listed

    def test_bare_commas_are_an_error_not_an_empty_campaign(self):
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            _event_list(",,")
        assert "no event names given" in str(excinfo.value)

    def test_parser_rejects_bad_events_with_exit_code_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "--events", "ADD,bogus"])
        assert excinfo.value.code == 2
        assert "unknown event 'bogus'" in capsys.readouterr().err

    def test_parser_returns_a_validated_list(self):
        args = build_parser().parse_args(["campaign", "--events", "add, sub,"])
        assert args.events == ["ADD", "SUB"]


class TestObservabilityFlags:
    def test_defaults_without_environment(self, monkeypatch):
        monkeypatch.delenv("SAVAT_METRICS_OUT", raising=False)
        monkeypatch.delenv("SAVAT_TRACE", raising=False)
        args = build_parser().parse_args(["campaign"])
        assert args.metrics_out is None
        assert args.trace is None
        assert args.progress is None  # auto-detect

    def test_flags_override(self):
        args = build_parser().parse_args(
            ["campaign", "--metrics-out", "m.prom", "--trace", "t.jsonl",
             "--progress"]
        )
        assert args.metrics_out == "m.prom"
        assert args.trace == "t.jsonl"
        assert args.progress is True

    def test_no_progress(self):
        args = build_parser().parse_args(["campaign", "--no-progress"])
        assert args.progress is False

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.setenv("SAVAT_METRICS_OUT", "/tmp/env.prom")
        monkeypatch.setenv("SAVAT_TRACE", "/tmp/env.jsonl")
        args = build_parser().parse_args(["campaign"])
        assert args.metrics_out == "/tmp/env.prom"
        assert args.trace == "/tmp/env.jsonl"

    def test_execution_kwargs_build_an_observability_bundle(self, tmp_path):
        args = build_parser().parse_args(
            ["campaign", "--trace", str(tmp_path / "t.jsonl"),
             "--metrics-out", str(tmp_path / "m.prom"), "--no-progress"]
        )
        observability = _campaign_execution_kwargs(args)["observability"]
        assert observability.trace is not None
        assert observability.metrics_out == tmp_path / "m.prom"
        assert observability.progress_setting is False

    def test_execution_kwargs_without_flags_still_carry_a_registry(
        self, monkeypatch
    ):
        monkeypatch.delenv("SAVAT_METRICS_OUT", raising=False)
        monkeypatch.delenv("SAVAT_TRACE", raising=False)
        args = build_parser().parse_args(["campaign"])
        observability = _campaign_execution_kwargs(args)["observability"]
        assert observability.trace is None
        assert observability.metrics_out is None
        assert observability.metrics is not None


class _FakeCampaign:
    """Just enough of a SavatMatrix for the summary renderer."""

    events = ("ADD", "SUB")
    repetitions = 2

    def __init__(self, metadata):
        self.metadata = metadata

    def mean(self):
        return np.ones((2, 2))

    def std_over_mean(self):
        return 0.012


class _FakeMachine:
    def describe(self):
        return "core2duo at 10 cm"


class TestCampaignSummaryLines:
    EXECUTION = {
        "workers": 2, "wall_seconds": 1.5, "cache_hits": 1,
        "cache_misses": 3, "cells_simulated": 3, "resumed": 0,
        "retries": 1, "timeouts": 0, "quarantined": 0,
        "phase_seconds": {"core_run": 1.2},
        "faults_injected": {"raise": 1},
    }

    def test_full_summary_includes_the_execution_footer(self):
        lines = _campaign_summary_lines(
            _FakeCampaign({"execution": self.EXECUTION}), _FakeMachine()
        )
        text = "\n".join(lines)
        assert "3 cell(s) simulated" in text
        assert "0 cell(s) resumed from the journal" in text
        assert "simulation time by phase: core_run 1.2 s" in text
        assert "injected faults fired: raise x1" in text

    def test_missing_execution_metadata_degrades_gracefully(self):
        lines = _campaign_summary_lines(_FakeCampaign({}), _FakeMachine())
        text = "\n".join(lines)
        assert "SAVAT (zJ) on core2duo at 10 cm:" in text
        assert "std/mean over 2 repetitions" in text
        assert "cell(s) simulated" not in text
        assert "robustness" not in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure", "ADD", "LDM"])
        assert args.machine == "core2duo"
        assert args.distance == pytest.approx(0.10)
        assert args.frequency == pytest.approx(80e3)

    def test_campaign_formats(self):
        args = build_parser().parse_args(["campaign", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--format", "xml"])

    def test_campaign_execution_defaults(self, monkeypatch):
        monkeypatch.delenv("SAVAT_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 0
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_campaign_execution_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--workers", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True

    def test_cache_dir_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("SAVAT_CACHE_DIR", "/tmp/from-env")
        args = build_parser().parse_args(["campaign"])
        assert args.cache_dir == "/tmp/from-env"

    def test_groups_accepts_execution_flags(self):
        args = build_parser().parse_args(["groups", "--workers", "2"])
        assert args.workers == 2

    def test_shm_defaults_to_auto(self):
        args = build_parser().parse_args(["campaign"])
        assert args.shm is None
        assert args.schedule == "rowmajor"

    def test_shm_and_schedule_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--shm", "--schedule", "cost"]
        )
        assert args.shm is True
        assert args.schedule == "cost"
        args = build_parser().parse_args(["campaign", "--no-shm"])
        assert args.shm is False

    def test_study_accepts_shm_and_schedule_flags(self):
        args = build_parser().parse_args(
            ["study", "--shm", "--schedule", "cost"]
        )
        assert args.shm is True
        assert args.schedule == "cost"

    def test_bad_schedule_fails_parsing(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--schedule", "random"])
        assert "schedule" in capsys.readouterr().err

    def test_negative_workers_fail_parsing(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--workers", "-3"])
        assert "workers" in capsys.readouterr().err

    def test_audit_memory_assumption(self):
        args = build_parser().parse_args(["audit", "x.s", "--assume-memory", "L2"])
        assert args.assume_memory == "L2"


class TestMeasurementFlags:
    def test_campaign_method_and_duration_defaults(self, monkeypatch):
        monkeypatch.delenv("SAVAT_METHOD", raising=False)
        monkeypatch.delenv("SAVAT_DURATION_S", raising=False)
        args = build_parser().parse_args(["campaign"])
        config = _measurement_config(args)
        assert config.method == "analytic"
        assert config.duration_s == pytest.approx(1.0)

    def test_campaign_method_and_duration_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--method", "full", "--duration-s", "0.25"]
        )
        config = _measurement_config(args)
        assert config.method == "full"
        assert config.duration_s == pytest.approx(0.25)

    def test_groups_accepts_measurement_flags(self):
        args = build_parser().parse_args(["groups", "--method", "full"])
        assert _measurement_config(args).method == "full"

    def test_synthesis_alias_normalizes(self):
        args = build_parser().parse_args(["campaign", "--method", "synthesis"])
        assert _measurement_config(args).method == "full"

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.setenv("SAVAT_METHOD", "full")
        monkeypatch.setenv("SAVAT_DURATION_S", "0.5")
        args = build_parser().parse_args(["campaign"])
        config = _measurement_config(args)
        assert config.method == "full"
        assert config.duration_s == pytest.approx(0.5)

    def test_unknown_method_flag_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--method", "guesswork"])

    def test_invalid_duration_environment_fails_cleanly(self, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("SAVAT_DURATION_S", "soon")
        args = build_parser().parse_args(["campaign"])
        with pytest.raises(ConfigurationError):
            _measurement_config(args)

    def test_method_and_duration_change_the_cache_key(self):
        from repro.core.executor import campaign_cache_key
        from repro.core.savat import MeasurementConfig

        keys = {
            campaign_cache_key("core2duo", 0.1, config, ["ADD", "SUB"], 3, 0)
            for config in (
                MeasurementConfig(),
                MeasurementConfig(method="full"),
                MeasurementConfig(method="full", duration_s=0.5),
                MeasurementConfig(duration_s=0.5),
            )
        }
        assert len(keys) == 4


@pytest.mark.slow
class TestCommands:
    def test_measure(self, capsys, core2duo_10cm):
        code = main(["measure", "ADD", "MUL"])
        output = capsys.readouterr().out
        assert code == 0
        assert "SAVAT(ADD/MUL)" in output
        assert "inst_loop_count" in output

    def test_measure_unknown_event_fails_cleanly(self, capsys):
        code = main(["measure", "ADD", "FDIV"])
        assert code == 2
        assert "unknown event" in capsys.readouterr().err

    def test_campaign_csv(self, capsys, core2duo_10cm):
        code = main(
            ["campaign", "--events", "ADD,MUL", "--repetitions", "1", "--format", "csv"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert output.splitlines()[0] == ",ADD,MUL"

    def test_campaign_json_roundtrips(self, capsys, core2duo_10cm):
        code = main(
            ["campaign", "--events", "ADD,SUB", "--repetitions", "1", "--format", "json"]
        )
        output = capsys.readouterr().out
        assert code == 0
        payload = json.loads(output)
        assert payload["events"] == ["ADD", "SUB"]

    def test_campaign_parallel_cached_rerun_is_identical(
        self, capsys, core2duo_10cm, tmp_path
    ):
        arguments = [
            "campaign", "--events", "ADD,SUB", "--repetitions", "1",
            "--workers", "2", "--cache-dir", str(tmp_path), "--format", "csv",
        ]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert list(tmp_path.rglob("cell_*.npz"))

    def test_campaign_writes_trace_and_metrics(
        self, capsys, core2duo_10cm, tmp_path
    ):
        from repro.obs.check import parse_prometheus
        from repro.obs.trace import validate_trace_file

        trace_path = tmp_path / "run.jsonl"
        metrics_path = tmp_path / "run.prom"
        code = main(
            ["campaign", "--events", "ADD,SUB", "--repetitions", "1",
             "--trace", str(trace_path), "--metrics-out", str(metrics_path),
             "--no-progress", "--format", "csv"]
        )
        capsys.readouterr()
        assert code == 0
        assert validate_trace_file(trace_path) == []
        samples, errors = parse_prometheus(metrics_path.read_text())
        assert errors == []
        assert samples[("savat_cells_simulated_total", frozenset())] == 4

    def test_audit_leaky_file(self, capsys, tmp_path):
        source = tmp_path / "victim.s"
        source.write_text("test ebx, 1\njz zero\nmov eax, [esi]\nidiv ebx\nzero: halt\n")
        code = main(["audit", str(source)])
        output = capsys.readouterr().out
        assert code == 1  # leaks found -> nonzero exit for CI use
        assert "LEAKS" in output

    def test_audit_clean_file(self, capsys, tmp_path):
        source = tmp_path / "clean.s"
        source.write_text("add eax, 1\nhalt\n")
        code = main(["audit", str(source)])
        assert code == 0
        assert "no conditional branches" in capsys.readouterr().out

    def test_audit_missing_file(self, capsys):
        code = main(["audit", "/nonexistent/file.s"])
        assert code == 2

    def test_attack(self, capsys, core2duo_10cm):
        code = main(["attack", "--key", "1011", "--seed", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "recovered key: 1011" in output


@pytest.mark.slow
class TestExtendedCommands:
    def test_epi(self, capsys, core2duo_10cm):
        code = main(["epi"])
        output = capsys.readouterr().out
        assert code == 0
        assert "energy per instruction" in output
        assert "LDM" in output and "pJ" in output

    def test_frequency(self, capsys):
        code = main(["frequency", "--low", "40000", "--high", "100000", "--step", "20000"])
        output = capsys.readouterr().out
        assert code == 0
        assert "recommend" in output
        assert "<- chosen" in output


class TestDistanceArguments:
    def test_distance_parses_a_positive_float(self):
        assert _distance("0.25") == 0.25

    @pytest.mark.parametrize("text", ["0", "-0.1", "nan", "inf", "-inf"])
    def test_invalid_distance_rejected(self, text):
        with pytest.raises(argparse.ArgumentTypeError, match="positive, finite"):
            _distance(text)

    def test_non_numeric_distance_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError, match="invalid distance"):
            _distance("close")

    def test_parser_rejects_bad_distance_with_exit_code_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "--distance", "-1"])
        assert excinfo.value.code == 2
        assert "positive, finite" in capsys.readouterr().err

    def test_distance_list_parses_and_validates(self):
        assert _distance_list("0.10, 0.25,") == [0.10, 0.25]
        with pytest.raises(argparse.ArgumentTypeError, match="positive, finite"):
            _distance_list("0.10,0")
        with pytest.raises(argparse.ArgumentTypeError, match="no distances"):
            _distance_list(",,")


class TestMachineList:
    def test_parses_and_normalizes(self):
        assert _machine_list("core2duo, PENTIUM3M") == ["core2duo", "pentium3m"]

    def test_unknown_machine_names_itself_and_the_choices(self):
        with pytest.raises(argparse.ArgumentTypeError) as excinfo:
            _machine_list("core2duo,laptop")
        assert "unknown machine 'laptop'" in str(excinfo.value)
        assert "core2duo" in str(excinfo.value)

    def test_empty_list_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError, match="no machine names"):
            _machine_list(",")


class TestStudyParser:
    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.machines == ["core2duo"]
        assert args.distances == [0.10, 0.50]
        assert args.events is None
        assert args.workers == 0
        assert args.format == "table"
        assert not args.no_trace_cache

    def test_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "study",
                "--machines", "core2duo,pentium3m",
                "--distances", "0.10,0.25,1.0",
                "--events", "ADD,SUB",
                "--workers", "4",
                "--trace-cache-dir", str(tmp_path / "traces"),
                "--output-dir", str(tmp_path / "out"),
                "--no-trace-cache",
                "--format", "json",
            ]
        )
        assert args.machines == ["core2duo", "pentium3m"]
        assert args.distances == [0.10, 0.25, 1.0]
        assert args.events == ["ADD", "SUB"]
        assert args.workers == 4
        assert args.no_trace_cache
        assert args.format == "json"

    @pytest.mark.slow
    def test_study_command_runs_end_to_end(self, capsys, core2duo_10cm):
        code = main(
            [
                "study",
                "--distances", "0.10,0.50",
                "--events", "ADD,SUB",
                "--repetitions", "2",
                "--seed", "3",
                "--method", "analytic",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "2 campaign(s)" in output
        assert "trace cache totals" in output

    @pytest.mark.slow
    def test_study_json_format(self, capsys, core2duo_10cm):
        code = main(
            [
                "study",
                "--distances", "0.10",
                "--events", "ADD,SUB",
                "--repetitions", "2",
                "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["campaigns"]) == 1
        assert payload["trace_cache"]["stores"] == 4
