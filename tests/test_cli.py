"""Tests for the savat command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure", "ADD", "LDM"])
        assert args.machine == "core2duo"
        assert args.distance == pytest.approx(0.10)
        assert args.frequency == pytest.approx(80e3)

    def test_campaign_formats(self):
        args = build_parser().parse_args(["campaign", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--format", "xml"])

    def test_campaign_execution_defaults(self, monkeypatch):
        monkeypatch.delenv("SAVAT_CACHE_DIR", raising=False)
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 0
        assert args.cache_dir is None
        assert args.no_cache is False

    def test_campaign_execution_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--workers", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache is True

    def test_cache_dir_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("SAVAT_CACHE_DIR", "/tmp/from-env")
        args = build_parser().parse_args(["campaign"])
        assert args.cache_dir == "/tmp/from-env"

    def test_groups_accepts_execution_flags(self):
        args = build_parser().parse_args(["groups", "--workers", "2"])
        assert args.workers == 2

    def test_audit_memory_assumption(self):
        args = build_parser().parse_args(["audit", "x.s", "--assume-memory", "L2"])
        assert args.assume_memory == "L2"


@pytest.mark.slow
class TestCommands:
    def test_measure(self, capsys, core2duo_10cm):
        code = main(["measure", "ADD", "MUL"])
        output = capsys.readouterr().out
        assert code == 0
        assert "SAVAT(ADD/MUL)" in output
        assert "inst_loop_count" in output

    def test_measure_unknown_event_fails_cleanly(self, capsys):
        code = main(["measure", "ADD", "FDIV"])
        assert code == 2
        assert "unknown event" in capsys.readouterr().err

    def test_campaign_csv(self, capsys, core2duo_10cm):
        code = main(
            ["campaign", "--events", "ADD,MUL", "--repetitions", "1", "--format", "csv"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert output.splitlines()[0] == ",ADD,MUL"

    def test_campaign_json_roundtrips(self, capsys, core2duo_10cm):
        code = main(
            ["campaign", "--events", "ADD,SUB", "--repetitions", "1", "--format", "json"]
        )
        output = capsys.readouterr().out
        assert code == 0
        payload = json.loads(output)
        assert payload["events"] == ["ADD", "SUB"]

    def test_campaign_parallel_cached_rerun_is_identical(
        self, capsys, core2duo_10cm, tmp_path
    ):
        arguments = [
            "campaign", "--events", "ADD,SUB", "--repetitions", "1",
            "--workers", "2", "--cache-dir", str(tmp_path), "--format", "csv",
        ]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert main(arguments) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert list(tmp_path.rglob("cell_*.npz"))

    def test_audit_leaky_file(self, capsys, tmp_path):
        source = tmp_path / "victim.s"
        source.write_text("test ebx, 1\njz zero\nmov eax, [esi]\nidiv ebx\nzero: halt\n")
        code = main(["audit", str(source)])
        output = capsys.readouterr().out
        assert code == 1  # leaks found -> nonzero exit for CI use
        assert "LEAKS" in output

    def test_audit_clean_file(self, capsys, tmp_path):
        source = tmp_path / "clean.s"
        source.write_text("add eax, 1\nhalt\n")
        code = main(["audit", str(source)])
        assert code == 0
        assert "no conditional branches" in capsys.readouterr().out

    def test_audit_missing_file(self, capsys):
        code = main(["audit", "/nonexistent/file.s"])
        assert code == 2

    def test_attack(self, capsys, core2duo_10cm):
        code = main(["attack", "--key", "1011", "--seed", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "recovered key: 1011" in output


@pytest.mark.slow
class TestExtendedCommands:
    def test_epi(self, capsys, core2duo_10cm):
        code = main(["epi"])
        output = capsys.readouterr().out
        assert code == 0
        assert "energy per instruction" in output
        assert "LDM" in output and "pJ" in output

    def test_frequency(self, capsys):
        code = main(["frequency", "--low", "40000", "--high", "100000", "--step", "20000"])
        output = capsys.readouterr().out
        assert code == 0
        assert "recommend" in output
        assert "<- chosen" in output
