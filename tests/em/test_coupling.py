"""Unit and property tests for the coupling/field-mode model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.em.coupling import (
    CouplingMatrix,
    band_power_from_modes,
    fourier_coefficient,
)
from repro.errors import ConfigurationError
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS


class TestCouplingMatrix:
    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            CouplingMatrix(np.zeros((2, 3)), distance_m=0.1)

    def test_distance_validation(self):
        with pytest.raises(ConfigurationError):
            CouplingMatrix(np.zeros((2, NUM_COMPONENTS)), distance_m=0.0)

    def test_num_modes(self):
        coupling = CouplingMatrix(np.zeros((3, NUM_COMPONENTS)), distance_m=0.1)
        assert coupling.num_modes == 3

    def test_project_rates(self):
        weights = np.zeros((2, NUM_COMPONENTS))
        weights[0, 0] = 2.0
        weights[1, 1] = 3.0
        coupling = CouplingMatrix(weights, distance_m=0.1)
        rates = np.zeros(NUM_COMPONENTS)
        rates[0] = 1.0
        rates[1] = 1.0
        assert list(coupling.project_rates(rates)) == [2.0, 3.0]

    def test_project_rates_shape_checked(self):
        coupling = CouplingMatrix(np.zeros((2, NUM_COMPONENTS)), distance_m=0.1)
        with pytest.raises(ConfigurationError):
            coupling.project_rates(np.zeros(3))

    def test_project_trace(self):
        coupling = CouplingMatrix(np.ones((2, NUM_COMPONENTS)), distance_m=0.1)
        trace = ActivityTrace(np.ones((NUM_COMPONENTS, 5)), clock_hz=1e9)
        projected = coupling.project_trace(trace)
        assert projected.shape == (2, 5)
        assert np.allclose(projected, NUM_COMPONENTS)

    def test_scaled(self):
        coupling = CouplingMatrix(np.ones((1, NUM_COMPONENTS)), distance_m=0.1)
        scaled = coupling.scaled(0.5)
        assert np.allclose(scaled.weights, 0.5)


class TestFourierCoefficient:
    def test_pure_cosine_amplitude(self):
        length = 256
        t = np.arange(length)
        waveform = 4.0 * np.cos(2 * np.pi * t / length)
        assert abs(fourier_coefficient(waveform)) == pytest.approx(2.0, rel=1e-9)

    def test_constant_has_no_fundamental(self):
        assert abs(fourier_coefficient(np.full(64, 7.0))) == pytest.approx(0.0, abs=1e-12)

    def test_square_wave_fundamental(self):
        length = 1000
        waveform = np.where(np.arange(length) < length // 2, 1.0, 0.0)
        # 50% duty square wave: |c1| = 1/pi.
        assert abs(fourier_coefficient(waveform)) == pytest.approx(1 / np.pi, rel=1e-3)

    def test_duty_cycle_formula(self):
        length = 1000
        duty = 0.2
        waveform = np.where(np.arange(length) < duty * length, 1.0, 0.0)
        expected = np.sin(np.pi * duty) / np.pi
        assert abs(fourier_coefficient(waveform)) == pytest.approx(expected, rel=1e-3)

    def test_harmonics(self):
        length = 512
        t = np.arange(length)
        waveform = np.cos(2 * np.pi * 3 * t / length)
        assert abs(fourier_coefficient(waveform, harmonic=3)) == pytest.approx(0.5, rel=1e-9)
        assert abs(fourier_coefficient(waveform, harmonic=1)) == pytest.approx(0.0, abs=1e-12)

    def test_multimode_input(self):
        waveform = np.vstack([np.cos(2 * np.pi * np.arange(64) / 64)] * 3)
        coefficients = fourier_coefficient(waveform)
        assert coefficients.shape == (3,)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            fourier_coefficient(np.array([]))


class TestBandPower:
    def test_single_mode(self):
        # A cosine of amplitude A has c1 = A/2; power = A^2/2R = 2|c1|^2/R.
        amplitude = 3.0
        power = band_power_from_modes(np.array([amplitude / 2]), impedance=50.0)
        assert power == pytest.approx(amplitude**2 / (2 * 50.0))

    def test_modes_add_incoherently(self):
        one = band_power_from_modes(np.array([1.0]))
        two = band_power_from_modes(np.array([1.0, 1.0]))
        assert two == pytest.approx(2 * one)

    def test_scalar_input(self):
        assert band_power_from_modes(1.0 + 0j) > 0


@given(
    scale=st.floats(min_value=0.1, max_value=10.0),
    length=st.integers(min_value=8, max_value=512),
)
@settings(max_examples=40, deadline=None)
def test_fourier_coefficient_is_linear(scale, length):
    """Property: c1(a*x) = a*c1(x)."""
    rng = np.random.default_rng(length)
    waveform = rng.normal(size=length)
    base = fourier_coefficient(waveform)
    scaled = fourier_coefficient(scale * waveform)
    assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-12)
