"""Unit tests for the near/far-field propagation model."""

import numpy as np
import pytest

from repro.em.propagation import (
    NearFarModel,
    fit_near_far,
    interpolate_matrix,
)
from repro.errors import CalibrationError, ConfigurationError


class TestNearFarModel:
    def test_reference_power(self):
        model = NearFarModel(near=3.0, far=1.0, reference_m=0.1)
        assert model.power_at(0.1) == pytest.approx(4.0)

    def test_near_field_dominates_close(self):
        model = NearFarModel(near=1.0, far=1.0, reference_m=0.1)
        # At half the reference distance, near term grows 2^6, far 2^2.
        assert model.power_at(0.05) == pytest.approx(64.0 + 4.0)

    def test_far_field_dominates_far(self):
        model = NearFarModel(near=1.0, far=1.0, reference_m=0.1)
        power_1m = model.power_at(1.0)
        assert power_1m == pytest.approx(1e-6 + 1e-2)
        # Essentially all far-field at 1 m.
        assert power_1m == pytest.approx(1e-2, rel=1e-3)

    def test_amplitude_ratio(self):
        model = NearFarModel(near=0.0, far=4.0, reference_m=0.1)
        assert model.amplitude_ratio(0.2) == pytest.approx(0.5)

    def test_far_fraction(self):
        assert NearFarModel(near=3.0, far=1.0).far_fraction == pytest.approx(0.25)

    def test_negative_contributions_rejected(self):
        with pytest.raises(ConfigurationError):
            NearFarModel(near=-1.0, far=0.0)

    def test_zero_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            NearFarModel(near=1.0, far=1.0).power_at(0.0)


class TestFit:
    def test_recovers_known_model(self):
        truth = NearFarModel(near=5.0, far=0.5, reference_m=0.1)
        distances = np.array([0.1, 0.5, 1.0])
        powers = np.array([truth.power_at(d) for d in distances])
        fitted = fit_near_far(distances, powers)
        assert fitted.near == pytest.approx(5.0, rel=1e-6)
        assert fitted.far == pytest.approx(0.5, rel=1e-6)

    def test_pure_far_field(self):
        distances = np.array([0.1, 0.5, 1.0])
        powers = np.array([(0.1 / d) ** 2 for d in distances])
        fitted = fit_near_far(distances, powers)
        assert fitted.near == pytest.approx(0.0, abs=1e-9)

    def test_fit_is_nonnegative_even_for_noisy_data(self):
        distances = np.array([0.1, 0.5, 1.0])
        powers = np.array([0.1, 0.5, 1.0])  # increasing with distance (weird)
        fitted = fit_near_far(distances, powers)
        assert fitted.near >= 0.0
        assert fitted.far >= 0.0

    def test_single_distance_rejected(self):
        with pytest.raises(CalibrationError):
            fit_near_far(np.array([0.1, 0.1]), np.array([1.0, 1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            fit_near_far(np.array([0.1, 0.5]), np.array([1.0]))


class TestInterpolateMatrix:
    def test_exact_at_anchor_distances(self):
        truth_near = NearFarModel(near=9.0, far=1.0)
        distances = [0.1, 0.5, 1.0]
        matrices = [
            np.full((2, 2), truth_near.power_at(d)) + 0.5 for d in distances
        ]
        result = interpolate_matrix(distances, matrices, 0.5, floor=0.5)
        assert np.allclose(result, matrices[1], rtol=1e-6)

    def test_floor_preserved(self):
        distances = [0.1, 1.0]
        matrices = [np.full((2, 2), 10.0), np.full((2, 2), 0.6)]
        result = interpolate_matrix(distances, matrices, 5.0, floor=0.6)
        assert np.all(result >= 0.6 - 1e-9)

    def test_too_few_anchors_rejected(self):
        with pytest.raises(CalibrationError):
            interpolate_matrix([0.1], [np.zeros((2, 2))], 0.5, floor=0.0)
