"""Unit tests for the loop-antenna model."""

import pytest

from repro.em.antenna import LoopAntenna
from repro.errors import ConfigurationError


class TestLoopAntenna:
    def test_default_is_paper_antenna(self):
        assert LoopAntenna().name == "AOR LA400"

    def test_in_band(self):
        antenna = LoopAntenna(low_cutoff_hz=10e3, high_cutoff_hz=1e6)
        assert antenna.in_band(80e3)
        assert not antenna.in_band(1e3)
        assert not antenna.in_band(1e9)

    def test_flat_response_in_band(self):
        antenna = LoopAntenna(gain=2.0)
        assert antenna.response(80e3) == 2.0

    def test_rolloff_below_band(self):
        antenna = LoopAntenna(gain=1.0, low_cutoff_hz=10e3)
        assert antenna.response(1e3) == pytest.approx(0.1)

    def test_rolloff_above_band(self):
        antenna = LoopAntenna(gain=1.0, high_cutoff_hz=500e6)
        assert antenna.response(5e9) == pytest.approx(0.1)

    def test_invalid_gain_rejected(self):
        with pytest.raises(ConfigurationError):
            LoopAntenna(gain=0.0)

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            LoopAntenna(low_cutoff_hz=1e6, high_cutoff_hz=1e3)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            LoopAntenna().response(0.0)
