"""Unit tests for the time-domain signal synthesis."""

import numpy as np
import pytest

from repro.em.coupling import CouplingMatrix, band_power_from_modes, fourier_coefficient
from repro.em.synthesis import (
    JitterModel,
    period_envelope,
    synthesize_measurement,
)
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.signal_processing import band_power, periodogram_psd
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS


def _square_trace(cycles=1000, clock_hz=80e6) -> ActivityTrace:
    """One alternation-like period: component 0 active in the first half."""
    data = np.zeros((NUM_COMPONENTS, cycles))
    data[0, : cycles // 2] = 1.0
    return ActivityTrace(data, clock_hz=clock_hz)


def _unit_coupling(num_modes=1) -> CouplingMatrix:
    weights = np.zeros((num_modes, NUM_COMPONENTS))
    weights[:, 0] = 1.0
    return CouplingMatrix(weights, distance_m=0.1)


class TestJitterModel:
    def test_no_jitter_is_exactly_one(self, rng):
        model = JitterModel(period_sigma=0.0, drift_sigma=0.0)
        assert np.allclose(model.period_multipliers(10, rng), 1.0)

    def test_multipliers_bounded(self, rng):
        model = JitterModel(period_sigma=0.5, drift_sigma=0.1)
        multipliers = model.period_multipliers(1000, rng)
        assert np.all(multipliers >= 0.5)
        assert np.all(multipliers <= 1.5)

    def test_drift_produces_correlated_walk(self, rng):
        model = JitterModel(period_sigma=0.0, drift_sigma=1e-3)
        multipliers = model.period_multipliers(5000, rng)
        # A random walk's late values correlate with adjacent ones.
        correlation = np.corrcoef(multipliers[:-1], multipliers[1:])[0, 1]
        assert correlation > 0.9

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            JitterModel(period_sigma=-0.1)

    def test_zero_periods_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            JitterModel().period_multipliers(0, rng)


class TestPeriodEnvelope:
    def test_shape(self):
        envelope = period_envelope(_square_trace(), _unit_coupling(2), 64)
        assert envelope.shape[0] == 2
        assert envelope.shape[1] <= 64

    def test_preserves_mean(self):
        trace = _square_trace()
        envelope = period_envelope(trace, _unit_coupling(), 50)
        assert envelope.mean() == pytest.approx(0.5, rel=1e-6)

    def test_minimum_samples_enforced(self):
        with pytest.raises(ConfigurationError):
            period_envelope(_square_trace(), _unit_coupling(), 2)


class TestSynthesizeMeasurement:
    def test_output_shape_and_rate(self, rng):
        trace = _square_trace()
        signal = synthesize_measurement(
            trace, _unit_coupling(), duration_s=0.01, rng=rng
        )
        expected_samples = int(round(0.01 * signal.sample_rate_hz))
        assert signal.samples.shape == (1, expected_samples)
        assert signal.nominal_frequency_hz == pytest.approx(1.0 / trace.duration_s)

    def test_band_power_matches_analytic_without_jitter(self, rng):
        """The synthesized signal's fundamental band power must equal the
        analytic Fourier prediction from the one-period trace."""
        trace = _square_trace()
        coupling = _unit_coupling()
        signal = synthesize_measurement(
            trace,
            coupling,
            duration_s=0.05,
            rng=rng,
            jitter=JitterModel(period_sigma=0.0, drift_sigma=0.0),
        )
        freqs, psd = periodogram_psd(signal.samples, signal.sample_rate_hz)
        f_alt = signal.nominal_frequency_hz
        measured = band_power(freqs, psd, f_alt, 0.02 * f_alt) / 50.0
        coefficient = fourier_coefficient(coupling.project_trace(trace))
        analytic = band_power_from_modes(coefficient, impedance=50.0)
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_jitter_disperses_but_conserves_band_power(self, rng):
        trace = _square_trace()
        coupling = _unit_coupling()
        signal = synthesize_measurement(
            trace,
            coupling,
            duration_s=0.05,
            rng=rng,
            jitter=JitterModel(period_sigma=2e-3, drift_sigma=1e-4),
        )
        freqs, psd = periodogram_psd(signal.samples, signal.sample_rate_hz)
        f_alt = signal.nominal_frequency_hz
        narrow = band_power(freqs, psd, f_alt, 0.001 * f_alt)
        wide = band_power(freqs, psd, f_alt, 0.05 * f_alt)
        coefficient = fourier_coefficient(coupling.project_trace(trace))
        analytic = band_power_from_modes(coefficient, impedance=50.0)
        # Dispersion: narrow band misses some power, wide band recovers it.
        assert narrow < wide
        assert wide / 50.0 == pytest.approx(analytic, rel=0.10)

    def test_nonpositive_duration_rejected(self, rng):
        with pytest.raises(MeasurementError):
            synthesize_measurement(_square_trace(), _unit_coupling(), 0.0, rng)

    def test_multimode(self, rng):
        signal = synthesize_measurement(
            _square_trace(), _unit_coupling(3), duration_s=0.005, rng=rng
        )
        assert signal.num_modes == 3
