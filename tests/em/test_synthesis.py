"""Unit tests for the time-domain signal synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.em.coupling import CouplingMatrix, band_power_from_modes, fourier_coefficient
from repro.em.synthesis import (
    JitterModel,
    measurement_time_grid,
    period_envelope,
    synthesize_measurement,
    tile_period_indices,
)
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.signal_processing import band_power, periodogram_psd
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS


def _square_trace(cycles=1000, clock_hz=80e6) -> ActivityTrace:
    """One alternation-like period: component 0 active in the first half."""
    data = np.zeros((NUM_COMPONENTS, cycles))
    data[0, : cycles // 2] = 1.0
    return ActivityTrace(data, clock_hz=clock_hz)


def _unit_coupling(num_modes=1) -> CouplingMatrix:
    weights = np.zeros((num_modes, NUM_COMPONENTS))
    weights[:, 0] = 1.0
    return CouplingMatrix(weights, distance_m=0.1)


class TestJitterModel:
    def test_no_jitter_is_exactly_one(self, rng):
        model = JitterModel(period_sigma=0.0, drift_sigma=0.0)
        assert np.allclose(model.period_multipliers(10, rng), 1.0)

    def test_multipliers_bounded(self, rng):
        model = JitterModel(period_sigma=0.5, drift_sigma=0.1)
        multipliers = model.period_multipliers(1000, rng)
        assert np.all(multipliers >= 0.5)
        assert np.all(multipliers <= 1.5)

    def test_drift_produces_correlated_walk(self, rng):
        model = JitterModel(period_sigma=0.0, drift_sigma=1e-3)
        multipliers = model.period_multipliers(5000, rng)
        # A random walk's late values correlate with adjacent ones.
        correlation = np.corrcoef(multipliers[:-1], multipliers[1:])[0, 1]
        assert correlation > 0.9

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            JitterModel(period_sigma=-0.1)

    def test_zero_periods_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            JitterModel().period_multipliers(0, rng)


class TestPeriodEnvelope:
    def test_shape(self):
        envelope = period_envelope(_square_trace(), _unit_coupling(2), 64)
        assert envelope.shape[0] == 2
        assert envelope.shape[1] <= 64

    def test_preserves_mean(self):
        trace = _square_trace()
        envelope = period_envelope(trace, _unit_coupling(), 50)
        assert envelope.mean() == pytest.approx(0.5, rel=1e-6)

    def test_minimum_samples_enforced(self):
        with pytest.raises(ConfigurationError):
            period_envelope(_square_trace(), _unit_coupling(), 2)


class TestSynthesizeMeasurement:
    def test_output_shape_and_rate(self, rng):
        trace = _square_trace()
        signal = synthesize_measurement(
            trace, _unit_coupling(), duration_s=0.01, rng=rng
        )
        expected_samples = int(round(0.01 * signal.sample_rate_hz))
        assert signal.samples.shape == (1, expected_samples)
        assert signal.nominal_frequency_hz == pytest.approx(1.0 / trace.duration_s)

    def test_band_power_matches_analytic_without_jitter(self, rng):
        """The synthesized signal's fundamental band power must equal the
        analytic Fourier prediction from the one-period trace."""
        trace = _square_trace()
        coupling = _unit_coupling()
        signal = synthesize_measurement(
            trace,
            coupling,
            duration_s=0.05,
            rng=rng,
            jitter=JitterModel(period_sigma=0.0, drift_sigma=0.0),
        )
        freqs, psd = periodogram_psd(signal.samples, signal.sample_rate_hz)
        f_alt = signal.nominal_frequency_hz
        measured = band_power(freqs, psd, f_alt, 0.02 * f_alt) / 50.0
        coefficient = fourier_coefficient(coupling.project_trace(trace))
        analytic = band_power_from_modes(coefficient, impedance=50.0)
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_jitter_disperses_but_conserves_band_power(self, rng):
        trace = _square_trace()
        coupling = _unit_coupling()
        signal = synthesize_measurement(
            trace,
            coupling,
            duration_s=0.05,
            rng=rng,
            jitter=JitterModel(period_sigma=2e-3, drift_sigma=1e-4),
        )
        freqs, psd = periodogram_psd(signal.samples, signal.sample_rate_hz)
        f_alt = signal.nominal_frequency_hz
        narrow = band_power(freqs, psd, f_alt, 0.001 * f_alt)
        wide = band_power(freqs, psd, f_alt, 0.05 * f_alt)
        coefficient = fourier_coefficient(coupling.project_trace(trace))
        analytic = band_power_from_modes(coefficient, impedance=50.0)
        # Dispersion: narrow band misses some power, wide band recovers it.
        assert narrow < wide
        assert wide / 50.0 == pytest.approx(analytic, rel=0.10)

    def test_nonpositive_duration_rejected(self, rng):
        with pytest.raises(MeasurementError):
            synthesize_measurement(_square_trace(), _unit_coupling(), 0.0, rng)

    def test_multimode(self, rng):
        signal = synthesize_measurement(
            _square_trace(), _unit_coupling(3), duration_s=0.005, rng=rng
        )
        assert signal.num_modes == 3

    def test_precomputed_envelope_is_bit_identical(self):
        """Passing the hoisted period envelope (the batched repetition
        path) must not change a single output bit."""
        trace = _square_trace()
        coupling = _unit_coupling(2)
        kwargs = dict(duration_s=0.01, rng=None, jitter=JitterModel(0.0, 0.0))
        baseline = synthesize_measurement(trace, coupling, **kwargs)
        hoisted = synthesize_measurement(
            trace, coupling, envelope=period_envelope(trace, coupling), **kwargs
        )
        assert np.array_equal(baseline.samples, hoisted.samples)

    def test_reuse_buffer_is_value_identical(self, rng):
        """The shared-buffer gather returns the same sample values as a
        fresh allocation (only the memory is recycled)."""
        trace = _square_trace()
        coupling = _unit_coupling(2)
        fresh = synthesize_measurement(
            trace, coupling, duration_s=0.01,
            rng=np.random.default_rng(5),
        )
        reused = synthesize_measurement(
            trace, coupling, duration_s=0.01,
            rng=np.random.default_rng(5), reuse_buffer=True,
        )
        assert np.array_equal(fresh.samples, reused.samples)
        # A second reuse call recycles the same backing memory.
        again = synthesize_measurement(
            trace, coupling, duration_s=0.01,
            rng=np.random.default_rng(6), reuse_buffer=True,
        )
        assert again.samples is not fresh.samples
        assert reused.samples is again.samples


class TestTimeGrid:
    def test_values_match_inline_expression(self):
        grid = measurement_time_grid(1000, 2.56e6)
        assert np.array_equal(grid, np.arange(1000) / 2.56e6)

    def test_cached_and_read_only(self):
        first = measurement_time_grid(512, 1e6)
        assert measurement_time_grid(512, 1e6) is first
        with pytest.raises(ValueError):
            first[0] = 1.0


def _reference_tile_indices(starts, durations, times, points_per_period):
    """The pre-vectorization formulation, kept as the executable spec."""
    num_periods = len(durations)
    period_index = np.clip(
        np.searchsorted(starts, times, "right") - 1, 0, num_periods - 1
    )
    phase = (times - starts[period_index]) / durations[period_index]
    return np.clip(
        (phase * points_per_period).astype(np.int64), 0, points_per_period - 1
    )


class TestTilePeriodIndices:
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_periods=st.integers(1, 50),
        num_samples=st.integers(1, 2000),
        points_per_period=st.integers(1, 128),
        period_sigma=st.floats(0.0, 0.4),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference_formulation(
        self, seed, num_periods, num_samples, points_per_period, period_sigma
    ):
        """Property: the repeat-expanded search is bit-identical to the
        reference gather over jittered period boundaries."""
        rng = np.random.default_rng(seed)
        nominal = 1.25e-5
        durations = nominal * np.clip(
            1.0 + rng.normal(0.0, period_sigma, num_periods), 0.5, 1.5
        )
        starts = np.concatenate(([0.0], np.cumsum(durations)))
        # Sample only within the covered interval, as synthesis does.
        times = np.sort(rng.uniform(0.0, starts[-1] * 0.999, num_samples))
        fast = tile_period_indices(starts, durations, times, points_per_period)
        reference = _reference_tile_indices(
            starts, durations, times, points_per_period
        )
        assert np.array_equal(fast, reference)

    def test_uniform_measurement_grid(self):
        """The synthesis geometry itself (regular grid, cumsum starts)
        matches the reference gather, boundary rounding included."""
        duration = 1.0 / 80e3
        durations = np.full(10, duration)
        starts = np.concatenate(([0.0], np.cumsum(durations)))
        times = measurement_time_grid(320, 32 * 80e3)
        indices = tile_period_indices(starts, durations, times, 64)
        reference = _reference_tile_indices(starts, durations, times, 64)
        assert np.array_equal(indices, reference)
        # Each 32-sample period walks the 64-point envelope start to end.
        assert indices[0] == 0
        assert np.all(np.diff(indices[:32]) >= 1)
        assert indices[31] >= 60
