"""Unit tests for the noise-environment model."""

import numpy as np
import pytest

from repro.em.environment import (
    DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ,
    NoiseEnvironment,
    RadioInterferer,
    quiet_lab_environment,
)
from repro.errors import ConfigurationError
from repro.units import thermal_noise_psd


class TestRadioInterferer:
    def test_power_fully_in_band(self):
        interferer = RadioInterferer(frequency_hz=80e3, power_w=1e-15, bandwidth_hz=10)
        assert interferer.power_in_band(79e3, 81e3) == pytest.approx(1e-15)

    def test_power_outside_band(self):
        interferer = RadioInterferer(frequency_hz=90e3, power_w=1e-15, bandwidth_hz=10)
        assert interferer.power_in_band(79e3, 81e3) == 0.0

    def test_partial_overlap(self):
        interferer = RadioInterferer(frequency_hz=81e3, power_w=1e-15, bandwidth_hz=20)
        # Band ends at 81 kHz: half the interferer bandwidth overlaps.
        assert interferer.power_in_band(79e3, 81e3) == pytest.approx(0.5e-15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RadioInterferer(frequency_hz=0, power_w=1e-15)
        with pytest.raises(ConfigurationError):
            RadioInterferer(frequency_hz=80e3, power_w=-1)


class TestNoiseEnvironment:
    def test_total_floor_includes_thermal(self):
        environment = NoiseEnvironment(instrument_floor_w_per_hz=1e-18)
        assert environment.total_floor_w_per_hz == pytest.approx(
            1e-18 + thermal_noise_psd()
        )

    def test_thermal_can_be_disabled(self):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        assert environment.total_floor_w_per_hz == pytest.approx(1e-18)

    def test_expected_band_power(self):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        assert environment.band_noise_power(80e3, 1e3) == pytest.approx(2e-15)

    def test_band_power_with_rng_fluctuates_around_mean(self, rng):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        draws = [environment.band_noise_power(80e3, 1e3, rng) for _ in range(200)]
        assert np.mean(draws) == pytest.approx(2e-15, rel=0.05)
        assert np.std(draws) > 0

    def test_interferer_added_to_band(self):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=0.0,
            include_thermal=False,
            interferers=(RadioInterferer(80e3, 1e-15, 10.0),),
        )
        assert environment.band_noise_power(80e3, 1e3) == pytest.approx(1e-15)

    def test_time_domain_noise_variance(self, rng):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        fs = 1e6
        samples = environment.time_domain_noise(200_000, fs, rng)
        expected_variance = 1e-18 * 50.0 * fs / 2
        assert samples.var() == pytest.approx(expected_variance, rel=0.05)

    def test_time_domain_interferer_tone_power(self, rng):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=0.0,
            include_thermal=False,
            interferers=(RadioInterferer(50e3, 1e-15, 1.0),),
        )
        samples = environment.time_domain_noise(100_000, 1e6, rng)
        measured_power = samples.var() / 50.0  # V^2 / R
        assert measured_power == pytest.approx(1e-15, rel=0.05)

    def test_negative_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseEnvironment(instrument_floor_w_per_hz=-1.0)

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseEnvironment().band_noise_power(80e3, 0.0)


class TestQuietLab:
    def test_matches_figure8_floor(self):
        environment = quiet_lab_environment()
        assert environment.instrument_floor_w_per_hz == pytest.approx(
            DEFAULT_INSTRUMENT_FLOOR_W_PER_HZ
        )

    def test_has_external_radio_signal(self):
        assert len(quiet_lab_environment().interferers) == 1

    def test_interferer_outside_measurement_band(self):
        environment = quiet_lab_environment()
        interferer = environment.interferers[0]
        assert not (79e3 <= interferer.frequency_hz <= 81e3)
