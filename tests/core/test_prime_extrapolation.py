"""Steady-state extrapolation must equal brute-force priming replay.

`_prime_fast` may skip whole chunks of priming periods once it proves
the hierarchy is pass-periodic, rotating the state and adding counter
deltas arithmetically.  ``SAVAT_PRIME_EXTRAPOLATE=0`` forces the same
code to replay every chunk through the wavefront engine, so the two
runs must agree bit-for-bit — final tags, dirty bits, LRU order,
occupancy, and every counter — for any period count ``K``.
"""

import numpy as np
import pytest

from repro.codegen.pointers import SweepPlan
from repro.core import savat
from repro.uarch.cache import CacheGeometry
from repro.uarch.fastpath import PRIME_EXTRAPOLATE_ENV
from repro.uarch.hierarchy import MemoryHierarchy, MemoryLatencies

LINE = 64


def _hierarchy() -> MemoryHierarchy:
    """Core2duo-shaped hierarchy: 32KB/8-way L1, 4MB/16-way L2."""
    return MemoryHierarchy(
        l1_geometry=CacheGeometry(32 * 1024, 8, LINE),
        l2_geometry=CacheGeometry(4 * 1024 * 1024, 16, LINE),
        latencies=MemoryLatencies(l1_cycles=3, l2_cycles=14, memory_cycles=200),
    )


def _ring(base: int, slots: int, is_store: bool) -> tuple[SweepPlan, bool]:
    return SweepPlan(base=base, footprint=slots * LINE, offset=LINE), is_store


def _state(hierarchy: MemoryHierarchy):
    return [
        hierarchy.l1._tags.copy(),
        hierarchy.l1._dirty.copy(),
        hierarchy.l1._occupancy.copy(),
        hierarchy.l2._tags.copy(),
        hierarchy.l2._dirty.copy(),
        hierarchy.l2._occupancy.copy(),
    ]


def _prime(monkeypatch, sweeps, count, periods, extrapolate):
    monkeypatch.setenv(PRIME_EXTRAPOLATE_ENV, "1" if extrapolate else "0")
    hierarchy = _hierarchy()
    savat._prime_fast(hierarchy, sweeps, count, periods)
    return hierarchy


def _assert_identical(primed, replayed):
    for array_a, array_b in zip(_state(primed), _state(replayed)):
        assert np.array_equal(array_a, array_b)
    assert primed.counters() == replayed.counters()


#: (sweeps, count) shapes whose priming must extrapolate exactly.
CASES = {
    # One L2-resident store ring: 1 MB cycles fully in ~228 periods.
    "single-store-ring": ([_ring(2**24, 16384, True)], 72),
    # Two rings of different sizes, mixed load/store, both eligible.
    "two-rings": ([_ring(2**24, 16384, False), _ring(2**26, 8192, True)], 130),
    # L1-sized ring + off-chip ring: 256 slots do not divide the L2 set
    # count, so eligibility hinges on the dynamic L2-absence check.
    "l1-ring-plus-offchip": ([_ring(2**24, 256, False), _ring(2**26, 131072, True)], 138),
}


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("periods", [96, 137, 200, 300])
def test_extrapolation_matches_brute_force(monkeypatch, case, periods):
    sweeps, count = CASES[case]
    primed = _prime(monkeypatch, sweeps, count, periods, extrapolate=True)
    replayed = _prime(monkeypatch, sweeps, count, periods, extrapolate=False)
    _assert_identical(primed, replayed)


def test_ineligible_ring_falls_back_to_replay(monkeypatch):
    """A ring smaller than the L1 set count cannot rotate isomorphically."""
    sweeps = [_ring(2**24, 32, True)]
    hierarchy = _hierarchy()
    rings = [(plan.base // LINE, plan.num_slots) for plan, _ in sweeps]
    assert hierarchy.ring_shift_plan(rings) is None
    primed = _prime(monkeypatch, sweeps, 72, 150, extrapolate=True)
    replayed = _prime(monkeypatch, sweeps, 72, 150, extrapolate=False)
    _assert_identical(primed, replayed)


def test_ring_shift_plan_flags_l2_check_rings():
    hierarchy = _hierarchy()
    # 4096 slots divide both set counts: unconditionally eligible.
    assert hierarchy.ring_shift_plan([(2**18, 4096)]) == []
    # 256 slots divide only the L1 set count: needs the dynamic check.
    assert hierarchy.ring_shift_plan([(2**18, 4096), (2**30, 256)]) == [(2**30, 256)]
    # Any ring failing L1 divisibility poisons the whole plan.
    assert hierarchy.ring_shift_plan([(2**18, 4096), (2**30, 32)]) is None


def test_extrapolation_actually_fires(monkeypatch):
    """The detector must skip chunks, not silently replay everything."""
    sweeps, count = [_ring(2**24, 4096, True)], 72
    shifts = []
    original = MemoryHierarchy.apply_ring_shift

    def spy(self, rings, shift):
        shifts.append(shift)
        original(self, rings, shift)

    monkeypatch.setattr(MemoryHierarchy, "apply_ring_shift", spy)
    primed = _prime(monkeypatch, sweeps, count, 200, extrapolate=True)
    assert shifts, "steady-state detector never extrapolated"
    replayed = _prime(monkeypatch, sweeps, count, 200, extrapolate=False)
    _assert_identical(primed, replayed)
