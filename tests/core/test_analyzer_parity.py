"""Parity of the band-limited analyzer against the reference analyzer.

Mirrors ``tests/core/test_fastpath_bit_identity.py``: the band-limited
spectral path (the default for ``method="full"`` measurements) is only
allowed to exist because the full-spectrum reference analyzer produces
the same ``savat_zj`` to better than 1e-9 relative, with bit-identical
noise realizations (the rng streams stay in lockstep).  These tests pin
the toggle semantics, the per-sample agreement budget, and the
bit-identity of the batched repetition path against the historical
per-repetition loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    measure_savat,
    measure_savat_samples,
    simulate_alternation_period,
)
from repro.instruments.analyzer_path import (
    REFERENCE_ANALYZER_ENV,
    band_analyzer_enabled,
    reference_analyzer_enabled,
    set_band_analyzer,
    use_band_analyzer,
    use_reference_analyzer,
)
from repro.isa.events import get_event

#: Small full-signal-path configuration: 0.04 s at RBW 25 Hz keeps the
#: reference analyzer's full-length transforms fast while exercising the
#: whole synthesize -> analyze -> integrate pipeline.
SMALL_FULL = MeasurementConfig(method="full", duration_s=0.04, rbw_hz=25.0)


@pytest.fixture(autouse=True)
def follow_environment(monkeypatch):
    """Start every test on the default path with a clean environment."""
    monkeypatch.delenv(REFERENCE_ANALYZER_ENV, raising=False)
    set_band_analyzer(None)
    yield
    set_band_analyzer(None)


@pytest.fixture(scope="module")
def add_ldm_period(core2duo_10cm):
    """One simulated ADD/LDM alternation period, shared by the module."""
    plan = _plan_pair(core2duo_10cm, get_event("ADD"), get_event("LDM"), 80e3)
    return simulate_alternation_period(core2duo_10cm, plan)


class TestToggle:
    def test_band_analyzer_is_the_default(self):
        assert band_analyzer_enabled()
        assert not reference_analyzer_enabled()

    @pytest.mark.parametrize("value", ("1", "true", "YES", " on "))
    def test_truthy_environment_forces_reference(self, monkeypatch, value):
        monkeypatch.setenv(REFERENCE_ANALYZER_ENV, value)
        assert reference_analyzer_enabled()

    @pytest.mark.parametrize("value", ("", "0", "off", "banana"))
    def test_other_environment_values_keep_band(self, monkeypatch, value):
        monkeypatch.setenv(REFERENCE_ANALYZER_ENV, value)
        assert band_analyzer_enabled()

    def test_context_managers_nest_and_restore(self, monkeypatch):
        monkeypatch.setenv(REFERENCE_ANALYZER_ENV, "1")
        assert reference_analyzer_enabled()
        with use_band_analyzer():
            assert band_analyzer_enabled()
            with use_reference_analyzer():
                assert reference_analyzer_enabled()
            assert band_analyzer_enabled()
        # Back to following the (reference-forcing) environment.
        assert reference_analyzer_enabled()

    def test_force_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(REFERENCE_ANALYZER_ENV, "1")
        set_band_analyzer(True)
        assert band_analyzer_enabled()
        set_band_analyzer(None)
        assert reference_analyzer_enabled()


class TestBandReferenceParity:
    def test_seeded_measurement_within_budget(self, core2duo_10cm, add_ldm_period):
        """Same seed, both analyzers: savat_zj within 1e-9 relative."""
        trace, plan = add_ldm_period
        with use_band_analyzer():
            fast = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL,
                rng=np.random.default_rng(2014), trace=trace, plan=plan,
            )
        with use_reference_analyzer():
            reference = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL,
                rng=np.random.default_rng(2014), trace=trace, plan=plan,
            )
        assert fast.savat_zj == pytest.approx(reference.savat_zj, rel=1e-9)
        assert fast.signal_band_power_w == pytest.approx(
            reference.signal_band_power_w, rel=1e-9
        )
        assert fast.noise_band_power_w == pytest.approx(
            reference.noise_band_power_w, rel=1e-9, abs=1e-30
        )

    def test_deterministic_measurement_within_budget(self, core2duo_10cm, add_ldm_period):
        trace, plan = add_ldm_period
        with use_band_analyzer():
            fast = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL, trace=trace, plan=plan
            )
        with use_reference_analyzer():
            reference = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL, trace=trace, plan=plan
            )
        assert fast.savat_zj == pytest.approx(reference.savat_zj, rel=1e-9)

    def test_band_spectrum_is_the_reference_slice(self, core2duo_10cm, add_ldm_period):
        """The band path's recorded spectrum holds exactly the reference
        sweep's bins over the measurement band."""
        trace, plan = add_ldm_period
        with use_band_analyzer():
            fast = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL, trace=trace, plan=plan
            )
        with use_reference_analyzer():
            reference = measure_savat(
                core2duo_10cm, "ADD", "LDM", SMALL_FULL, trace=trace, plan=plan
            )
        f_center = SMALL_FULL.alternation_frequency_hz
        half = SMALL_FULL.band_half_width_hz
        window = reference.spectrum.slice(f_center - half, f_center + half)
        assert np.array_equal(fast.spectrum.freqs_hz, window.freqs_hz)
        scale = float(np.max(window.psd_w_per_hz))
        assert np.max(
            np.abs(fast.spectrum.psd_w_per_hz - window.psd_w_per_hz)
        ) <= 1e-9 * scale


class TestBatchedRepetitions:
    @staticmethod
    def _looped_and_batched(machine, trace, plan, config, repetitions=4):
        loop_rng = np.random.default_rng(99)
        looped = np.array(
            [
                measure_savat(
                    machine, "ADD", "LDM", config,
                    rng=loop_rng, trace=trace, plan=plan,
                ).savat_zj
                for _ in range(repetitions)
            ]
        )
        batched = measure_savat_samples(
            machine, "ADD", "LDM", config,
            rng=np.random.default_rng(99), trace=trace, plan=plan,
            repetitions=repetitions,
        )
        return looped, batched

    def test_batched_analytic_is_bit_identical(self, core2duo_10cm, add_ldm_period):
        """The analytic batch hoists only a pure function of the trace,
        so it reproduces the historical per-repetition loop bit for bit
        (the campaign golden values and checksums depend on this)."""
        trace, plan = add_ldm_period
        looped, batched = self._looped_and_batched(
            core2duo_10cm, trace, plan, MeasurementConfig()
        )
        assert np.array_equal(batched, looped)

    def test_batched_full_matches_repeated_loop(self, core2duo_10cm, add_ldm_period):
        """The full-method batch re-tiles a hoisted envelope through a
        reused sample buffer; every random draw happens in the same
        order as the loop, and the samples agree to the last couple of
        ulp (buffer alignment can flip the final bit of SIMD
        reductions), far inside the pipeline's 1e-9 budget."""
        trace, plan = add_ldm_period
        looped, batched = self._looped_and_batched(
            core2duo_10cm, trace, plan, SMALL_FULL
        )
        np.testing.assert_allclose(batched, looped, rtol=1e-12)

    def test_nonpositive_repetitions_rejected(self, core2duo_10cm, add_ldm_period):
        from repro.errors import ConfigurationError

        trace, plan = add_ldm_period
        with pytest.raises(ConfigurationError):
            measure_savat_samples(
                core2duo_10cm, "ADD", "LDM", trace=trace, plan=plan, repetitions=0
            )

    def test_deterministic_batch_constant(self, core2duo_10cm, add_ldm_period):
        """Without an rng every repetition is the expected-value sample."""
        trace, plan = add_ldm_period
        batched = measure_savat_samples(
            core2duo_10cm, "ADD", "LDM", SMALL_FULL,
            trace=trace, plan=plan, repetitions=3,
        )
        assert np.all(batched == batched[0])


@pytest.mark.slow
def test_full_size_measurement_within_budget(core2duo_10cm):
    """Paper-scale geometry (1 s at RBW 1 Hz): the acceptance bound."""
    config = MeasurementConfig(method="full")
    plan = _plan_pair(core2duo_10cm, get_event("ADD"), get_event("LDM"), 80e3)
    trace, plan = simulate_alternation_period(core2duo_10cm, plan)
    with use_band_analyzer():
        fast = measure_savat(
            core2duo_10cm, "ADD", "LDM", config,
            rng=np.random.default_rng(7), trace=trace, plan=plan,
        )
    with use_reference_analyzer():
        reference = measure_savat(
            core2duo_10cm, "ADD", "LDM", config,
            rng=np.random.default_rng(7), trace=trace, plan=plan,
        )
    assert fast.savat_zj == pytest.approx(reference.savat_zj, rel=1e-9)
