"""Shared-memory sample plane, cost scheduling, and lifecycle tests.

The shared-memory plane may only ever be a transport optimization: a
pooled campaign with the arena on must produce bit-identical samples to
a serial run with it off, under any schedule, and under injected
faults.  Because segments are named kernel objects, the other property
locked down here is lifecycle hygiene — every exit path (success,
``CellExecutionError``, timeouts, a study failing mid-grid) must leave
``/dev/shm`` free of ``savat_*`` entries.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import shm
from repro.core.campaign import run_campaign
from repro.core.executor import (
    WorkerPool,
    _order_by_cost,
    _PendingCell,
    _validate_schedule,
    _validate_workers,
)
from repro.core.faults import FaultPlan
from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    estimate_cell_cost,
)
from repro.core.study import run_study
from repro.core.trace_cache import TraceCache, new_shm_prefix
from repro.errors import CellExecutionError, ConfigurationError
from repro.isa.events import get_event
from repro.uarch.activity import ActivityTrace

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="platform has no shared-memory plane"
)


def _savat_segments() -> list[str]:
    """Every live /dev/shm entry this codebase could have leaked."""
    return shm.list_segments(shm.SEGMENT_PREFIX)


def _run(machine, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


def _sleep(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


# ----------------------------------------------------------------------
# SampleArena
# ----------------------------------------------------------------------
@needs_shm
class TestSampleArena:
    def test_write_read_roundtrip(self):
        arena = shm.SampleArena.create(3, 4)
        try:
            samples = np.array([1.0, 2.5, -3.0, 4.25])
            arena.write_cell(
                1, 2, samples, {"prime": 0.5, "analyze": 0.125}, 2.0
            )
            assert np.array_equal(arena.read_cell(1, 2), samples)
            phases, elapsed = arena.read_strip(1, 2)
            assert phases == {"prime": 0.5, "analyze": 0.125}
            assert elapsed == 2.0
        finally:
            arena.unlink()

    def test_unwritten_strip_reads_empty(self):
        arena = shm.SampleArena.create(2, 2)
        try:
            phases, elapsed = arena.read_strip(0, 0)
            assert phases == {}
            assert elapsed == 0.0
        finally:
            arena.unlink()

    def test_attachment_writes_are_visible_to_the_owner(self):
        arena = shm.SampleArena.create(2, 3)
        try:
            attachment = shm.SampleArena.attach(arena.spec())
            attachment.write_cell(
                0, 1, np.array([7.0, 8.0, 9.0]), {"core_run": 1.0}, 0.5
            )
            attachment.close()
            assert np.array_equal(
                arena.read_cell(0, 1), np.array([7.0, 8.0, 9.0])
            )
            assert arena.read_strip(0, 1) == ({"core_run": 1.0}, 0.5)
        finally:
            arena.unlink()

    def test_unlink_removes_the_segment_and_is_idempotent(self):
        arena = shm.SampleArena.create(2, 2)
        name = arena.name
        assert name in _savat_segments()
        arena.unlink()
        assert name not in _savat_segments()
        arena.unlink()  # must not raise

    def test_sizes(self):
        assert shm.SampleArena.nbytes(3, 4) == (9 * 4 + 9 * 5) * 8
        arena = shm.SampleArena.create(2, 3)
        try:
            assert arena.cell_nbytes == (3 + 5) * 8
        finally:
            arena.unlink()


@needs_shm
class TestSegmentHelpers:
    def test_create_is_exclusive(self):
        name = f"{shm.SEGMENT_PREFIX}test_{shm.new_token()}"
        segment = shm.create_segment(name, 64)
        try:
            assert segment is not None
            assert shm.create_segment(name, 64) is None
        finally:
            segment.close()
            shm.unlink_segment(name)

    def test_attach_absent_returns_none(self):
        assert shm.attach_segment(f"{shm.SEGMENT_PREFIX}nope") is None

    def test_prefix_sweep(self):
        prefix = f"{shm.SEGMENT_PREFIX}sweep_{shm.new_token()}_"
        segments = [shm.create_segment(f"{prefix}{k}", 64) for k in "ab"]
        for segment in segments:
            segment.close()
        assert len(shm.list_segments(prefix)) == 2
        assert shm.unlink_segments(prefix) == 2
        assert shm.list_segments(prefix) == []


class TestResolveShm:
    def test_enabled_by_default(self):
        assert shm.shm_enabled({}) is True
        assert shm.shm_enabled({"SAVAT_SHM": "1"}) is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_env_disables(self, value):
        assert shm.shm_enabled({"SAVAT_SHM": value}) is False
        assert shm.resolve_shm(None, {"SAVAT_SHM": value}) is False

    def test_false_wins_over_everything(self):
        assert shm.resolve_shm(False, {}) is False

    def test_explicit_true_overrides_the_environment(self):
        assert (
            shm.resolve_shm(True, {"SAVAT_SHM": "0"}) == shm.shm_available()
        )


# ----------------------------------------------------------------------
# Trace-cache shm tier
# ----------------------------------------------------------------------
@needs_shm
class TestTraceCacheShmTier:
    ENTRY = (
        ActivityTrace(
            data=np.arange(13 * 4, dtype=np.float64).reshape(13, 4) + 1.0,
            clock_hz=2.4e9,
        ),
        5,
        80e3,
    )

    @pytest.fixture()
    def prefix(self):
        prefix = new_shm_prefix()
        yield prefix
        shm.unlink_segments(prefix)

    def test_store_publishes_and_a_sibling_cache_hits(self, prefix):
        writer = TraceCache(shm_prefix=prefix)
        writer.store("k1", *self.ENTRY)
        assert writer.shm_segments() == [f"{prefix}k1"]

        reader = TraceCache(shm_prefix=prefix)
        entry = reader.load("k1")
        assert entry is not None
        trace, inst_loop_count, predicted_hz = entry
        assert np.array_equal(trace.data, self.ENTRY[0].data)
        assert trace.clock_hz == self.ENTRY[0].clock_hz
        assert (inst_loop_count, predicted_hz) == (5, 80e3)
        assert reader.counters()["shm_hits"] == 1
        assert reader.counters()["disk_hits"] == 0

    def test_disk_hit_promotes_into_shm(self, prefix, tmp_path):
        TraceCache(directory=tmp_path).store("k2", *self.ENTRY)

        reader = TraceCache(directory=tmp_path, shm_prefix=prefix)
        assert reader.load("k2") is not None
        assert reader.counters()["disk_hits"] == 1
        # Promotion is not a store: the entry was already persisted.
        assert reader.counters()["stores"] == 0
        assert reader.shm_segments() == [f"{prefix}k2"]

        sibling = TraceCache(shm_prefix=prefix)
        assert sibling.load("k2") is not None
        assert sibling.counters()["shm_hits"] == 1

    def test_corrupt_segment_is_unlinked_not_served(self, prefix):
        writer = TraceCache(shm_prefix=prefix)
        writer.store("k3", *self.ENTRY)
        segment = shm.attach_segment(f"{prefix}k3")
        flat = np.ndarray((segment.size // 8,), dtype=np.float64, buffer=segment.buf)
        flat[0] = np.nan  # destroy the header
        del flat
        segment.close()

        reader = TraceCache(shm_prefix=prefix)
        assert reader.load("k3") is None
        assert reader.counters()["misses"] == 1
        assert reader.counters()["shm_hits"] == 0
        assert shm.list_segments(f"{prefix}k3") == []

    def test_unlink_shm_sweeps_the_prefix(self, prefix):
        cache = TraceCache(shm_prefix=prefix)
        cache.store("k4", *self.ENTRY)
        cache.store("k5", *self.ENTRY)
        assert cache.unlink_shm() == 2
        assert cache.shm_segments() == []

    def test_spec_roundtrip_carries_the_prefix(self, prefix):
        cache = TraceCache(shm_prefix=prefix)
        assert TraceCache.from_spec(cache.spec()).shm_prefix == prefix

    def test_no_tier_without_prefix(self):
        cache = TraceCache()
        assert cache.shm_segments() == []
        assert cache.unlink_shm() == 0
        with pytest.raises(ValueError):
            cache.segment_name("k")


# ----------------------------------------------------------------------
# Workers and schedule validation (the old failure was a pool traceback)
# ----------------------------------------------------------------------
class TestWorkersValidation:
    @pytest.mark.parametrize("workers", [-1, -7, 2.5, "3", True, None])
    def test_bad_values_are_rejected(self, workers):
        with pytest.raises(ConfigurationError, match="workers"):
            _validate_workers(workers)

    @pytest.mark.parametrize("workers", [0, 1, 4, np.int64(2)])
    def test_good_values_normalize(self, workers):
        value = _validate_workers(workers)
        assert isinstance(value, int)
        assert value == int(workers)

    def test_run_campaign_rejects_bad_workers(self, core2duo_10cm):
        with pytest.raises(ConfigurationError, match="workers"):
            _run(core2duo_10cm, workers=-1)

    def test_run_study_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_study(["core2duo"], [0.10], workers=-2)

    @pytest.mark.parametrize("value", ["-1", "2.5", "lots"])
    def test_cli_rejects_bad_workers_at_parse_time(self, value, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--workers", value]
            )
        assert "workers" in capsys.readouterr().err

    def test_worker_pool_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError, match="workers"):
            WorkerPool(-1)


class TestScheduleValidation:
    def test_unknown_schedule_is_rejected(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            _validate_schedule("random")

    def test_known_schedules_pass(self):
        assert _validate_schedule("rowmajor") == "rowmajor"
        assert _validate_schedule("cost") == "cost"

    def test_run_campaign_rejects_bad_schedule(self, core2duo_10cm):
        with pytest.raises(ConfigurationError, match="schedule"):
            _run(core2duo_10cm, schedule="bogus")


# ----------------------------------------------------------------------
# Cost model and scheduling order
# ----------------------------------------------------------------------
class TestCostModel:
    @pytest.fixture(scope="class")
    def plans(self, core2duo_10cm):
        def plan(a, b):
            return _plan_pair(
                core2duo_10cm,
                get_event(a),
                get_event(b),
                FAST_CONFIG.alternation_frequency_hz,
            )

        return plan

    def test_memory_pairs_cost_more_than_alu_pairs(self, plans):
        alu = estimate_cell_cost(plans("ADD", "SUB"), 10, "analytic")
        memory = estimate_cell_cost(plans("LDM", "STM"), 10, "analytic")
        assert memory > alu

    def test_full_method_costs_more_than_analytic(self, plans):
        plan = plans("ADD", "SUB")
        assert estimate_cell_cost(plan, 10, "full") > estimate_cell_cost(
            plan, 10, "analytic"
        )

    def test_cost_grows_with_repetitions(self, plans):
        plan = plans("ADD", "SUB")
        assert estimate_cell_cost(plan, 10, "full") > estimate_cell_cost(
            plan, 2, "full"
        )

    def _pending(self, plans, names):
        cells = []
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                cells.append(
                    _PendingCell(
                        i=i,
                        j=j,
                        event_a=get_event(a),
                        event_b=get_event(b),
                        seed_sequence=np.random.SeedSequence(0),
                        plan=plans(a, b),
                    )
                )
        return cells

    def test_prior_puts_memory_rows_first(self, plans):
        names = ("ADD", "LDM")
        pending = self._pending(plans, names)
        ordered = _order_by_cost(pending, names, REPETITIONS, "analytic", {})
        # The LDM/LDM cell has the largest priming footprint.
        assert ordered[0].index == (1, 1)
        # Pure-ALU ADD/ADD drains last.
        assert ordered[-1].index == (0, 0)

    def test_recorded_history_overrides_the_prior(self, plans):
        names = ("ADD", "LDM")
        pending = self._pending(plans, names)
        history = {
            "ADD/ADD": 100.0,
            "ADD/LDM": 1.0,
            "LDM/ADD": 1.0,
            "LDM/LDM": 1.0,
        }
        ordered = _order_by_cost(pending, names, REPETITIONS, "analytic", history)
        assert ordered[0].index == (0, 0)

    def test_equal_costs_keep_row_major_order(self, plans):
        names = ("ADD", "LDM")
        pending = self._pending(plans, names)
        history = {f"{a}/{b}": 1.0 for a in names for b in names}
        ordered = _order_by_cost(pending, names, REPETITIONS, "analytic", history)
        assert [cell.index for cell in ordered] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]


# ----------------------------------------------------------------------
# WorkerPool.drain (shutdown ordering for shared state)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestWorkerPoolDrain:
    def test_drain_with_no_outstanding_tasks(self):
        with WorkerPool(2) as pool:
            assert pool.drain() is True

    def test_drain_waits_for_outstanding_tasks(self):
        with WorkerPool(2) as pool:
            future = pool.submit(_sleep, 0.5)
            assert pool.drain(timeout=0.05) is False
            assert pool.drain() is True
            assert future.done()


# ----------------------------------------------------------------------
# Lifecycle: no /dev/shm leaks on any exit path
# ----------------------------------------------------------------------
@needs_shm
@pytest.mark.slow
class TestNoSegmentLeaks:
    def test_successful_pooled_campaign(self, core2duo_10cm):
        _run(core2duo_10cm, workers=2, shm=True)
        assert _savat_segments() == []

    def test_fatal_cell_execution_error(self, core2duo_10cm):
        plan = FaultPlan.from_spec("raise@0,0x9")
        with pytest.raises(CellExecutionError):
            _run(
                core2duo_10cm,
                workers=2,
                max_retries=0,
                fault_plan=plan,
                shm=True,
            )
        assert _savat_segments() == []

    def test_timeout_and_retry_path(self, core2duo_10cm):
        plan = FaultPlan.from_spec("hang@0,1:1.5")
        _run(
            core2duo_10cm,
            workers=2,
            cell_timeout_s=0.4,
            max_retries=2,
            fault_plan=plan,
            shm=True,
        )
        assert _savat_segments() == []

    def test_study_failing_mid_grid_still_unlinks(self, tmp_path):
        # The second grid entry fails to load; the pool must drain and
        # the study-owned trace segments must be swept regardless.
        with pytest.raises(ConfigurationError):
            run_study(
                ["core2duo", "no-such-machine"],
                [0.10],
                events=EVENTS,
                config=FAST_CONFIG,
                repetitions=REPETITIONS,
                seed=SEED,
                workers=2,
                cache_dir=tmp_path,
                shm=True,
            )
        assert _savat_segments() == []


# ----------------------------------------------------------------------
# Bit-identity: transport and scheduling never change samples
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(600)
class TestBitIdentityProperty:
    @pytest.fixture(scope="class")
    def reference(self, core2duo_10cm):
        """The serial, shm-off, row-major run everything must match."""
        return _run(core2duo_10cm, shm=False)

    @settings(max_examples=6, deadline=None)
    @given(
        use_shm=st.booleans(),
        schedule=st.sampled_from(("rowmajor", "cost")),
        workers=st.sampled_from((0, 2)),
    )
    def test_samples_are_invariant(
        self, core2duo_10cm, reference, use_shm, schedule, workers
    ):
        matrix = _run(
            core2duo_10cm,
            workers=workers,
            shm=use_shm,
            schedule=schedule,
        )
        assert np.array_equal(matrix.samples_zj, reference.samples_zj)
        assert _savat_segments() == []

    def test_combined_fault_plan_with_shm_and_cost_schedule(
        self, core2duo_10cm, reference, tmp_path
    ):
        plan = FaultPlan.from_spec("raise@0,0;hang@0,1:1.5;corrupt@1,0")
        matrix = _run(
            core2duo_10cm,
            cache_dir=tmp_path,
            workers=2,
            cell_timeout_s=0.4,
            max_retries=2,
            fault_plan=plan,
            shm=True,
            schedule="cost",
        )
        execution = matrix.metadata["execution"]
        assert np.array_equal(matrix.samples_zj, reference.samples_zj)
        assert execution["faults_injected"] == {
            "raise": 1, "hang": 1, "corrupt": 1,
        }
        assert _savat_segments() == []
