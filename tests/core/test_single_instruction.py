"""Tests for single-instruction SAVAT (Section II)."""

import pytest

from repro.core.matrix import SavatMatrix
from repro.core.single_instruction import (
    INSTRUCTION_EVENT_GROUPS,
    most_leaky_instructions,
    single_instruction_savat,
)
from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import CORE2DUO_10CM


@pytest.fixture(scope="module")
def reference_matrix() -> SavatMatrix:
    return SavatMatrix(EVENT_ORDER, CORE2DUO_10CM.values_zj, "core2duo", 0.10)


class TestSingleInstructionSavat:
    def test_load_is_max_over_load_events(self, reference_matrix):
        values = single_instruction_savat(reference_matrix)
        expected = max(
            CORE2DUO_10CM.cell(a, b)
            for a in ("LDM", "LDL2", "LDL1")
            for b in ("LDM", "LDL2", "LDL1")
        )
        assert values["load (mov eax,[esi])"] == pytest.approx(expected)

    def test_store_exceeds_load_on_core2duo(self, reference_matrix):
        """STL2/STM (10.6-11.8) tops LDM/LDL2 (7.7-7.9) in Figure 9."""
        values = single_instruction_savat(reference_matrix)
        assert values["store (mov [esi],imm)"] > values["load (mov eax,[esi])"]

    def test_singleton_group_uses_diagonal(self, reference_matrix):
        values = single_instruction_savat(reference_matrix)
        assert values["add"] == pytest.approx(CORE2DUO_10CM.cell("ADD", "ADD"))

    def test_custom_groups(self, reference_matrix):
        values = single_instruction_savat(
            reference_matrix, {"mem": ("LDM", "STM")}
        )
        assert set(values) == {"mem"}

    def test_empty_group_rejected(self, reference_matrix):
        with pytest.raises(ConfigurationError):
            single_instruction_savat(reference_matrix, {"x": ()})

    def test_figure5_groups_cover_all_events(self):
        covered = {
            event for events in INSTRUCTION_EVENT_GROUPS.values() for event in events
        }
        assert covered == set(EVENT_ORDER)


class TestRanking:
    def test_sorted_descending(self, reference_matrix):
        ranking = most_leaky_instructions(reference_matrix)
        values = [value for _label, value in ranking]
        assert values == sorted(values, reverse=True)

    def test_memory_instructions_lead(self, reference_matrix):
        """Data-dependent cache behaviour is the paper's top programmer
        warning — loads/stores must outrank plain arithmetic."""
        ranking = most_leaky_instructions(reference_matrix)
        top_two = {label for label, _value in ranking[:2]}
        assert top_two == {"load (mov eax,[esi])", "store (mov [esi],imm)"}
