"""Golden-value regression test for the paper-reproduction numbers.

Pins the seed-0 Core 2 Duo campaign cells (default measurement config,
10 cm) to the values the current executor produces, at 1e-9 relative
tolerance.  Any refactor of the executor, the seed schedule, the kernel
simulation, or the EM pipeline that silently shifts the reproduced
paper numbers fails here first.

If a change *intentionally* alters the numbers (e.g. a physics-model
fix), regenerate the constants below with::

    PYTHONPATH=src python - <<'EOF'
    from repro.machines.calibrated import load_calibrated_machine
    from repro.core.campaign import run_campaign
    machine = load_calibrated_machine("core2duo", 0.10)
    matrix = run_campaign(
        machine, events=("ADD", "SUB", "LDM", "STM"), repetitions=2, seed=0
    )
    for a in matrix.events:
        for b in matrix.events:
            print(a, b, repr(matrix.cell(a, b)))
    EOF
"""

import numpy as np
import pytest

from repro.core.campaign import run_campaign

GOLDEN_EVENTS = ("ADD", "SUB", "LDM", "STM")
GOLDEN_REPETITIONS = 2
GOLDEN_SEED = 0

#: Mean SAVAT (zJ) per cell of the seed-0 golden campaign.
GOLDEN_CELLS = {
    ("LDM", "STM"): 2.6389543040820844,
    ("STM", "LDM"): 2.7006450972243874,
    ("ADD", "SUB"): 0.5892739155327535,
    ("SUB", "ADD"): 0.6478942160450085,
    ("ADD", "ADD"): 0.7171572215069673,
    ("SUB", "SUB"): 0.5791273268344774,
    ("LDM", "LDM"): 1.809866571982836,
    ("STM", "STM"): 2.4227043114977027,
}

#: Individual repetition samples (zJ) for two representative cells.
GOLDEN_SAMPLES = {
    ("ADD", "SUB"): [0.5379761971329192, 0.6405716339325878],
    ("LDM", "STM"): [2.6036842337990524, 2.6742243743651164],
}

TOLERANCE = 1e-9


@pytest.mark.slow
class TestGoldenSeedZeroCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, core2duo_10cm):
        return run_campaign(
            core2duo_10cm,
            events=GOLDEN_EVENTS,
            repetitions=GOLDEN_REPETITIONS,
            seed=GOLDEN_SEED,
        )

    @pytest.mark.parametrize("pair", sorted(GOLDEN_CELLS))
    def test_cell_mean_pinned(self, campaign, pair):
        assert campaign.cell(*pair) == pytest.approx(
            GOLDEN_CELLS[pair], rel=TOLERANCE, abs=TOLERANCE
        )

    @pytest.mark.parametrize("pair", sorted(GOLDEN_SAMPLES))
    def test_repetition_samples_pinned(self, campaign, pair):
        assert campaign.cell_samples(*pair) == pytest.approx(
            GOLDEN_SAMPLES[pair], rel=TOLERANCE, abs=TOLERANCE
        )

    def test_parallel_run_reproduces_golden_cells(self, core2duo_10cm, campaign):
        """The golden numbers are execution-order-independent."""
        parallel = run_campaign(
            core2duo_10cm,
            events=GOLDEN_EVENTS,
            repetitions=GOLDEN_REPETITIONS,
            seed=GOLDEN_SEED,
            workers=2,
        )
        assert np.array_equal(parallel.samples_zj, campaign.samples_zj)

    def test_all_cells_positive_and_memory_dominates(self, campaign):
        assert np.all(campaign.samples_zj > 0)
        assert campaign.cell("LDM", "STM") > campaign.cell("ADD", "SUB")
