"""Tests for the on-disk campaign result cache.

A warm cache must return an equal matrix while performing zero cell
simulations; changing any key component (seed, distance, event set,
repetitions, config) must miss; and corrupted or truncated entries are
quarantined (moved to ``<cache_dir>/quarantine/``, never silently
deleted) and re-simulated instead of crashing.
"""

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.executor import ResultCache, campaign_cache_key
from repro.core.savat import MeasurementConfig

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2


def _run(machine, cache_dir, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
        cache_dir=cache_dir,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


def _execution(matrix):
    return matrix.metadata["execution"]


@pytest.mark.slow
class TestCacheHitsAndMisses:
    @pytest.fixture()
    def warm_cache(self, core2duo_10cm, tmp_path):
        """A cache directory primed with the canonical tiny campaign."""
        cold = _run(core2duo_10cm, tmp_path)
        return tmp_path, cold

    def test_cold_run_misses_every_cell(self, warm_cache):
        _cache_dir, cold = warm_cache
        execution = _execution(cold)
        assert execution["cache_hits"] == 0
        assert execution["cache_misses"] == len(EVENTS) ** 2
        assert execution["cells_simulated"] == len(EVENTS) ** 2

    def test_warm_run_simulates_nothing_and_matches(self, core2duo_10cm, warm_cache):
        cache_dir, cold = warm_cache
        warm = _run(core2duo_10cm, cache_dir)
        execution = _execution(warm)
        assert execution["cache_hits"] == len(EVENTS) ** 2
        assert execution["cache_misses"] == 0
        assert execution["cells_simulated"] == 0
        assert np.array_equal(warm.samples_zj, cold.samples_zj)
        assert warm.events == cold.events

    def test_warm_cache_equals_uncached_run(self, core2duo_10cm, warm_cache):
        cache_dir, _cold = warm_cache
        uncached = _run(core2duo_10cm, None)
        warm = _run(core2duo_10cm, cache_dir, workers=2)
        assert np.array_equal(warm.samples_zj, uncached.samples_zj)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": SEED + 1},
            {"repetitions": REPETITIONS + 1},
            {"events": ("ADD", "MUL")},
            {"config": MeasurementConfig(alternation_frequency_hz=400e3)},
        ],
        ids=["seed", "repetitions", "events", "config"],
    )
    def test_changed_parameter_misses(self, core2duo_10cm, warm_cache, overrides):
        cache_dir, _cold = warm_cache
        changed = _run(core2duo_10cm, cache_dir, **overrides)
        execution = _execution(changed)
        assert execution["cache_hits"] == 0
        assert execution["cells_simulated"] > 0

    def test_changed_distance_misses(self, core2duo_100cm, warm_cache):
        cache_dir, _cold = warm_cache
        changed = _run(core2duo_100cm, cache_dir)
        execution = _execution(changed)
        assert execution["cache_hits"] == 0
        assert execution["cells_simulated"] == len(EVENTS) ** 2


@pytest.mark.slow
class TestCacheCorruption:
    def test_corrupted_entry_is_discarded_and_resimulated(
        self, core2duo_10cm, tmp_path
    ):
        cold = _run(core2duo_10cm, tmp_path)
        cache = ResultCache(tmp_path)
        key = campaign_cache_key(
            core2duo_10cm.name,
            core2duo_10cm.distance_m,
            FAST_CONFIG,
            EVENTS,
            REPETITIONS,
            SEED,
        )
        cache.cell_path(key, 0, 1).write_bytes(b"this is not an npz file")
        warm = _run(core2duo_10cm, tmp_path)
        execution = _execution(warm)
        assert execution["cache_hits"] == len(EVENTS) ** 2 - 1
        assert execution["cache_misses"] == 1
        assert execution["quarantined"] == 1
        assert np.array_equal(warm.samples_zj, cold.samples_zj)
        # The bad entry was preserved for inspection, not deleted.
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"this is not an npz file"

    def test_truncated_entry_is_discarded_and_resimulated(
        self, core2duo_10cm, tmp_path
    ):
        cold = _run(core2duo_10cm, tmp_path)
        cache = ResultCache(tmp_path)
        key = campaign_cache_key(
            core2duo_10cm.name,
            core2duo_10cm.distance_m,
            FAST_CONFIG,
            EVENTS,
            REPETITIONS,
            SEED,
        )
        path = cache.cell_path(key, 1, 0)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        warm = _run(core2duo_10cm, tmp_path)
        assert _execution(warm)["cache_misses"] == 1
        assert _execution(warm)["quarantined"] == 1
        assert np.array_equal(warm.samples_zj, cold.samples_zj)

    def test_wrong_shape_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cell("somekey", 0, 0, np.ones(3))
        assert cache.load_cell("somekey", 0, 0, repetitions=3) is not None
        assert cache.load_cell("somekey", 0, 0, repetitions=5) is None
        # The wrong-shape probe quarantined the entry, so it is gone
        # from the live cache but preserved under quarantine/.
        assert cache.load_cell("somekey", 0, 0, repetitions=3) is None
        assert cache.quarantine_count == 1
        assert cache.quarantined_paths[0].is_file()

    def test_non_finite_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cell("somekey", 0, 0, np.array([1.0, np.nan]))
        assert cache.load_cell("somekey", 0, 0, repetitions=2) is None

    def test_repeated_corruption_never_overwrites_quarantined_entries(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        for payload in (b"first corruption", b"second corruption"):
            cache.cell_path("somekey", 0, 0).parent.mkdir(
                parents=True, exist_ok=True
            )
            cache.cell_path("somekey", 0, 0).write_bytes(payload)
            assert cache.load_cell("somekey", 0, 0, repetitions=2) is None
        contents = {
            path.read_bytes() for path in cache.quarantine_dir().iterdir()
        }
        assert contents == {b"first corruption", b"second corruption"}


class TestLoadCellCounterSemantics:
    """Pin the exactly-once counter discipline of ``load_cell``.

    Every call increments exactly one of ``hits``/``misses``; a
    quarantined entry increments ``quarantined``-side counters and
    ``misses`` exactly once each and never ``hits`` — in direct unit
    use and through both serial and pool campaign executions.
    """

    def _counters(self, cache):
        return (cache.hits, cache.misses, cache.quarantine_count)

    def test_absent_entry_is_one_miss_no_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load_cell("k", 0, 0, repetitions=2) is None
        assert self._counters(cache) == (0, 1, 0)

    def test_good_entry_is_one_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cell("k", 0, 0, np.ones(2))
        assert cache.load_cell("k", 0, 0, repetitions=2) is not None
        assert self._counters(cache) == (1, 0, 0)

    def test_unreadable_entry_is_one_miss_one_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.cell_path("k", 0, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"garbage")
        assert cache.load_cell("k", 0, 0, repetitions=2) is None
        assert self._counters(cache) == (0, 1, 1)

    def test_wrong_shape_entry_is_one_miss_one_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cell("k", 0, 0, np.ones(3))
        assert cache.load_cell("k", 0, 0, repetitions=2) is None
        assert self._counters(cache) == (0, 1, 1)

    def test_non_finite_entry_is_one_miss_one_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_cell("k", 0, 0, np.array([1.0, np.inf]))
        assert cache.load_cell("k", 0, 0, repetitions=2) is None
        assert self._counters(cache) == (0, 1, 1)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [0, 2], ids=["serial", "pool"])
    def test_campaign_quarantine_counts_exactly_once_per_mode(
        self, core2duo_10cm, tmp_path, workers
    ):
        cells = len(EVENTS) ** 2
        _run(core2duo_10cm, tmp_path)  # warm the cache
        cache = ResultCache(tmp_path)
        key = campaign_cache_key(
            core2duo_10cm.name,
            core2duo_10cm.distance_m,
            FAST_CONFIG,
            EVENTS,
            REPETITIONS,
            SEED,
        )
        cache.cell_path(key, 0, 1).write_bytes(b"corrupt")
        matrix = _run(core2duo_10cm, None, cache=cache, workers=workers)
        execution = _execution(matrix)
        # The corrupt entry: one quarantine, one miss, never a hit —
        # on the cache object and in the execution metadata alike.
        assert (cache.hits, cache.misses) == (cells - 1, 1)
        assert cache.quarantine_count == 1
        assert execution["quarantined"] == 1
        assert execution["cache_misses"] == 1
        assert execution["cache_hits"] == cells - 1
        assert execution["cells_simulated"] == 1


class TestCacheKey:
    BASE = dict(
        machine_name="core2duo",
        distance_m=0.10,
        config=MeasurementConfig(),
        event_names=("ADD", "SUB"),
        repetitions=2,
        seed=0,
    )

    def test_key_is_stable(self):
        assert campaign_cache_key(**self.BASE) == campaign_cache_key(**self.BASE)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"machine_name": "pentium3m"},
            {"distance_m": 0.50},
            {"config": MeasurementConfig(method="synthesis")},
            {"config": MeasurementConfig(loop_noise_fraction=0.07)},
            {"event_names": ("SUB", "ADD")},
            {"event_names": ("ADD", "SUB", "MUL")},
            {"repetitions": 3},
            {"seed": 1},
        ],
    )
    def test_any_component_changes_the_key(self, overrides):
        changed = dict(self.BASE)
        changed.update(overrides)
        assert campaign_cache_key(**changed) != campaign_cache_key(**self.BASE)

    def test_manifest_written_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.write_manifest("k", {"seed": 0})
        manifest = cache.campaign_dir("k") / "manifest.json"
        assert manifest.exists()
        before = manifest.read_text()
        cache.write_manifest("k", {"seed": 999})
        assert manifest.read_text() == before


class TestCounterResetPerExecution:
    """Pin that a shared ``ResultCache`` reports per-execution counters.

    A study reuses one cache object across many campaigns; without the
    per-execution reset, the second campaign's metadata would carry the
    first campaign's hits and misses too (the regression this pins).
    """

    def test_begin_execution_zeroes_the_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.load_cell("k", 0, 0, repetitions=2)
        cache.store_cell("k", 0, 0, np.ones(2))
        cache.load_cell("k", 0, 0, repetitions=2)
        assert (cache.hits, cache.misses) == (1, 1)
        cache.begin_execution()
        assert (cache.hits, cache.misses, cache.quarantine_count) == (0, 0, 0)
        assert cache.quarantined_paths == []

    @pytest.mark.slow
    def test_reused_cache_reports_per_campaign_counters(self, core2duo_10cm, tmp_path):
        cells = len(EVENTS) ** 2
        cache = ResultCache(tmp_path)
        cold = _run(core2duo_10cm, None, cache=cache)
        warm = _run(core2duo_10cm, None, cache=cache)
        assert _execution(cold)["cache_misses"] == cells
        assert _execution(cold)["cache_hits"] == 0
        # Not cumulative: the warm campaign reports only its own traffic.
        assert _execution(warm)["cache_hits"] == cells
        assert _execution(warm)["cache_misses"] == 0
        assert np.array_equal(cold.samples_zj, warm.samples_zj)
