"""Tests for SAVAT-based instruction clustering (paper Sections III/VII)."""

import numpy as np
import pytest

from repro.core.clustering import (
    find_groups,
    group_representatives,
    savat_distance_matrix,
    similarity_graph,
)
from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import CORE2DUO_10CM


@pytest.fixture(scope="module")
def reference_matrix() -> SavatMatrix:
    """The paper's Figure 9 wrapped as a measured matrix."""
    return SavatMatrix(EVENT_ORDER, CORE2DUO_10CM.values_zj, "core2duo", 0.10)


class TestDistanceMatrix:
    def test_zero_diagonal(self, reference_matrix):
        distances = savat_distance_matrix(reference_matrix)
        assert np.all(np.diag(distances) == 0)

    def test_symmetric(self, reference_matrix):
        distances = savat_distance_matrix(reference_matrix)
        assert np.allclose(distances, distances.T)

    def test_nonnegative(self, reference_matrix):
        assert np.all(savat_distance_matrix(reference_matrix) >= 0)


class TestFindGroups:
    def test_recovers_paper_four_groups(self, reference_matrix):
        """Section V-A: off-chip {LDM,STM}, L2 {LDL2,STL2},
        arithmetic/L1 {ADD,SUB,MUL,NOI,LDL1,STL1}, and {DIV}."""
        groups = find_groups(reference_matrix, num_groups=4)
        as_sets = set(groups)
        assert frozenset({"LDM", "STM"}) in as_sets
        assert frozenset({"LDL2", "STL2"}) in as_sets
        assert frozenset({"DIV"}) in as_sets
        assert frozenset({"ADD", "SUB", "MUL", "NOI", "LDL1", "STL1"}) in as_sets

    def test_single_group(self, reference_matrix):
        groups = find_groups(reference_matrix, num_groups=1)
        assert len(groups) == 1
        assert len(groups[0]) == 11

    def test_invalid_count_rejected(self, reference_matrix):
        with pytest.raises(ConfigurationError):
            find_groups(reference_matrix, num_groups=0)
        with pytest.raises(ConfigurationError):
            find_groups(reference_matrix, num_groups=12)

    def test_groups_partition_events(self, reference_matrix):
        groups = find_groups(reference_matrix, num_groups=4)
        merged = sorted(event for group in groups for event in group)
        assert merged == sorted(EVENT_ORDER)


class TestRepresentatives:
    def test_one_per_group(self, reference_matrix):
        groups = find_groups(reference_matrix, num_groups=4)
        representatives = group_representatives(groups)
        assert len(representatives) == 4
        for representative, group in zip(representatives, groups):
            assert representative in group

    def test_scaling_benefit(self, reference_matrix):
        """4 representatives need 16 measurements instead of 121."""
        groups = find_groups(reference_matrix, num_groups=4)
        count = len(group_representatives(groups))
        assert count**2 < len(EVENT_ORDER) ** 2 / 5


class TestSimilarityGraph:
    def test_arithmetic_component_connected(self, reference_matrix):
        import networkx as nx

        graph = similarity_graph(reference_matrix)
        components = list(nx.connected_components(graph))
        arithmetic = next(c for c in components if "ADD" in c)
        assert {"ADD", "SUB", "MUL", "NOI"} <= arithmetic

    def test_offchip_not_connected_to_arithmetic(self, reference_matrix):
        import networkx as nx

        graph = similarity_graph(reference_matrix)
        assert not nx.has_path(graph, "LDM", "ADD")

    def test_edges_carry_savat(self, reference_matrix):
        graph = similarity_graph(reference_matrix)
        for _u, _v, data in graph.edges(data=True):
            assert "savat_zj" in data
