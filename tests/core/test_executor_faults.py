"""Fault-injection suite for the campaign executor.

For every fault kind the :class:`~repro.core.faults.FaultPlan` harness
can inject — a worker exception, a hang past the cell timeout, and a
corrupted cache entry — the campaign must complete without manual
intervention, the final matrix must be bit-identical to a fault-free
run (retries replay the cell's original seed-schedule entry), and the
retry / timeout / quarantine counters must match the injected plan.
"""

import json

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.faults import (
    DEFAULT_HANG_SECONDS,
    CellFault,
    FaultInjectedError,
    FaultPlan,
)
from repro.core.savat import MeasurementConfig
from repro.errors import CellExecutionError, ConfigurationError

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2
CELLS = len(EVENTS) ** 2


def _run(machine, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


def _execution(matrix):
    return matrix.metadata["execution"]


@pytest.fixture(scope="module")
def clean(core2duo_10cm):
    """The fault-free reference run every injected run must reproduce."""
    return _run(core2duo_10cm)


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------
class TestFaultPlanSpec:
    def test_parses_all_kinds(self):
        plan = FaultPlan.from_spec("raise@0,1;hang@1,2:2.5;corrupt@2,0")
        kinds = [(fault.kind, fault.i, fault.j) for fault in plan]
        assert kinds == [("raise", 0, 1), ("hang", 1, 2), ("corrupt", 2, 0)]
        assert plan.faults[1].seconds == pytest.approx(2.5)

    def test_attempt_counts(self):
        plan = FaultPlan.from_spec("raise@0,0x3")
        fault = plan.worker_fault(0, 0, attempt=2)
        assert fault is not None and fault.fires_on(2)
        assert plan.worker_fault(0, 0, attempt=3) is None

    def test_round_trips_through_spec(self):
        spec = "raise@0,1;hang@1,2:2.5;corrupt@2,0;raise@3,3x2"
        assert FaultPlan.from_spec(spec).to_spec() == spec

    def test_counts_by_kind(self):
        plan = FaultPlan.from_spec("raise@0,1;raise@1,1;hang@0,0:1")
        assert plan.counts_by_kind() == {"raise": 2, "hang": 1}

    def test_empty_spec_is_empty_plan(self):
        plan = FaultPlan.from_spec("")
        assert not plan and len(plan) == 0

    @pytest.mark.parametrize(
        "spec",
        ["explode@0,0", "raise@0", "raise@0,0:2.5", "hang@a,b", "raise@0,0x0"],
    )
    def test_malformed_specs_are_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec(spec)

    def test_from_environment(self):
        plan = FaultPlan.from_environment({"SAVAT_INJECT_FAULTS": "raise@0,1"})
        assert plan is not None and plan.worker_fault(0, 1, 0) is not None
        assert FaultPlan.from_environment({}) is None

    def test_worker_fault_ignores_corrupt_entries(self):
        plan = FaultPlan.from_spec("corrupt@0,0")
        assert plan.worker_fault(0, 0, 0) is None
        assert plan.corrupt_fault(0, 0) is not None


class TestCellFault:
    def test_raise_fault_raises_on_apply(self):
        with pytest.raises(FaultInjectedError):
            CellFault("raise", 0, 1).apply()

    def test_hang_fault_sleeps(self):
        import time

        started = time.perf_counter()
        CellFault("hang", 0, 0, seconds=0.05).apply()
        assert time.perf_counter() - started >= 0.05

    def test_corrupt_fault_cannot_apply_worker_side(self):
        with pytest.raises(ConfigurationError):
            CellFault("corrupt", 0, 0).apply()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CellFault("nonsense", 0, 0)
        with pytest.raises(ConfigurationError):
            CellFault("raise", -1, 0)
        with pytest.raises(ConfigurationError):
            CellFault("hang", 0, 0, seconds=-1.0)

    def test_default_hang_duration(self):
        fault = FaultPlan.from_spec("hang@0,0").faults[0]
        assert fault.seconds == DEFAULT_HANG_SECONDS


# ----------------------------------------------------------------------
# Injected worker exceptions
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRaiseFaults:
    def test_serial_retry_absorbs_the_fault(self, core2duo_10cm, clean):
        plan = FaultPlan.from_spec("raise@0,1")
        matrix = _run(core2duo_10cm, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["retries"] == 1
        assert execution["faults_injected"] == {"raise": 1}
        assert execution["cells_simulated"] == CELLS

    def test_parallel_retry_absorbs_the_fault(self, core2duo_10cm, clean):
        plan = FaultPlan.from_spec("raise@1,0")
        matrix = _run(core2duo_10cm, workers=2, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["retries"] == 1
        assert execution["faults_injected"] == {"raise": 1}

    def test_repeated_fault_consumes_multiple_retries(self, core2duo_10cm, clean):
        plan = FaultPlan.from_spec("raise@0,0x2")
        matrix = _run(core2duo_10cm, max_retries=2, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["retries"] == 2
        assert execution["faults_injected"] == {"raise": 2}

    def test_exhausted_retries_raise_cell_execution_error(self, core2duo_10cm):
        plan = FaultPlan.from_spec("raise@0,1x5")
        with pytest.raises(CellExecutionError) as excinfo:
            _run(core2duo_10cm, max_retries=1, fault_plan=plan)
        assert excinfo.value.pair == "ADD/SUB"
        assert excinfo.value.attempts == 2

    def test_fatal_failure_journals_completed_cells_before_reraise(
        self, core2duo_10cm, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        plan = FaultPlan.from_spec("raise@1,0x9")
        with pytest.raises(CellExecutionError):
            _run(core2duo_10cm, journal=journal, max_retries=0, fault_plan=plan)
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        cells = {(r["i"], r["j"]) for r in records if r["kind"] == "cell"}
        # Row-major execution: both row-0 cells completed before the
        # fatal cell (1, 0) and must have been journaled for --resume.
        assert cells == {(0, 0), (0, 1)}

    def test_fatal_failure_in_pool_mode_journals_completed_cells(
        self, core2duo_10cm, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        plan = FaultPlan.from_spec("raise@1,1x9")
        with pytest.raises(CellExecutionError):
            _run(
                core2duo_10cm, workers=2, journal=journal,
                max_retries=0, fault_plan=plan,
            )
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        cells = {(r["i"], r["j"]) for r in records if r["kind"] == "cell"}
        assert (1, 1) not in cells
        assert cells  # at least one completed cell was checkpointed


# ----------------------------------------------------------------------
# Injected hangs and the cell timeout budget
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(300)
class TestHangFaults:
    def test_pool_timeout_abandons_and_retries_the_hung_cell(
        self, core2duo_10cm, clean
    ):
        plan = FaultPlan.from_spec("hang@0,1:1.5")
        matrix = _run(
            core2duo_10cm, workers=2, cell_timeout_s=0.4, fault_plan=plan
        )
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["timeouts"] == 1
        assert execution["retries"] == 1
        assert execution["faults_injected"] == {"hang": 1}

    def test_short_hang_within_budget_is_not_a_timeout(self, core2duo_10cm, clean):
        plan = FaultPlan.from_spec("hang@0,0:0.1")
        matrix = _run(
            core2duo_10cm, workers=2, cell_timeout_s=30.0, fault_plan=plan
        )
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["timeouts"] == 0
        assert execution["retries"] == 0

    def test_serial_overrun_is_discarded_and_retried(self, core2duo_10cm, clean):
        # A serial in-process cell cannot be killed, so the hang runs to
        # completion — but once it returns, the overrun attempt counts
        # one timeout, its result is discarded, and the retry (replaying
        # the original seed) produces the cell: the same counters the
        # pool path records for an abandoned hung attempt.
        plan = FaultPlan.from_spec("hang@0,1:0.5")
        matrix = _run(core2duo_10cm, cell_timeout_s=0.2, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["timeouts"] == 1
        assert execution["retries"] == 1

    def test_overrun_then_success_matches_across_modes(
        self, core2duo_10cm, clean, tmp_path
    ):
        # The satellite regression: a cell that overruns its budget once
        # and then succeeds must leave identical timeout/retry counters,
        # identical journal contents, and bit-identical samples whether
        # the campaign ran serially or under the process pool.
        plan_spec = "hang@0,1:1.2"
        outcomes = {}
        for label, workers in (("serial", 0), ("pool", 2)):
            journal = tmp_path / f"journal_{label}.jsonl"
            matrix = _run(
                core2duo_10cm,
                workers=workers,
                cell_timeout_s=0.4,
                journal=journal,
                fault_plan=FaultPlan.from_spec(plan_spec),
            )
            execution = _execution(matrix)
            records = [
                json.loads(line) for line in journal.read_text().splitlines()
            ]
            journaled_cells = sorted(
                (r["i"], r["j"]) for r in records if r["kind"] == "cell"
            )
            assert np.array_equal(matrix.samples_zj, clean.samples_zj)
            outcomes[label] = {
                "timeouts": execution["timeouts"],
                "retries": execution["retries"],
                "cells_simulated": execution["cells_simulated"],
                "faults_injected": execution["faults_injected"],
                "journaled_cells": journaled_cells,
            }
        assert outcomes["serial"] == outcomes["pool"]
        assert outcomes["serial"]["timeouts"] == 1
        assert outcomes["serial"]["retries"] == 1

    def test_serial_overrun_exhausting_retries_fails_like_the_pool(
        self, core2duo_10cm
    ):
        plan = FaultPlan.from_spec("hang@0,1:0.5x9")
        with pytest.raises(CellExecutionError) as excinfo:
            _run(
                core2duo_10cm, cell_timeout_s=0.2, max_retries=1,
                fault_plan=plan,
            )
        assert excinfo.value.pair == "ADD/SUB"
        assert excinfo.value.attempts == 2
        assert "exceeded the 0.2 s budget" in str(excinfo.value)

    def test_hang_on_every_attempt_exhausts_the_budget(self, core2duo_10cm):
        plan = FaultPlan.from_spec("hang@0,1:5x9")
        with pytest.raises(CellExecutionError) as excinfo:
            _run(
                core2duo_10cm, workers=2, cell_timeout_s=0.3,
                max_retries=1, fault_plan=plan,
            )
        assert excinfo.value.pair == "ADD/SUB"
        assert excinfo.value.attempts == 2


# ----------------------------------------------------------------------
# Injected cache corruption and the quarantine
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCorruptFaults:
    def test_warm_entry_is_quarantined_and_recomputed(
        self, core2duo_10cm, clean, tmp_path
    ):
        _run(core2duo_10cm, cache_dir=tmp_path)  # warm the cache
        plan = FaultPlan.from_spec("corrupt@0,1")
        matrix = _run(core2duo_10cm, cache_dir=tmp_path, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["quarantined"] == 1
        assert execution["cache_hits"] == CELLS - 1
        assert execution["cache_misses"] == 1
        assert execution["faults_injected"] == {"corrupt": 1}

    def test_quarantined_entry_is_preserved_not_deleted(
        self, core2duo_10cm, tmp_path
    ):
        from repro.core.faults import CORRUPT_PAYLOAD

        _run(core2duo_10cm, cache_dir=tmp_path)
        plan = FaultPlan.from_spec("corrupt@1,1")
        _run(core2duo_10cm, cache_dir=tmp_path, fault_plan=plan)
        quarantine = tmp_path / "quarantine"
        entries = list(quarantine.iterdir())
        assert len(entries) == 1
        assert entries[0].name.endswith("cell_001_001.npz")
        assert entries[0].read_bytes() == CORRUPT_PAYLOAD

    def test_cold_corruption_still_converges(self, core2duo_10cm, clean, tmp_path):
        # No warm entry exists yet: the fault plants garbage where the
        # entry would live, which the loader must quarantine before the
        # cell simulates.
        plan = FaultPlan.from_spec("corrupt@1,0")
        matrix = _run(core2duo_10cm, cache_dir=tmp_path, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["quarantined"] == 1
        assert execution["cells_simulated"] == CELLS

    def test_corrupt_fault_without_cache_is_inert(self, core2duo_10cm, clean):
        plan = FaultPlan.from_spec("corrupt@0,0")
        matrix = _run(core2duo_10cm, fault_plan=plan)
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["faults_injected"] == {}
        assert execution["quarantined"] == 0


# ----------------------------------------------------------------------
# All three fault kinds in one campaign (the acceptance scenario)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(300)
class TestCombinedFaultPlan:
    def test_campaign_survives_raise_hang_and_corruption(
        self, core2duo_10cm, clean, tmp_path
    ):
        # Cold cache: the corrupt fault plants garbage where an entry
        # would live (quarantined before simulating), while the raise
        # and hang faults hit their cells' first worker attempts.
        plan = FaultPlan.from_spec("raise@0,0;hang@0,1:1.5;corrupt@1,0")
        matrix = _run(
            core2duo_10cm,
            cache_dir=tmp_path,
            workers=2,
            cell_timeout_s=0.4,
            max_retries=2,
            fault_plan=plan,
        )
        execution = _execution(matrix)
        assert np.array_equal(matrix.samples_zj, clean.samples_zj)
        assert execution["quarantined"] == 1
        assert execution["timeouts"] == 1
        # One retry for the raise, one for the timed-out hang.
        assert execution["retries"] == 2
        assert execution["cells_simulated"] == CELLS
        assert execution["faults_injected"] == {
            "raise": 1, "hang": 1, "corrupt": 1,
        }
