"""Unit tests for SavatMatrix statistics and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError

EVENTS = ("ADD", "MUL", "LDM")


def _matrix(samples=None, repetitions=3) -> SavatMatrix:
    if samples is None:
        rng = np.random.default_rng(0)
        base = np.array([[0.6, 0.8, 4.0], [0.9, 0.7, 4.5], [4.1, 4.4, 1.8]])
        samples = base[:, :, None] * rng.normal(1.0, 0.05, size=(3, 3, repetitions))
    return SavatMatrix(EVENTS, samples, machine="core2duo", distance_m=0.10)


class TestConstruction:
    def test_2d_input_promoted(self):
        matrix = SavatMatrix(EVENTS, np.ones((3, 3)), "m", 0.1)
        assert matrix.repetitions == 1

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            SavatMatrix(EVENTS, np.ones((2, 3, 4)), "m", 0.1)

    def test_event_index(self):
        matrix = _matrix()
        assert matrix.index("MUL") == 1
        assert matrix.index("mul") == 1

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError):
            _matrix().index("DIV")


class TestStatistics:
    def test_mean_and_std_shapes(self):
        matrix = _matrix()
        assert matrix.mean().shape == (3, 3)
        assert matrix.std().shape == (3, 3)

    def test_std_zero_for_single_repetition(self):
        matrix = SavatMatrix(EVENTS, np.ones((3, 3)), "m", 0.1)
        assert np.all(matrix.std() == 0)

    def test_cell(self):
        matrix = _matrix()
        assert matrix.cell("ADD", "LDM") == pytest.approx(
            matrix.mean()[0, 2]
        )

    def test_cell_samples_length(self):
        assert len(_matrix(repetitions=5).cell_samples("ADD", "MUL")) == 5

    def test_std_over_mean_tracks_injected_noise(self):
        rng = np.random.default_rng(1)
        base = np.full((3, 3), 2.0)
        samples = base[:, :, None] * rng.normal(1.0, 0.05, size=(3, 3, 200))
        matrix = SavatMatrix(EVENTS, samples, "m", 0.1)
        assert matrix.std_over_mean() == pytest.approx(0.05, rel=0.15)

    def test_diagonal(self):
        matrix = SavatMatrix(EVENTS, np.diag([1.0, 2.0, 3.0]) + 5.0, "m", 0.1)
        assert list(matrix.diagonal()) == [6.0, 7.0, 8.0]

    def test_diagonal_minimality_counts(self):
        values = np.array([[0.1, 1.0, 1.0], [1.0, 0.1, 1.0], [1.0, 1.0, 5.0]])
        matrix = SavatMatrix(EVENTS, values, "m", 0.1)
        rows, columns = matrix.diagonal_minimality()
        assert rows == 2
        assert columns == 2

    def test_asymmetry_zero_for_symmetric(self):
        values = np.array([[1.0, 2.0, 3.0], [2.0, 1.0, 4.0], [3.0, 4.0, 1.0]])
        matrix = SavatMatrix(EVENTS, values, "m", 0.1)
        assert matrix.asymmetry() == pytest.approx(0.0)

    def test_asymmetry_detects_order_effects(self):
        values = np.array([[1.0, 2.0, 3.0], [4.0, 1.0, 4.0], [3.0, 4.0, 1.0]])
        matrix = SavatMatrix(EVENTS, values, "m", 0.1)
        assert matrix.asymmetry() > 0.2

    def test_symmetrized(self):
        matrix = _matrix()
        symmetric = matrix.symmetrized()
        assert np.allclose(symmetric, symmetric.T)


class TestShapeAgreement:
    def test_perfect_agreement(self):
        matrix = SavatMatrix(
            EVENTS, np.array([[1.0, 2.0, 3.0], [2.0, 1.0, 4.0], [3.0, 4.0, 1.0]]), "m", 0.1
        )
        stats = matrix.shape_agreement(matrix.mean())
        assert stats["pearson"] == pytest.approx(1.0)
        assert stats["spearman"] == pytest.approx(1.0)
        assert stats["mean_relative_error"] == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            _matrix().shape_agreement(np.ones((4, 4)))


class TestSerialization:
    def test_json_roundtrip(self):
        matrix = _matrix()
        matrix.metadata["seed"] = 7
        rebuilt = SavatMatrix.from_json(matrix.to_json())
        assert rebuilt.events == matrix.events
        assert rebuilt.machine == matrix.machine
        assert rebuilt.metadata["seed"] == 7
        assert np.allclose(rebuilt.samples_zj, matrix.samples_zj)

    def test_csv_contains_events_and_values(self):
        text = _matrix().to_csv()
        assert text.splitlines()[0] == ",ADD,MUL,LDM"
        assert "LDM," in text


@given(
    scale=st.floats(min_value=0.5, max_value=10.0),
    repetitions=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_mean_invariant_under_scaling(scale, repetitions):
    """Property: scaling all samples scales the mean linearly and leaves
    std/mean unchanged."""
    rng = np.random.default_rng(42)
    samples = rng.uniform(0.5, 5.0, size=(3, 3, repetitions))
    matrix = SavatMatrix(EVENTS, samples, "m", 0.1)
    scaled = SavatMatrix(EVENTS, samples * scale, "m", 0.1)
    assert np.allclose(scaled.mean(), matrix.mean() * scale)
    assert scaled.std_over_mean() == pytest.approx(matrix.std_over_mean(), rel=1e-9)
