"""Tests for the campaign runner (small event subsets for speed)."""

import numpy as np
import pytest

from repro.core.campaign import run_campaign, selected_pairings_means
from repro.core.matrix import SavatMatrix
from repro.core.savat import MeasurementConfig


@pytest.mark.slow
class TestRunCampaign:
    @pytest.fixture(scope="class")
    def small_campaign(self, core2duo_10cm):
        return run_campaign(
            core2duo_10cm,
            events=("ADD", "MUL", "LDL2"),
            repetitions=3,
            seed=11,
        )

    def test_shape(self, small_campaign):
        assert small_campaign.samples_zj.shape == (3, 3, 3)

    def test_events_preserved(self, small_campaign):
        assert small_campaign.events == ("ADD", "MUL", "LDL2")

    def test_metadata_recorded(self, small_campaign):
        assert small_campaign.metadata["repetitions"] == 3
        assert small_campaign.metadata["alternation_frequency_hz"] == pytest.approx(80e3)

    def test_all_cells_positive(self, small_campaign):
        assert np.all(small_campaign.samples_zj > 0)

    def test_diagonal_below_offdiagonal_for_strong_pairs(self, small_campaign):
        assert small_campaign.cell("ADD", "LDL2") > small_campaign.cell("ADD", "ADD")

    def test_seeded_campaigns_reproducible(self, core2duo_10cm, small_campaign):
        again = run_campaign(
            core2duo_10cm,
            events=("ADD", "MUL", "LDL2"),
            repetitions=3,
            seed=11,
        )
        assert np.allclose(again.samples_zj, small_campaign.samples_zj)

    def test_progress_callback_counts_cells(self, core2duo_10cm):
        calls = []
        run_campaign(
            core2duo_10cm,
            events=("ADD", "SUB"),
            repetitions=1,
            progress=lambda a, b, done, total: calls.append((a, b, done, total)),
        )
        assert len(calls) == 4
        assert calls[-1][2:] == (4, 4)


class TestSelectedPairings:
    def test_rows_formatted(self):
        matrix = SavatMatrix(
            ("ADD", "LDM"), np.array([[0.6, 4.2], [4.1, 1.8]]), "m", 0.1
        )
        rows = selected_pairings_means(matrix, [("ADD", "LDM"), ("ADD", "ADD")])
        assert rows[0] == ("ADD/LDM", pytest.approx(4.2))
        assert rows[1][0] == "ADD/ADD"
