"""Tests for the Section VII branch-prediction events (BRH/BRM)."""

import pytest

from repro.codegen.microarch import (
    BRH,
    BRM,
    build_microarch_half,
    get_microarch_event,
    lfsr_update_instructions,
)
from repro.codegen.pointers import SweepPlan
from repro.core.microarch_events import measure_microarch_savat
from repro.errors import ConfigurationError, MeasurementError
from repro.isa.instructions import Opcode


class TestEventDefinitions:
    def test_lfsr_update_is_pure_alu(self):
        opcodes = {i.opcode for i in lfsr_update_instructions()}
        assert opcodes <= {Opcode.MOV, Opcode.SHL, Opcode.SHR, Opcode.XOR}

    def test_brh_and_brm_slots_share_shape(self):
        slot_h = BRH.slot_builder("a")
        slot_m = BRM.slot_builder("a")
        assert [i.opcode for i in slot_h] == [i.opcode for i in slot_m]
        # Only the tested bit differs.
        assert slot_h[0].src.value != slot_m[0].src.value

    def test_standard_events_wrap(self):
        event = get_microarch_event("ADD")
        slot = event.slot_builder("a")
        assert len(slot) == 1
        assert slot[0].opcode is Opcode.ADD

    def test_memory_events_rejected(self):
        with pytest.raises(ConfigurationError, match="memory event"):
            get_microarch_event("LDM")

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError):
            get_microarch_event("BTB")

    def test_half_structure(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        half = build_microarch_half(BRM, 8, plan, "esi", "a")
        # mov ecx + 6 pointer update + 9 lfsr + 3 slot + dec + jnz
        assert len(half) == 1 + 6 + 9 + 3 + 2

    def test_halves_identical_outside_slot(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        brh = [str(i) for i in build_microarch_half(BRH, 4, plan, "esi", "a") if i.role != "test"]
        brm = [str(i) for i in build_microarch_half(BRM, 4, plan, "esi", "a") if i.role != "test"]
        assert brh == brm

    def test_zero_count_rejected(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        with pytest.raises(ConfigurationError):
            build_microarch_half(BRH, 0, plan, "esi", "a")


@pytest.mark.slow
class TestBranchEventSavat:
    def test_same_event_is_silent(self, core2duo_10cm):
        for name in ("BRH", "BRM"):
            result = measure_microarch_savat(core2duo_10cm, name, name)
            assert result.savat_zj < 0.05

    def test_brm_mispredicts_brh_does_not(self, core2duo_10cm):
        hit = measure_microarch_savat(core2duo_10cm, "BRH", "BRH")
        miss = measure_microarch_savat(core2duo_10cm, "BRM", "BRM")
        assert hit.misprediction_rate < 0.02
        assert 0.15 < miss.misprediction_rate < 0.35  # ~50% of slot branches

    def test_branch_hit_vs_miss_is_distinguishable(self, core2duo_10cm):
        """Section VII's hypothesis: branch mispredictions have
        measurable SAVAT."""
        pair = measure_microarch_savat(core2duo_10cm, "BRH", "BRM")
        floor = measure_microarch_savat(core2duo_10cm, "BRH", "BRH")
        assert pair.savat_zj > 10 * max(floor.savat_zj, 0.01)

    def test_frequency_achieved(self, core2duo_10cm):
        result = measure_microarch_savat(core2duo_10cm, "BRH", "BRM")
        assert result.achieved_frequency_hz == pytest.approx(80e3, rel=0.06)

    def test_invalid_frequency_rejected(self, core2duo_10cm):
        with pytest.raises(MeasurementError):
            measure_microarch_savat(
                core2duo_10cm, "BRH", "BRM", alternation_frequency_hz=0
            )

    def test_str(self, core2duo_10cm):
        result = measure_microarch_savat(core2duo_10cm, "ADD", "BRM")
        assert "SAVAT(ADD/BRM)" in str(result)
