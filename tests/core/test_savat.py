"""Tests for the pairwise SAVAT measurement pipeline."""

import numpy as np
import pytest

from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    measure_savat,
    simulate_alternation_period,
)
from repro.errors import ConfigurationError
from repro.isa.events import get_event
from repro.machines.reference_data import CORE2DUO_10CM


class TestMeasurementConfig:
    def test_paper_defaults(self):
        config = MeasurementConfig()
        assert config.alternation_frequency_hz == pytest.approx(80e3)
        assert config.band_half_width_hz == pytest.approx(1e3)
        assert config.rbw_hz == pytest.approx(1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(method="guesswork")

    def test_with_method(self):
        config = MeasurementConfig().with_method("full")
        assert config.method == "full"

    def test_synthesis_alias_normalizes_to_full(self):
        config = MeasurementConfig().with_method("synthesis")
        assert config.method == "full"

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(alternation_frequency_hz=0.0)

    def test_negative_duration_rejected_regardless_of_rbw(self):
        # Regression: the old check compared duration (s) against RBW
        # (Hz) and let a negative duration through whenever the RBW was
        # numerically smaller.
        with pytest.raises(ConfigurationError):
            MeasurementConfig(duration_s=-1.0, rbw_hz=-2.0)
        with pytest.raises(ConfigurationError):
            MeasurementConfig(duration_s=-1.0)
        with pytest.raises(ConfigurationError):
            MeasurementConfig(duration_s=0.0)

    def test_non_positive_rbw_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(rbw_hz=0.0)
        with pytest.raises(ConfigurationError):
            MeasurementConfig(rbw_hz=-1.0)


@pytest.mark.slow
class TestMeasureSavat:
    def test_deterministic_without_rng(self, core2duo_10cm):
        first = measure_savat(core2duo_10cm, "ADD", "MUL")
        second = measure_savat(core2duo_10cm, "ADD", "MUL")
        assert first.savat_zj == pytest.approx(second.savat_zj)

    def test_event_names_accepted(self, core2duo_10cm):
        result = measure_savat(core2duo_10cm, "add", get_event("LDL1"))
        assert result.event_a == "ADD"
        assert result.event_b == "LDL1"

    def test_diagonal_reproduces_reference_floor(self, core2duo_10cm):
        result = measure_savat(core2duo_10cm, "ADD", "ADD")
        assert result.savat_zj == pytest.approx(CORE2DUO_10CM.cell("ADD", "ADD"), rel=0.2)

    def test_high_savat_pair_tracks_reference(self, core2duo_10cm):
        result = measure_savat(core2duo_10cm, "STL2", "DIV")
        assert result.savat_zj == pytest.approx(CORE2DUO_10CM.cell("STL2", "DIV"), rel=0.4)

    def test_achieved_frequency_near_target(self, core2duo_10cm):
        for pair in (("ADD", "SUB"), ("LDM", "STM"), ("STL2", "STM")):
            result = measure_savat(core2duo_10cm, *pair)
            assert result.achieved_frequency_hz == pytest.approx(80e3, rel=0.03)

    def test_rng_repetitions_vary_about_five_percent(self, core2duo_10cm, rng):
        config = MeasurementConfig()
        plan = _plan_pair(core2duo_10cm, get_event("ADD"), get_event("LDL2"), 80e3)
        trace, plan = simulate_alternation_period(core2duo_10cm, plan)
        samples = np.array(
            [
                measure_savat(
                    core2duo_10cm, "ADD", "LDL2", config, rng=rng, trace=trace, plan=plan
                ).savat_zj
                for _ in range(40)
            ]
        )
        ratio = samples.std() / samples.mean()
        assert 0.02 < ratio < 0.12  # the paper reports ~0.05

    def test_pairs_per_second_consistent(self, core2duo_10cm):
        result = measure_savat(core2duo_10cm, "ADD", "MUL")
        expected = result.plan.spec.inst_loop_count * result.achieved_frequency_hz
        assert result.pairs_per_second == pytest.approx(expected)

    def test_str(self, core2duo_10cm):
        text = str(measure_savat(core2duo_10cm, "ADD", "MUL"))
        assert "SAVAT(ADD/MUL)" in text
        assert "zJ" in text


@pytest.mark.slow
class TestSynthesisMethod:
    def test_synthesis_agrees_with_analytic(self, core2duo_10cm):
        """The two measurement paths are independent implementations of
        the same physics; they must agree on a strong pair."""
        analytic = measure_savat(core2duo_10cm, "ADD", "LDL2")
        config = MeasurementConfig(method="synthesis", duration_s=0.25, rbw_hz=8.0)
        synthesis = measure_savat(core2duo_10cm, "ADD", "LDL2", config)
        assert synthesis.savat_zj == pytest.approx(analytic.savat_zj, rel=0.25)

    def test_synthesis_returns_spectrum(self, core2duo_10cm):
        config = MeasurementConfig(method="synthesis", duration_s=0.1, rbw_hz=20.0)
        result = measure_savat(core2duo_10cm, "ADD", "LDM", config)
        assert result.spectrum is not None
        peak = result.spectrum.peak_hz(75e3, 85e3)
        assert peak == pytest.approx(result.achieved_frequency_hz, rel=0.02)


@pytest.mark.slow
class TestSteadyStateEffects:
    def test_stl2_with_stm_partner_stays_on_frequency(self, core2duo_10cm):
        """Pair-context cache interference (the STM sweep evicting the
        STL2 array from L2) must be handled by the frequency re-tuning."""
        result = measure_savat(core2duo_10cm, "STL2", "STM")
        assert result.achieved_frequency_hz == pytest.approx(80e3, rel=0.03)

    def test_order_is_nearly_symmetric(self, core2duo_10cm):
        forward = measure_savat(core2duo_10cm, "ADD", "LDL2")
        backward = measure_savat(core2duo_10cm, "LDL2", "ADD")
        assert forward.savat_zj == pytest.approx(backward.savat_zj, rel=0.15)
