"""Regression tests: parallel execution is bit-identical to serial.

The executor's contract is that the per-cell seed schedule — not the
execution order — determines every noise draw, so fanning a campaign
out across worker processes must reproduce the serial samples bit for
bit, and the same seed must always yield the same matrix.
"""

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.executor import cell_seed, execute_campaign, spawn_cell_seeds
from repro.core.savat import MeasurementConfig
from repro.errors import ConfigurationError
from repro.isa.events import get_event

#: A fast config for executor tests: a 10x higher alternation frequency
#: shrinks the simulated period 10x without changing the code paths.
FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB", "MUL", "NOI")


class TestSeedSchedule:
    def test_schedule_is_deterministic(self):
        first = spawn_cell_seeds(7, 4)
        second = spawn_cell_seeds(7, 4)
        assert len(first) == 16
        for a, b in zip(first, second):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key

    def test_cells_draw_distinct_streams(self):
        seeds = spawn_cell_seeds(0, 3)
        draws = {
            float(np.random.default_rng(seq).normal()) for seq in seeds
        }
        assert len(draws) == 9

    def test_cell_seed_matches_schedule_entry(self):
        seeds = spawn_cell_seeds(42, 4)
        entry = cell_seed(42, 4, 2, 3)
        assert entry.spawn_key == seeds[2 * 4 + 3].spawn_key

    def test_cell_seed_rejects_out_of_range_cells(self):
        with pytest.raises(ConfigurationError):
            cell_seed(0, 3, 3, 0)
        with pytest.raises(ConfigurationError):
            cell_seed(0, 3, 0, -1)


@pytest.mark.slow
class TestParallelMatchesSerial:
    @pytest.fixture(scope="class")
    def serial(self, core2duo_10cm):
        return run_campaign(
            core2duo_10cm,
            events=EVENTS,
            repetitions=2,
            seed=5,
            config=FAST_CONFIG,
        )

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_parallel_is_bit_identical(self, core2duo_10cm, serial, workers):
        parallel = run_campaign(
            core2duo_10cm,
            events=EVENTS,
            repetitions=2,
            seed=5,
            config=FAST_CONFIG,
            workers=workers,
        )
        assert np.array_equal(parallel.samples_zj, serial.samples_zj)
        assert parallel.events == serial.events

    def test_same_seed_reproduces_exactly(self, core2duo_10cm, serial):
        again = run_campaign(
            core2duo_10cm,
            events=EVENTS,
            repetitions=2,
            seed=5,
            config=FAST_CONFIG,
        )
        assert np.array_equal(again.samples_zj, serial.samples_zj)

    def test_different_seed_differs(self, core2duo_10cm, serial):
        other = run_campaign(
            core2duo_10cm,
            events=EVENTS,
            repetitions=2,
            seed=6,
            config=FAST_CONFIG,
        )
        assert not np.array_equal(other.samples_zj, serial.samples_zj)

    def test_execution_metadata_recorded(self, core2duo_10cm):
        matrix = run_campaign(
            core2duo_10cm,
            events=("ADD", "SUB"),
            repetitions=1,
            seed=5,
            config=FAST_CONFIG,
            workers=2,
        )
        execution = matrix.metadata["execution"]
        assert execution["workers"] == 2
        assert execution["cells_simulated"] == 4
        assert execution["cache_hits"] == 0
        assert execution["cache_misses"] == 0
        assert set(execution["cell_seconds"]) == {
            "ADD/ADD", "ADD/SUB", "SUB/ADD", "SUB/SUB"
        }
        assert all(t >= 0 for t in execution["cell_seconds"].values())
        assert execution["wall_seconds"] > 0

    def test_parallel_progress_reports_every_cell(self, core2duo_10cm):
        calls = []
        run_campaign(
            core2duo_10cm,
            events=("ADD", "SUB"),
            repetitions=1,
            seed=5,
            config=FAST_CONFIG,
            workers=2,
            progress=lambda a, b, done, total: calls.append((a, b, done, total)),
        )
        assert len(calls) == 4
        assert [call[2] for call in calls] == [1, 2, 3, 4]
        assert {call[:2] for call in calls} == {
            ("ADD", "ADD"), ("ADD", "SUB"), ("SUB", "ADD"), ("SUB", "SUB")
        }


class TestExecuteCampaignValidation:
    def test_rejects_empty_event_list(self, core2duo_10cm):
        with pytest.raises(ConfigurationError):
            execute_campaign(core2duo_10cm, [], repetitions=1)

    def test_rejects_zero_repetitions(self, core2duo_10cm):
        with pytest.raises(ConfigurationError):
            execute_campaign(core2duo_10cm, [get_event("ADD")], repetitions=0)
