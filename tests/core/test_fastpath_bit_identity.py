"""Bit-identity of the vectorized fast path against the reference path.

The fast path (NumPy sweep priming, steady-state loop replay, and
array-backed activity recording) is only allowed to exist because it is
*indistinguishable* from the scalar reference implementation: same
activity trace bytes, same cache contents and counters, same predictor
history, same statistics.  These tests prove that property over every
ordered pair of the paper's eleven events (at reduced loop counts so the
exhaustive sweep stays fast) and over full-sized measurements for a few
representative pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.alternation import build_alternation_program, plan_alternation
from repro.core import savat
from repro.core.savat import clear_cpi_cache, measure_savat
from repro.isa.events import EVENT_ORDER, get_event
from repro.machines.calibrated import load_calibrated_machine
from repro.uarch.fastpath import use_fast_path, use_reference_path


@pytest.fixture
def small_priming(monkeypatch):
    """Cap warm-up replay so the exhaustive pair sweep stays quick."""
    monkeypatch.setattr(savat, "MAX_PRIME_PERIODS", 64)


@pytest.fixture(scope="module")
def machines():
    return {
        name: load_calibrated_machine(name, 0.10)
        for name in ("core2duo", "pentium3m", "turionx2")
    }


def _hierarchy_digest(hierarchy):
    """Complete cache-hierarchy state: lines in LRU order plus counters."""

    def cache_digest(cache):
        return (
            tuple(
                tuple((line.tag, line.dirty) for line in cache_set)
                for cache_set in cache._sets
            ),
            vars(cache.stats).copy(),
        )

    return (
        cache_digest(hierarchy.l1),
        cache_digest(hierarchy.l2),
        hierarchy.offchip_accesses,
    )


def _stats_digest(stats):
    return (
        stats.instructions,
        stats.cycles,
        stats.test_instructions,
        dict(stats.opcode_counts),
        dict(stats.level_counts),
    )


def _run_pair(machine, name_a, name_b, inst_loop_count):
    """Prime, warm-up, and measure one alternation period; return state."""
    spec = plan_alternation(
        get_event(name_a),
        get_event(name_b),
        machine.spec.l1_geometry,
        machine.spec.l2_geometry,
        inst_loop_count,
    )
    core = machine.make_core()
    program = build_alternation_program(spec)
    pointer_a, pointer_b = savat.prime_alternation_steady_state(core, spec)
    registers = spec.initial_registers()
    registers["esi"] = pointer_a
    registers["edi"] = pointer_b
    for name, value in registers.items():
        core.registers[name] = value
    warmup = core.run(program, warm_hierarchy=True)
    measured = core.run(program, warm_hierarchy=True)
    return {
        "pointers": (pointer_a, pointer_b),
        "warmup_data": warmup.trace.data,
        "data": measured.trace.data,
        "registers": dict(core.registers),
        "zero_flag": core.zero_flag,
        "memory": dict(core.memory),
        "hierarchy": _hierarchy_digest(core.hierarchy),
        "predictor": (
            core.predictor.stats.predictions,
            core.predictor.stats.mispredictions,
            dict(core.predictor._counters),
        ),
        "stats": (_stats_digest(warmup.stats), _stats_digest(measured.stats)),
    }


def _assert_identical(fast, reference, context):
    assert fast["pointers"] == reference["pointers"], context
    assert np.array_equal(fast["warmup_data"], reference["warmup_data"]), context
    assert np.array_equal(fast["data"], reference["data"]), context
    for key in ("registers", "zero_flag", "memory", "hierarchy", "predictor", "stats"):
        assert fast[key] == reference[key], f"{context}: {key} differs"


@pytest.mark.parametrize("name_a", EVENT_ORDER)
@pytest.mark.parametrize("name_b", EVENT_ORDER)
def test_all_pairs_bit_identical_on_core2duo(machines, small_priming, name_a, name_b):
    """Every ordered event pair: trace bytes and all state identical."""
    machine = machines["core2duo"]
    with use_fast_path():
        fast = _run_pair(machine, name_a, name_b, inst_loop_count=6)
    with use_reference_path():
        reference = _run_pair(machine, name_a, name_b, inst_loop_count=6)
    _assert_identical(fast, reference, f"{name_a}/{name_b}")


@pytest.mark.parametrize("machine_name", ("pentium3m", "turionx2"))
def test_event_ring_bit_identical_on_other_machines(machines, small_priming, machine_name):
    """A ring of adjacent event pairs, both orders, on the other machines."""
    machine = machines[machine_name]
    names = list(EVENT_ORDER)
    for index, name_a in enumerate(names):
        name_b = names[(index + 1) % len(names)]
        for pair in ((name_a, name_b), (name_b, name_a)):
            with use_fast_path():
                fast = _run_pair(machine, *pair, inst_loop_count=5)
            with use_reference_path():
                reference = _run_pair(machine, *pair, inst_loop_count=5)
            _assert_identical(fast, reference, f"{machine_name} {pair}")


@pytest.mark.slow
@pytest.mark.parametrize("pair", (("ADD", "SUB"), ("LDM", "STM"), ("STL2", "DIV")))
def test_full_measurement_fields_identical(pair):
    """Full-size measure_savat: every numeric result field is bit-equal."""
    machine = load_calibrated_machine("core2duo", 0.10)
    clear_cpi_cache()
    with use_fast_path():
        fast = measure_savat(machine, *pair)
    clear_cpi_cache()
    with use_reference_path():
        reference = measure_savat(machine, *pair)
    for field in (
        "savat_zj",
        "signal_band_power_w",
        "noise_band_power_w",
        "pairs_per_second",
        "achieved_frequency_hz",
    ):
        assert getattr(fast, field) == getattr(reference, field), field
    assert fast.plan.spec.inst_loop_count == reference.plan.spec.inst_loop_count
    assert fast.plan.cycles_per_iteration_a == reference.plan.cycles_per_iteration_a
    assert fast.plan.cycles_per_iteration_b == reference.plan.cycles_per_iteration_b
