"""Tests for quiet-frequency selection."""

import pytest

from repro.core.frequency_selection import (
    recommend_frequency,
    survey_band_noise,
)
from repro.em.environment import NoiseEnvironment, RadioInterferer
from repro.errors import MeasurementError


def _environment_with_interferer(frequency_hz: float) -> NoiseEnvironment:
    return NoiseEnvironment(
        instrument_floor_w_per_hz=6e-18,
        include_thermal=False,
        interferers=(RadioInterferer(frequency_hz, 5e-14, 100.0),),
    )


class TestSurvey:
    def test_flat_environment_uniform(self):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        surveyed = survey_band_noise(environment, [50e3, 80e3, 120e3])
        values = set(surveyed.values())
        assert len(values) == 1

    def test_interferer_raises_its_band(self):
        environment = _environment_with_interferer(80e3)
        surveyed = survey_band_noise(environment, [60e3, 80e3, 100e3])
        assert surveyed[80e3] > 2 * surveyed[60e3]

    def test_empty_candidates_rejected(self):
        with pytest.raises(MeasurementError):
            survey_band_noise(NoiseEnvironment(), [])

    def test_candidates_must_exceed_band(self):
        with pytest.raises(MeasurementError):
            survey_band_noise(NoiseEnvironment(), [500.0], band_half_width_hz=1e3)


class TestRecommendation:
    def test_avoids_the_interferer(self):
        environment = _environment_with_interferer(80e3)
        recommendation = recommend_frequency(environment, 40e3, 120e3, 5e3)
        assert abs(recommendation.frequency_hz - 80e3) > 1e3

    def test_flat_environment_prefers_lowest(self):
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18, include_thermal=False
        )
        recommendation = recommend_frequency(environment, 40e3, 120e3, 10e3)
        assert recommendation.frequency_hz == pytest.approx(40e3)

    def test_survey_recorded(self):
        recommendation = recommend_frequency(NoiseEnvironment(), 40e3, 60e3, 10e3)
        assert len(recommendation.surveyed) == 3

    def test_invalid_range_rejected(self):
        with pytest.raises(MeasurementError):
            recommend_frequency(NoiseEnvironment(), 100e3, 50e3)
        with pytest.raises(MeasurementError):
            recommend_frequency(NoiseEnvironment(), 40e3, 80e3, step_hz=0)

    def test_str(self):
        recommendation = recommend_frequency(NoiseEnvironment(), 40e3, 60e3, 10e3)
        assert "recommend" in str(recommendation)

    def test_quiet_lab_80khz_is_sound(self):
        """The paper's 80 kHz choice lands away from the lab's one
        interferer once the band is considered."""
        from repro.em.environment import quiet_lab_environment

        environment = quiet_lab_environment()
        surveyed = survey_band_noise(environment, [80e3, 81.45e3])
        assert surveyed[80e3] < surveyed[81.45e3]
