"""Tests for the shared-pool study runner.

A study is only allowed to remove *redundant* work: every campaign in
the grid must produce bit-identical samples to a standalone
``run_campaign`` with the same arguments, whether the study runs
serially or over the shared worker pool, and the second and later
distances of a machine must be served entirely from the shared
kernel-trace cache.
"""

import numpy as np
import pytest

from repro.core.campaign import run_campaign
from repro.core.savat import MeasurementConfig
from repro.core.study import StudyResult, run_study
from repro.core.trace_cache import TraceCache
from repro.errors import ConfigurationError
from repro.machines.calibrated import load_calibrated_machine

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2
DISTANCES = (0.10, 0.50)


def _study(**overrides) -> StudyResult:
    parameters = dict(
        machines=["core2duo"],
        distances_m=DISTANCES,
        events=EVENTS,
        config=FAST_CONFIG,
        repetitions=REPETITIONS,
        seed=SEED,
    )
    parameters.update(overrides)
    return run_study(**parameters)


@pytest.mark.slow
class TestStudySamples:
    @pytest.fixture(scope="class")
    def serial_study(self):
        return _study()

    def test_matches_standalone_campaigns_bit_for_bit(self, serial_study):
        for distance in DISTANCES:
            machine = load_calibrated_machine("core2duo", distance)
            standalone = run_campaign(
                machine,
                config=FAST_CONFIG,
                events=EVENTS,
                repetitions=REPETITIONS,
                seed=SEED,
                trace_cache=False,
            )
            matrix = serial_study.matrix_for("core2duo", distance)
            assert np.array_equal(standalone.samples_zj, matrix.samples_zj)

    def test_second_distance_skips_trace_production(self, serial_study):
        cells = len(EVENTS) ** 2
        first, second = (
            matrix.metadata["execution"]["trace_cache"]
            for matrix in serial_study.matrices
        )
        assert first["misses"] == cells
        assert second["misses"] == 0
        assert second["memory_hits"] + second["disk_hits"] == cells

    def test_pool_study_equals_serial_study(self, serial_study):
        pooled = _study(workers=2)
        for serial_matrix, pooled_matrix in zip(
            serial_study.matrices, pooled.matrices
        ):
            assert np.array_equal(
                serial_matrix.samples_zj, pooled_matrix.samples_zj
            )
        second = pooled.matrices[1].metadata["execution"]["trace_cache"]
        assert second["misses"] == 0

    def test_matrix_for_unknown_campaign_raises(self, serial_study):
        with pytest.raises(ConfigurationError):
            serial_study.matrix_for("core2duo", 0.33)

    def test_totals_aggregate_campaign_counters(self, serial_study):
        summed = {
            name: sum(
                matrix.metadata["execution"]["trace_cache"][name]
                for matrix in serial_study.matrices
            )
            for name in serial_study.trace_cache
        }
        assert serial_study.trace_cache == summed

    def test_registry_counts_campaigns_and_cells(self, serial_study):
        registry = serial_study.registry.to_prometheus()
        assert "savat_study_campaigns_total 2" in registry
        assert f"savat_study_cells_total {2 * len(EVENTS) ** 2}" in registry

    def test_campaign_wall_seconds_accessor(self, serial_study):
        walls = serial_study.campaign_wall_seconds()
        assert set(walls) == {("core2duo", 0.10), ("core2duo", 0.50)}
        assert all(seconds >= 0 for seconds in walls.values())


@pytest.mark.slow
class TestStudyResultCache:
    def test_result_cache_counters_are_per_campaign(self, tmp_path):
        """The shared result cache resets its counters per campaign
        execution, so each matrix reports its own traffic rather than a
        running study-wide total."""
        cells = len(EVENTS) ** 2
        cold = _study(cache_dir=tmp_path)
        for matrix in cold.matrices:
            execution = matrix.metadata["execution"]
            assert execution["cache_hits"] == 0
            assert execution["cache_misses"] == cells
        warm = _study(cache_dir=tmp_path)
        for matrix in warm.matrices:
            execution = matrix.metadata["execution"]
            assert execution["cache_hits"] == cells
            assert execution["cache_misses"] == 0
            assert execution["cells_simulated"] == 0
        for cold_matrix, warm_matrix in zip(cold.matrices, warm.matrices):
            assert np.array_equal(
                cold_matrix.samples_zj, warm_matrix.samples_zj
            )

    def test_trace_cache_disk_tier_defaults_inside_cache_dir(self, tmp_path):
        _study(cache_dir=tmp_path)
        assert list((tmp_path / "traces").glob("trace_*.npz"))

    def test_explicit_trace_cache_dir_wins(self, tmp_path):
        _study(cache_dir=tmp_path / "cache", trace_cache_dir=tmp_path / "traces")
        assert list((tmp_path / "traces").glob("trace_*.npz"))
        assert not (tmp_path / "cache" / "traces").exists()

    def test_prebuilt_trace_cache_is_used(self):
        cache = TraceCache()
        _study(trace_cache=cache)
        assert cache.counters()["stores"] == len(EVENTS) ** 2

    def test_trace_cache_off_recomputes_every_campaign(self):
        study = _study(trace_cache=False)
        assert study.trace_cache == {
            "memory_hits": 0,
            "shm_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "quarantined": 0,
        }


@pytest.mark.slow
class TestStudyOutputs:
    def test_output_dir_carries_per_campaign_observability(self, tmp_path):
        from repro.obs.check import check_against_execution, parse_prometheus
        from repro.obs.trace import validate_trace_file

        _study(output_dir=tmp_path)
        for stem in ("core2duo_10cm", "core2duo_50cm"):
            assert (tmp_path / f"{stem}.json").exists()
            assert validate_trace_file(tmp_path / f"{stem}.trace.jsonl") == []
            samples, errors = parse_prometheus(
                (tmp_path / f"{stem}.prom").read_text()
            )
            assert errors == []
            import json

            payload = json.loads((tmp_path / f"{stem}.json").read_text())
            execution = payload["metadata"]["execution"]
            assert check_against_execution(samples, execution) == []


class TestStudyValidation:
    def test_no_machines_rejected(self):
        with pytest.raises(ConfigurationError):
            run_study([], [0.10])

    def test_no_distances_rejected(self):
        with pytest.raises(ConfigurationError):
            run_study(["core2duo"], [])

    def test_bad_distance_rejected_before_any_campaign(self):
        with pytest.raises(ConfigurationError):
            run_study(["core2duo"], [0.10, -1.0], events=EVENTS)

    def test_observability_bundle_count_must_match(self):
        from repro.obs import CampaignObservability

        with pytest.raises(ConfigurationError):
            run_study(
                ["core2duo"],
                DISTANCES,
                events=EVENTS,
                observability=[CampaignObservability()],
            )
