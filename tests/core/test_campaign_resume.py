"""Resume suite for the campaign journal.

A campaign interrupted after K cells and resumed must recompute zero
journaled cells (verified by spying on ``simulate_cell``) and still
produce a matrix bit-identical to an uninterrupted run.  A journal
written by a different executor version, or for a different campaign,
is rejected instead of replayed.
"""

import json
import tempfile
from pathlib import Path
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import executor
from repro.core.campaign import run_campaign
from repro.core.faults import FaultPlan
from repro.core.savat import MeasurementConfig
from repro.errors import CellExecutionError, ConfigurationError, JournalError

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB", "MUL")
SEED = 7
REPETITIONS = 2
TOTAL = len(EVENTS) ** 2


def _run(machine, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


def _execution(matrix):
    return matrix.metadata["execution"]


@pytest.fixture(scope="module")
def journaled_run(core2duo_10cm, tmp_path_factory):
    """One complete journaled campaign: the matrix and its journal lines.

    The journal's cell lines are in row-major completion order, so
    "interrupted after K cells" is simply the header plus the first K
    cell lines.
    """
    path = tmp_path_factory.mktemp("journal") / "journal.jsonl"
    matrix = _run(core2duo_10cm, journal=path)
    return matrix, path.read_text().splitlines()


def _interrupted_journal(lines, completed_cells):
    """Write a journal that stops after ``completed_cells`` cells."""
    directory = Path(tempfile.mkdtemp(prefix="savat-resume-"))
    path = directory / "journal.jsonl"
    path.write_text("\n".join(lines[: 1 + completed_cells]) + "\n")
    return path


class _SimulateSpy:
    """Counts executor.simulate_cell calls while delegating to the real one."""

    def __init__(self):
        self.calls = 0
        self._real = executor.simulate_cell

    def __call__(self, *args, **kwargs):
        self.calls += 1
        return self._real(*args, **kwargs)


@pytest.mark.slow
class TestResume:
    @settings(max_examples=6, deadline=None)
    @given(completed=st.integers(min_value=0, max_value=TOTAL))
    def test_resume_recomputes_only_unjournaled_cells(
        self, core2duo_10cm, journaled_run, completed
    ):
        full, lines = journaled_run
        path = _interrupted_journal(lines, completed)
        spy = _SimulateSpy()
        with mock.patch.object(executor, "simulate_cell", spy):
            resumed = _run(core2duo_10cm, journal=path, resume=True)
        execution = _execution(resumed)
        assert spy.calls == TOTAL - completed
        assert execution["resumed"] == completed
        assert execution["cells_simulated"] == TOTAL - completed
        assert np.array_equal(resumed.samples_zj, full.samples_zj)

    def test_fully_journaled_campaign_resumes_with_zero_simulation(
        self, core2duo_10cm, journaled_run
    ):
        full, lines = journaled_run
        path = _interrupted_journal(lines, TOTAL)
        spy = _SimulateSpy()
        with mock.patch.object(executor, "simulate_cell", spy):
            resumed = _run(core2duo_10cm, journal=path, resume=True)
        assert spy.calls == 0
        assert _execution(resumed)["resumed"] == TOTAL
        assert np.array_equal(resumed.samples_zj, full.samples_zj)

    def test_resume_accepts_journal_path_shorthand(
        self, core2duo_10cm, journaled_run
    ):
        full, lines = journaled_run
        path = _interrupted_journal(lines, 4)
        resumed = _run(core2duo_10cm, resume=path)
        assert _execution(resumed)["resumed"] == 4
        assert np.array_equal(resumed.samples_zj, full.samples_zj)

    def test_resume_with_missing_journal_starts_fresh(
        self, core2duo_10cm, journaled_run, tmp_path
    ):
        full, _lines = journaled_run
        path = tmp_path / "never-written.jsonl"
        resumed = _run(core2duo_10cm, journal=path, resume=True)
        assert _execution(resumed)["resumed"] == 0
        assert np.array_equal(resumed.samples_zj, full.samples_zj)
        assert path.exists()  # the fresh run journaled itself

    def test_torn_trailing_line_is_tolerated(self, core2duo_10cm, journaled_run):
        full, lines = journaled_run
        path = _interrupted_journal(lines, 5)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(lines[6][: len(lines[6]) // 2])  # killed mid-write
        resumed = _run(core2duo_10cm, journal=path, resume=True)
        execution = _execution(resumed)
        assert execution["resumed"] == 5
        assert execution["cells_simulated"] == TOTAL - 5
        assert np.array_equal(resumed.samples_zj, full.samples_zj)

    def test_fatal_fault_then_resume_completes_the_campaign(
        self, core2duo_10cm, journaled_run, tmp_path
    ):
        full, _lines = journaled_run
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan.from_spec("raise@2,2x9")
        with pytest.raises(CellExecutionError):
            _run(core2duo_10cm, journal=path, max_retries=0, fault_plan=plan)
        spy = _SimulateSpy()
        with mock.patch.object(executor, "simulate_cell", spy):
            resumed = _run(core2duo_10cm, journal=path, resume=True)
        # Row-major order: every cell before (2, 2) was journaled, so
        # the resume recomputes exactly the one that failed.
        assert spy.calls == 1
        assert _execution(resumed)["resumed"] == TOTAL - 1
        assert np.array_equal(resumed.samples_zj, full.samples_zj)

    def test_cache_hits_are_journaled_for_cacheless_resume(
        self, core2duo_10cm, journaled_run, tmp_path
    ):
        full, _lines = journaled_run
        _run(core2duo_10cm, cache_dir=tmp_path / "cache")  # warm the cache
        path = tmp_path / "journal.jsonl"
        warm = _run(
            core2duo_10cm, cache_dir=tmp_path / "cache", journal=path
        )
        assert _execution(warm)["cache_hits"] == TOTAL
        # The journal alone (no cache) must now reproduce the campaign.
        resumed = _run(core2duo_10cm, journal=path, resume=True)
        assert _execution(resumed)["resumed"] == TOTAL
        assert np.array_equal(resumed.samples_zj, full.samples_zj)


@pytest.mark.slow
class TestJournalRejection:
    def test_version_mismatch_is_rejected(self, core2duo_10cm, journaled_run):
        _full, lines = journaled_run
        path = _interrupted_journal(lines, 3)
        header = json.loads(lines[0])
        header["journal_version"] = executor.JOURNAL_VERSION + 1
        rewritten = [json.dumps(header)] + lines[1:4]
        path.write_text("\n".join(rewritten) + "\n")
        with pytest.raises(JournalError, match="version"):
            _run(core2duo_10cm, journal=path, resume=True)

    def test_other_campaign_key_is_rejected(self, core2duo_10cm, journaled_run):
        _full, lines = journaled_run
        path = _interrupted_journal(lines, 3)
        with pytest.raises(JournalError, match="different campaign"):
            _run(core2duo_10cm, journal=path, resume=True, seed=SEED + 1)

    def test_garbage_header_is_rejected(self, core2duo_10cm, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("this is not a journal\n")
        with pytest.raises(JournalError):
            _run(core2duo_10cm, journal=path, resume=True)

    def test_missing_header_line_is_rejected(self, core2duo_10cm, journaled_run):
        _full, lines = journaled_run
        path = _interrupted_journal(lines, 3)
        path.write_text("\n".join(lines[1:4]) + "\n")  # drop the header
        with pytest.raises(JournalError):
            _run(core2duo_10cm, journal=path, resume=True)

    def test_fresh_run_overwrites_foreign_journal(
        self, core2duo_10cm, journaled_run, tmp_path
    ):
        # Without resume=True a stale journal is truncated, not rejected:
        # the caller asked for a fresh campaign.
        full, _lines = journaled_run
        path = tmp_path / "journal.jsonl"
        path.write_text("garbage that would never parse\n")
        matrix = _run(core2duo_10cm, journal=path)
        assert np.array_equal(matrix.samples_zj, full.samples_zj)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["journal_version"] == executor.JOURNAL_VERSION

    def test_journal_true_requires_a_cache(self, core2duo_10cm):
        with pytest.raises(ConfigurationError, match="cache"):
            _run(core2duo_10cm, journal=True)

    def test_journal_true_lives_in_the_cache_campaign_dir(
        self, core2duo_10cm, tmp_path
    ):
        _run(core2duo_10cm, cache_dir=tmp_path, journal=True)
        journals = list(tmp_path.glob("*/journal.jsonl"))
        assert len(journals) == 1


@pytest.mark.slow
class TestResumeMetadata:
    def test_resumed_cells_keep_their_original_timings(
        self, core2duo_10cm, journaled_run
    ):
        full, lines = journaled_run
        path = _interrupted_journal(lines, TOTAL)
        resumed = _run(core2duo_10cm, journal=path, resume=True)
        assert (
            _execution(resumed)["cell_seconds"]
            == _execution(full)["cell_seconds"]
        )

    def test_journal_samples_round_trip_exactly(self, journaled_run):
        full, lines = journaled_run
        for line in lines[1:]:
            record = json.loads(line)
            restored = np.asarray(record["samples_zj"], dtype=np.float64)
            assert np.array_equal(
                restored, full.samples_zj[record["i"], record["j"]]
            )
