"""Property tests for SavatMatrix serialization and statistics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.matrix import SavatMatrix

_EVENT_SETS = st.sampled_from(
    [("ADD", "MUL"), ("ADD", "MUL", "LDM"), ("LDM", "STM", "DIV", "NOI")]
)


@st.composite
def _matrices(draw) -> SavatMatrix:
    events = draw(_EVENT_SETS)
    repetitions = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    samples = rng.uniform(0.1, 20.0, size=(len(events), len(events), repetitions))
    return SavatMatrix(events, samples, machine="m", distance_m=0.1)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_is_lossless(matrix):
    rebuilt = SavatMatrix.from_json(matrix.to_json())
    assert rebuilt.events == matrix.events
    assert rebuilt.machine == matrix.machine
    assert rebuilt.distance_m == matrix.distance_m
    assert np.allclose(rebuilt.samples_zj, matrix.samples_zj)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_symmetrized_is_symmetric_and_mean_preserving(matrix):
    symmetric = matrix.symmetrized()
    assert np.allclose(symmetric, symmetric.T)
    assert np.isclose(symmetric.mean(), matrix.mean().mean())


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_shape_agreement_with_self_is_perfect(matrix):
    stats = matrix.shape_agreement(matrix.mean())
    assert stats["pearson"] > 0.999
    assert stats["mean_relative_error"] < 1e-9


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_diagonal_minimality_bounds(matrix):
    rows, columns = matrix.diagonal_minimality()
    count = len(matrix.events)
    assert 0 <= rows <= count
    assert 0 <= columns <= count
    # Infinite tolerance counts everything.
    assert matrix.diagonal_minimality(tolerance_zj=1e9) == (count, count)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_csv_is_rectangular(matrix):
    lines = matrix.to_csv().splitlines()
    width = len(lines[0].split(","))
    assert all(len(line.split(",")) == width for line in lines)
    assert len(lines) == len(matrix.events) + 1
