"""Property tests for SavatMatrix serialization and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError

_EVENT_SETS = st.sampled_from(
    [("ADD", "MUL"), ("ADD", "MUL", "LDM"), ("LDM", "STM", "DIV", "NOI")]
)


@st.composite
def _matrices(draw) -> SavatMatrix:
    events = draw(_EVENT_SETS)
    repetitions = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    samples = rng.uniform(0.1, 20.0, size=(len(events), len(events), repetitions))
    return SavatMatrix(events, samples, machine="m", distance_m=0.1)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_is_lossless(matrix):
    rebuilt = SavatMatrix.from_json(matrix.to_json())
    assert rebuilt.events == matrix.events
    assert rebuilt.machine == matrix.machine
    assert rebuilt.distance_m == matrix.distance_m
    assert np.allclose(rebuilt.samples_zj, matrix.samples_zj)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_symmetrized_is_symmetric_and_mean_preserving(matrix):
    symmetric = matrix.symmetrized()
    assert np.allclose(symmetric, symmetric.T)
    assert np.isclose(symmetric.mean(), matrix.mean().mean())


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_shape_agreement_with_self_is_perfect(matrix):
    stats = matrix.shape_agreement(matrix.mean())
    assert stats["pearson"] > 0.999
    assert stats["mean_relative_error"] < 1e-9


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_diagonal_minimality_bounds(matrix):
    rows, columns = matrix.diagonal_minimality()
    count = len(matrix.events)
    assert 0 <= rows <= count
    assert 0 <= columns <= count
    # Infinite tolerance counts everything.
    assert matrix.diagonal_minimality(tolerance_zj=1e9) == (count, count)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_csv_is_rectangular(matrix):
    lines = matrix.to_csv().splitlines()
    width = len(lines[0].split(","))
    assert all(len(line.split(",")) == width for line in lines)
    assert len(lines) == len(matrix.events) + 1


@given(
    events=_EVENT_SETS,
    rows=st.integers(min_value=0, max_value=6),
    columns=st.integers(min_value=0, max_value=6),
    repetitions=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_mismatched_shapes_raise_configuration_error(
    events, rows, columns, repetitions
):
    if (rows, columns) == (len(events), len(events)):
        rows += 1  # force a genuine mismatch
    samples = np.ones((rows, columns, repetitions))
    with pytest.raises(ConfigurationError):
        SavatMatrix(events, samples, machine="m", distance_m=0.1)


@given(events=_EVENT_SETS)
@settings(max_examples=20, deadline=None)
def test_flat_samples_raise_configuration_error(events):
    with pytest.raises(ConfigurationError):
        SavatMatrix(events, np.ones(len(events)), machine="m", distance_m=0.1)


@given(matrix=_matrices())
@settings(max_examples=40, deadline=None)
def test_repeatability_ratio_is_non_negative(matrix):
    assert matrix.std_over_mean() >= 0.0
    assert np.all(matrix.std() >= 0.0)


@st.composite
def _matrices_with_permutations(draw) -> tuple[SavatMatrix, SavatMatrix]:
    matrix = draw(_matrices())
    count = len(matrix.events)
    order = draw(st.permutations(range(count)))
    order = np.asarray(order)
    permuted = SavatMatrix(
        events=tuple(matrix.events[k] for k in order),
        samples_zj=matrix.samples_zj[np.ix_(order, order)],
        machine=matrix.machine,
        distance_m=matrix.distance_m,
    )
    return matrix, permuted


@given(pair=_matrices_with_permutations())
@settings(max_examples=40, deadline=None)
def test_statistics_survive_event_permutation(pair):
    """Reordering the events permutes rows/columns but cannot change the
    paper's scalar validity statistics or the diagonal value set."""
    matrix, permuted = pair
    assert permuted.std_over_mean() == pytest.approx(matrix.std_over_mean())
    assert permuted.asymmetry() == pytest.approx(matrix.asymmetry())
    assert permuted.diagonal_minimality() == matrix.diagonal_minimality()
    assert sorted(permuted.diagonal()) == pytest.approx(sorted(matrix.diagonal()))
    for event_a in matrix.events:
        for event_b in matrix.events:
            assert permuted.cell(event_a, event_b) == pytest.approx(
                matrix.cell(event_a, event_b)
            )


@given(pair=_matrices_with_permutations())
@settings(max_examples=40, deadline=None)
def test_symmetrized_diagonal_survives_event_permutation(pair):
    matrix, permuted = pair
    assert sorted(np.diag(permuted.symmetrized())) == pytest.approx(
        sorted(np.diag(matrix.symmetrized()))
    )
