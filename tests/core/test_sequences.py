"""Tests for sequence-level SAVAT (measurement + additive estimate)."""

import pytest

from repro.core.matrix import SavatMatrix
from repro.core.sequences import estimate_sequence_savat, measure_sequence_savat
from repro.errors import ConfigurationError
from repro.isa.events import EVENT_ORDER
from repro.machines.reference_data import CORE2DUO_10CM


@pytest.fixture(scope="module")
def reference_matrix() -> SavatMatrix:
    return SavatMatrix(EVENT_ORDER, CORE2DUO_10CM.values_zj, "core2duo", 0.10)


class TestAdditiveEstimate:
    def test_identical_sequences_cost_only_floor(self, reference_matrix):
        floor = estimate_sequence_savat(reference_matrix, ["ADD", "MUL"], ["ADD", "MUL"])
        assert floor == pytest.approx(
            float(reference_matrix.symmetrized().diagonal().mean())
        )

    def test_single_difference_matches_pairwise(self, reference_matrix):
        estimate = estimate_sequence_savat(reference_matrix, ["ADD"], ["LDM"])
        floor = float(reference_matrix.symmetrized().diagonal().mean())
        assert estimate == pytest.approx(
            max(reference_matrix.cell("ADD", "LDM") - floor, 0) + floor
        )

    def test_differences_accumulate(self, reference_matrix):
        one = estimate_sequence_savat(reference_matrix, ["ADD"], ["LDM"])
        two = estimate_sequence_savat(
            reference_matrix, ["ADD", "ADD"], ["LDM", "LDM"]
        )
        assert two > one

    def test_length_mismatch_pads_with_noi(self, reference_matrix):
        padded = estimate_sequence_savat(reference_matrix, ["ADD", "DIV"], ["ADD"])
        explicit = estimate_sequence_savat(
            reference_matrix, ["ADD", "DIV"], ["ADD", "NOI"]
        )
        assert padded == pytest.approx(explicit)

    def test_rsa_style_sequences(self, reference_matrix):
        """A 1-bit adds a multiply block with table loads: the estimate
        should be far above the floor (MUL alone vs NOI is already at
        the floor in Figure 9 — memory traffic is what leaks)."""
        bit0 = ["MUL", "DIV"]
        bit1 = ["MUL", "DIV", "LDM", "DIV"]
        estimate = estimate_sequence_savat(reference_matrix, bit1, bit0)
        assert estimate > 2.0  # zJ


@pytest.mark.slow
class TestMeasuredSequences:
    def test_empty_sequence_rejected(self, core2duo_10cm):
        with pytest.raises(ConfigurationError):
            measure_sequence_savat(core2duo_10cm, [], ["ADD"])

    def test_identical_sequences_near_silent(self, core2duo_10cm):
        result = measure_sequence_savat(
            core2duo_10cm, ["ADD", "MUL"], ["ADD", "MUL"]
        )
        baseline = measure_sequence_savat(core2duo_10cm, ["ADD"], ["DIV"])
        assert result.measured_zj < 0.25 * baseline.measured_zj

    def test_sequence_savat_exceeds_single_instruction(self, core2duo_10cm):
        single = measure_sequence_savat(core2duo_10cm, ["ADD"], ["DIV"])
        double = measure_sequence_savat(
            core2duo_10cm, ["ADD", "ADD"], ["DIV", "DIV"]
        )
        assert double.measured_zj > single.measured_zj

    def test_result_metadata(self, core2duo_10cm):
        result = measure_sequence_savat(core2duo_10cm, ["ADD"], ["MUL", "DIV"])
        assert result.sequence_a == ("ADD",)
        assert result.sequence_b == ("MUL", "DIV")
        assert result.pairs_per_second > 0
