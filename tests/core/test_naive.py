"""Tests for the naive-methodology comparison (Figure 2 / Section III)."""

import numpy as np
import pytest

from repro.core.naive import (
    build_single_event_fragment,
    compare_methodologies,
    naive_measurement,
    noiseless_subtraction_energy,
)
from repro.instruments.oscilloscope import Oscilloscope
from repro.isa.events import get_event
from repro.isa.instructions import Opcode
from repro.codegen.pointers import SweepPlan


class TestFragmentConstruction:
    def test_fragment_has_single_test_instruction(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        fragment = build_single_event_fragment(get_event("ADD"), plan, 8)
        test_slots = [i for i in fragment if i.role == "test"]
        assert len(test_slots) == 1

    def test_noi_fragment_has_no_test_instruction(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        fragment = build_single_event_fragment(get_event("NOI"), plan, 8)
        assert fragment.count_role("test") == 0

    def test_fragments_share_filler(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        add = build_single_event_fragment(get_event("ADD"), plan, 8)
        mul = build_single_event_fragment(get_event("MUL"), plan, 8)
        assert [str(i) for i in add if i.role != "test"] == [
            str(i) for i in mul if i.role != "test"
        ]

    def test_ends_with_halt(self):
        plan = SweepPlan(base=0x10000, footprint=4096, offset=64)
        fragment = build_single_event_fragment(get_event("DIV"), plan, 4)
        assert fragment[len(fragment) - 1].opcode is Opcode.HALT


@pytest.mark.slow
class TestMethodologyComparison:
    def test_subtraction_positive_for_different_events(self, core2duo_10cm):
        assert noiseless_subtraction_energy(core2duo_10cm, "ADD", "DIV") > 0

    def test_subtraction_zero_for_same_event(self, core2duo_10cm):
        assert noiseless_subtraction_energy(core2duo_10cm, "ADD", "ADD") == pytest.approx(
            0.0
        )

    def test_misalignment_dominates_even_without_noise(self, core2duo_10cm):
        """The paper's claim 2: when A's latency differs from B's, the
        subtraction compares unrelated activity — a perfect instrument
        still overestimates by orders of magnitude."""
        comparison = compare_methodologies(
            core2duo_10cm, "ADD", "DIV", trials=2, seed=3
        )
        assert comparison.misalignment_overestimate > 50

    def test_alternation_beats_naive(self, core2duo_10cm):
        comparison = compare_methodologies(
            core2duo_10cm, "ADD", "DIV", trials=4, seed=3
        )
        assert comparison.naive_relative_error > 5 * comparison.alternation_relative_error
        assert comparison.error_ratio > 5
        assert comparison.alternation_relative_error < 0.25

    def test_naive_measurement_noise_varies_per_trial(self, core2duo_10cm, rng):
        scope = Oscilloscope(sample_rate_hz=40e9, trigger_jitter_s=0.2e-9)
        first = naive_measurement(core2duo_10cm, "ADD", "MUL", scope, rng)
        second = naive_measurement(core2duo_10cm, "ADD", "MUL", scope, rng)
        assert first != second

    def test_estimates_recorded_per_trial(self, core2duo_10cm):
        comparison = compare_methodologies(
            core2duo_10cm, "ADD", "DIV", trials=3, seed=1
        )
        assert len(comparison.naive_estimates_zj) == 3
        assert len(comparison.alternation_estimates_zj) == 3
