"""Soundness tests for the cross-campaign kernel-trace cache.

The cache may only ever be a performance optimization: a campaign with
the trace cache on must produce bit-identical samples to one with it
off, for both measurement methods and on both the fast and reference
simulation paths.  That reduces to two properties locked down here:

* **key soundness** — any input that changes the produced trace
  (machine spec content, simulation path, schema versions, the ordered
  pair, any frequency-plan field) changes the key, while inputs that
  cannot change it (distance, seed, repetitions, method) do not;
* **payload integrity** — a hit returns exactly what the miss stored
  (trace bytes, retune outcome), and a corrupt disk entry is
  quarantined and recomputed, never trusted or silently deleted.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import run_campaign
from repro.core.savat import MeasurementConfig, _plan_pair
from repro.core.trace_cache import (
    TraceCache,
    clear_process_trace_cache,
    get_process_trace_cache,
    produce_cell_trace,
    trace_cache_enabled,
    trace_cache_key,
)
from repro.isa.events import get_event
from repro.machines.calibrated import load_calibrated_machine
from repro.uarch.fastpath import use_reference_path

FAST_CONFIG = MeasurementConfig(alternation_frequency_hz=800e3)

EVENTS = ("ADD", "SUB")
SEED = 3
REPETITIONS = 2


@pytest.fixture(scope="module")
def pair():
    return get_event("ADD"), get_event("SUB")


@pytest.fixture(scope="module")
def plan(core2duo_10cm_module, pair):
    event_a, event_b = pair
    return _plan_pair(
        core2duo_10cm_module,
        event_a,
        event_b,
        FAST_CONFIG.alternation_frequency_hz,
    )


@pytest.fixture(scope="module")
def core2duo_10cm_module():
    return load_calibrated_machine("core2duo", 0.10)


class TestTraceCacheKey:
    def test_deterministic(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        first = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        second = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        assert first == second

    def test_distance_does_not_change_the_key(self, pair, plan):
        """The core cross-campaign property: distance is a measurement
        parameter, not a trace parameter, so every distance of a study
        shares one trace."""
        event_a, event_b = pair
        near = load_calibrated_machine("core2duo", 0.10)
        far = load_calibrated_machine("core2duo", 1.00)
        assert trace_cache_key(near, event_a, event_b, plan) == trace_cache_key(
            far, event_a, event_b, plan
        )

    def test_pair_order_changes_the_key(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        forward = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        reverse = trace_cache_key(core2duo_10cm_module, event_b, event_a, plan)
        assert forward != reverse

    def test_machine_changes_the_key(self, pair):
        event_a, event_b = pair
        keys = set()
        for name in ("core2duo", "pentium3m"):
            machine = load_calibrated_machine(name, 0.10)
            machine_plan = _plan_pair(
                machine, event_a, event_b, FAST_CONFIG.alternation_frequency_hz
            )
            keys.add(trace_cache_key(machine, event_a, event_b, machine_plan))
        assert len(keys) == 2

    def test_schema_versions_change_the_key(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        base = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        assert base != trace_cache_key(
            core2duo_10cm_module, event_a, event_b, plan, schema_version=2
        )
        assert base != trace_cache_key(
            core2duo_10cm_module, event_a, event_b, plan, uarch_version=2
        )

    def test_simulation_path_changes_the_key(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        fast = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        with use_reference_path():
            reference = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        assert fast != reference

    @given(
        count_a=st.integers(min_value=1, max_value=100_000),
        count_b=st.integers(min_value=1, max_value=100_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_inst_loop_count_is_injective(
        self, core2duo_10cm_module, pair, plan, count_a, count_b
    ):
        event_a, event_b = pair
        keys = [
            trace_cache_key(
                core2duo_10cm_module,
                event_a,
                event_b,
                dataclasses.replace(
                    plan,
                    spec=dataclasses.replace(plan.spec, inst_loop_count=count),
                ),
            )
            for count in (count_a, count_b)
        ]
        assert (keys[0] == keys[1]) == (count_a == count_b)

    @given(
        field=st.sampled_from(
            [
                "target_frequency_hz",
                "predicted_frequency_hz",
                "cycles_per_iteration_a",
                "cycles_per_iteration_b",
            ]
        ),
        factor=st.floats(min_value=1.01, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_plan_field_perturbation_changes_the_key(
        self, core2duo_10cm_module, pair, plan, field, factor
    ):
        event_a, event_b = pair
        base = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        perturbed = dataclasses.replace(
            plan, **{field: getattr(plan, field) * factor}
        )
        assert base != trace_cache_key(
            core2duo_10cm_module, event_a, event_b, perturbed
        )

    def test_spec_content_changes_the_key(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        base = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        altered_spec = dataclasses.replace(
            core2duo_10cm_module.spec, clock_hz=core2duo_10cm_module.spec.clock_hz * 2
        )
        altered = dataclasses.replace(core2duo_10cm_module, spec=altered_spec)
        assert base != trace_cache_key(altered, event_a, event_b, plan)


class TestTraceCacheTiers:
    def test_miss_then_memory_hit(self, core2duo_10cm_module, pair, plan):
        event_a, event_b = pair
        cache = TraceCache()
        cold_trace, cold_plan = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=cache
        )
        assert cache.counters() == {
            "memory_hits": 0,
            "shm_hits": 0,
            "disk_hits": 0,
            "misses": 1,
            "stores": 1,
            "quarantined": 0,
        }
        warm_trace, warm_plan = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=cache
        )
        assert cache.counters()["memory_hits"] == 1
        assert np.array_equal(warm_trace.data, cold_trace.data)
        assert warm_trace.clock_hz == cold_trace.clock_hz
        assert warm_plan == cold_plan

    def test_disk_tier_survives_a_fresh_cache(
        self, core2duo_10cm_module, pair, plan, tmp_path
    ):
        event_a, event_b = pair
        writer = TraceCache(directory=tmp_path)
        cold_trace, cold_plan = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=writer
        )
        reader = TraceCache(directory=tmp_path)
        warm_trace, warm_plan = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=reader
        )
        assert reader.counters()["disk_hits"] == 1
        assert reader.counters()["misses"] == 0
        assert np.array_equal(warm_trace.data, cold_trace.data)
        assert warm_plan == cold_plan
        # The disk hit was promoted into memory: a repeat stays local.
        produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=reader
        )
        assert reader.counters()["memory_hits"] == 1

    def test_memory_only_cache_forgets_across_instances(
        self, core2duo_10cm_module, pair, plan
    ):
        event_a, event_b = pair
        produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=TraceCache()
        )
        fresh = TraceCache()
        produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=fresh
        )
        assert fresh.counters()["misses"] == 1

    def test_lru_evicts_oldest_entry(self, core2duo_10cm_module, plan):
        cache = TraceCache(memory_entries=1)
        for names in (("ADD", "SUB"), ("ADD", "MUL")):
            event_a, event_b = (get_event(name) for name in names)
            cell_plan = _plan_pair(
                core2duo_10cm_module,
                event_a,
                event_b,
                FAST_CONFIG.alternation_frequency_hz,
            )
            produce_cell_trace(
                core2duo_10cm_module, event_a, event_b, cell_plan, cache=cache
            )
        assert len(cache) == 1
        # The first pair was evicted; with no disk tier it must miss.
        event_a, event_b = get_event("ADD"), get_event("SUB")
        produce_cell_trace(core2duo_10cm_module, event_a, event_b, plan, cache=cache)
        assert cache.counters()["misses"] == 3

    def test_counter_delta(self):
        before = {"memory_hits": 1, "disk_hits": 0, "misses": 2, "stores": 2, "quarantined": 0}
        after = {"memory_hits": 3, "disk_hits": 1, "misses": 2, "stores": 2, "quarantined": 0}
        assert TraceCache.counter_delta(after, before) == {
            "memory_hits": 2,
            "disk_hits": 1,
            "misses": 0,
            "stores": 0,
            "quarantined": 0,
        }


class TestCorruptEntries:
    def test_corrupt_entry_is_quarantined_and_recomputed(
        self, core2duo_10cm_module, pair, plan, tmp_path
    ):
        event_a, event_b = pair
        writer = TraceCache(directory=tmp_path)
        cold_trace, _ = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=writer
        )
        key = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        writer.entry_path(key).write_bytes(b"not a npz payload")

        reader = TraceCache(directory=tmp_path)
        recovered_trace, _ = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=reader
        )
        counters = reader.counters()
        assert counters["quarantined"] == 1
        assert counters["misses"] == 1
        assert counters["stores"] == 1
        assert np.array_equal(recovered_trace.data, cold_trace.data)
        assert not list(tmp_path.glob("trace_*.npz")) == []
        quarantined = list(reader.quarantine_dir().iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith(key)

    def test_semantically_invalid_entry_is_quarantined(
        self, core2duo_10cm_module, pair, plan, tmp_path
    ):
        event_a, event_b = pair
        writer = TraceCache(directory=tmp_path)
        cold_trace, _ = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=writer
        )
        key = trace_cache_key(core2duo_10cm_module, event_a, event_b, plan)
        # Well-formed npz, nonsensical content (non-finite trace data).
        bad = np.full_like(cold_trace.data, np.nan)
        with open(writer.entry_path(key), "wb") as handle:
            np.savez(
                handle,
                data=bad,
                clock_hz=np.float64(cold_trace.clock_hz),
                inst_loop_count=np.int64(1),
                predicted_frequency_hz=np.float64(1.0),
            )
        reader = TraceCache(directory=tmp_path)
        recovered_trace, _ = produce_cell_trace(
            core2duo_10cm_module, event_a, event_b, plan, cache=reader
        )
        assert reader.counters()["quarantined"] == 1
        assert np.array_equal(recovered_trace.data, cold_trace.data)


class TestProcessCache:
    def test_disabled_by_environment(self, monkeypatch):
        monkeypatch.setenv("SAVAT_TRACE_CACHE", "0")
        assert not trace_cache_enabled()
        clear_process_trace_cache()
        assert get_process_trace_cache() is None
        monkeypatch.setenv("SAVAT_TRACE_CACHE", "1")
        assert trace_cache_enabled()

    def test_rebuilt_when_directory_changes(self, monkeypatch, tmp_path):
        monkeypatch.delenv("SAVAT_TRACE_CACHE", raising=False)
        monkeypatch.delenv("SAVAT_TRACE_CACHE_DIR", raising=False)
        clear_process_trace_cache()
        memory_only = get_process_trace_cache()
        assert memory_only is not None
        assert memory_only.directory is None
        assert get_process_trace_cache() is memory_only
        monkeypatch.setenv("SAVAT_TRACE_CACHE_DIR", str(tmp_path))
        rebuilt = get_process_trace_cache()
        assert rebuilt is not memory_only
        assert rebuilt.directory == tmp_path
        clear_process_trace_cache()


def _run(machine, **overrides):
    parameters = dict(
        events=EVENTS,
        repetitions=REPETITIONS,
        seed=SEED,
        config=FAST_CONFIG,
        trace_cache=False,
    )
    parameters.update(overrides)
    return run_campaign(machine, **parameters)


@pytest.mark.slow
class TestCampaignBitIdentity:
    def test_cache_on_equals_cache_off_across_two_distances(self):
        """The acceptance property: a shared trace cache serving two
        distances changes nothing about either campaign's samples."""
        cache = TraceCache()
        for distance in (0.10, 0.50):
            machine = load_calibrated_machine("core2duo", distance)
            baseline = _run(machine)
            cached = _run(machine, trace_cache=cache)
            assert np.array_equal(baseline.samples_zj, cached.samples_zj), distance
        # The second distance was served entirely from the cache.
        second = cached.metadata["execution"]["trace_cache"]
        assert second["misses"] == 0
        assert second["memory_hits"] == len(EVENTS) ** 2

    @pytest.mark.parametrize("method", ["analytic", "full"])
    def test_both_methods(self, core2duo_10cm, method):
        config = MeasurementConfig(
            alternation_frequency_hz=800e3, method=method, duration_s=0.01
        )
        baseline = _run(core2duo_10cm, config=config)
        cached = _run(core2duo_10cm, config=config, trace_cache=TraceCache())
        assert np.array_equal(baseline.samples_zj, cached.samples_zj)

    def test_reference_path(self, core2duo_10cm):
        with use_reference_path():
            baseline = _run(core2duo_10cm)
            cached = _run(core2duo_10cm, trace_cache=TraceCache())
        assert np.array_equal(baseline.samples_zj, cached.samples_zj)

    def test_pool_execution_with_disk_tier(self, core2duo_10cm, tmp_path):
        baseline = _run(core2duo_10cm)
        cached = _run(
            core2duo_10cm, trace_cache=TraceCache(directory=tmp_path), workers=2
        )
        assert np.array_equal(baseline.samples_zj, cached.samples_zj)
        # Workers persisted their traces through the shared disk tier.
        assert list(tmp_path.glob("trace_*.npz"))

    def test_campaign_metadata_counters(self, core2duo_10cm):
        cache = TraceCache()
        cold = _run(core2duo_10cm, trace_cache=cache)
        warm = _run(core2duo_10cm, trace_cache=cache)
        cells = len(EVENTS) ** 2
        assert cold.metadata["execution"]["trace_cache"] == {
            "memory_hits": 0,
            "shm_hits": 0,
            "disk_hits": 0,
            "misses": cells,
            "stores": cells,
            "quarantined": 0,
        }
        assert warm.metadata["execution"]["trace_cache"] == {
            "memory_hits": cells,
            "shm_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "quarantined": 0,
        }
