"""Tests for the compensating-activity mitigation."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigations.compensation import (
    compensate_sequences,
    evaluate_compensation,
)


class TestCompensateSequences:
    def test_balanced_paths_unchanged(self):
        padded_a, padded_b = compensate_sequences(["ADD", "MUL"], ["MUL", "ADD"])
        assert sorted(padded_a) == sorted(padded_b) == ["ADD", "MUL"]

    def test_excess_events_mirrored(self):
        padded_a, padded_b = compensate_sequences(["ADD"], ["ADD", "DIV"])
        assert padded_a == ("ADD", "DIV")
        assert padded_b == ("ADD", "DIV")

    def test_multiset_semantics(self):
        padded_a, padded_b = compensate_sequences(["DIV", "DIV"], ["DIV"])
        assert sorted(padded_a) == sorted(padded_b)
        assert padded_a.count("DIV") == 2

    def test_disjoint_paths_union(self):
        padded_a, padded_b = compensate_sequences(["MUL"], ["LDM"])
        assert sorted(padded_a) == sorted(padded_b) == ["LDM", "MUL"]

    def test_case_insensitive(self):
        padded_a, _padded_b = compensate_sequences(["add"], ["div"])
        assert padded_a == ("ADD", "DIV")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            compensate_sequences([], ["ADD"])

    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigurationError):
            compensate_sequences(["FDIV"], ["ADD"])


@pytest.mark.slow
class TestEvaluateCompensation:
    def test_div_leak_suppressed(self, core2duo_10cm):
        """The paper's worst case: a DIV executed or not depending on a
        secret.  Compensation pads the quiet path with a dummy DIV."""
        report = evaluate_compensation(core2duo_10cm, ["ADD", "DIV"], ["ADD"])
        assert report.savat_reduction > 5
        assert report.time_overhead > 0.1  # the dummy DIV costs real time

    def test_memory_leak_suppressed(self, core2duo_10cm):
        report = evaluate_compensation(core2duo_10cm, ["MUL", "LDL2"], ["MUL"])
        assert report.savat_after_zj < 0.3 * report.savat_before_zj

    def test_balanced_paths_cost_nothing(self, core2duo_10cm):
        report = evaluate_compensation(core2duo_10cm, ["ADD", "MUL"], ["MUL", "ADD"])
        assert report.time_overhead == pytest.approx(0.0, abs=0.05)

    def test_report_str(self, core2duo_10cm):
        report = evaluate_compensation(core2duo_10cm, ["ADD", "DIV"], ["ADD"])
        text = str(report)
        assert "quieter" in text
        assert "execution time" in text
