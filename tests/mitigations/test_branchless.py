"""Tests for the branchless (constant-time) rewrite mitigation."""

import numpy as np
import pytest

from repro.attacks.distinguisher import observe, profile_templates, recover_key
from repro.attacks.modexp import simulate_victim
from repro.errors import ConfigurationError
from repro.isa.instructions import Opcode
from repro.mitigations.branchless import (
    bit_level_separation,
    constant_time_step_program,
    evaluate_branchless,
    simulate_constant_time_victim,
)


class TestConstantTimeStep:
    def test_contains_no_conditional_branches(self):
        program = constant_time_step_program(8)
        assert not any(
            i.opcode in (Opcode.JZ, Opcode.JNZ) for i in program
        )

    def test_selects_with_cmov(self):
        program = constant_time_step_program(8)
        assert any(i.opcode is Opcode.CMOVZ for i in program)

    def test_always_fetches_the_table(self):
        program = constant_time_step_program(8)
        loads = [i for i in program if i.opcode is Opcode.LOAD]
        assert len(loads) == 8


@pytest.mark.slow
class TestConstantTimeVictim:
    def test_one_block_per_bit(self, core2duo_10cm):
        execution = simulate_constant_time_victim(core2duo_10cm, [1, 0, 1], 8)
        assert len(execution.block_boundaries) == 3
        assert all(kind == "ct_step" for _s, _e, kind in execution.block_boundaries)

    def test_blocks_have_identical_durations(self, core2duo_10cm):
        execution = simulate_constant_time_victim(core2duo_10cm, [1, 0, 1, 0], 8)
        durations = {end - start for start, end, _k in execution.block_boundaries}
        assert len(durations) == 1

    def test_bits_produce_identical_activity(self, core2duo_10cm):
        """The rewrite's whole point: per-cycle activity is bit-independent."""
        execution = simulate_constant_time_victim(core2duo_10cm, [1, 0], 8)
        (s0, e0, _), (s1, e1, _) = execution.block_boundaries
        block_zero = execution.trace.data[:, s1:e1]
        block_one = execution.trace.data[:, s0:e0]
        assert np.allclose(block_zero, block_one)

    def test_invalid_key_rejected(self, core2duo_10cm):
        with pytest.raises(ConfigurationError):
            simulate_constant_time_victim(core2duo_10cm, [], 8)
        with pytest.raises(ConfigurationError):
            simulate_constant_time_victim(core2duo_10cm, [2], 8)


@pytest.mark.slow
class TestEvaluation:
    def test_separation_eliminated(self, core2duo_10cm):
        report = evaluate_branchless(core2duo_10cm, [1, 0, 1, 1, 0, 0, 1, 0], 8)
        assert report.leaky_separation > 1.0
        assert report.constant_time_separation == pytest.approx(0.0, abs=1e-9)

    def test_cost_is_roughly_the_multiply_fraction(self, core2duo_10cm):
        """Always-multiply costs about one multiply block per 0-bit."""
        report = evaluate_branchless(core2duo_10cm, [1, 0, 1, 1, 0, 0, 1, 0], 8)
        assert 0.3 < report.time_overhead < 1.5

    def test_single_class_key_has_zero_separation(self, core2duo_10cm):
        leaky = simulate_victim(core2duo_10cm, [1, 1, 1], 8)
        assert bit_level_separation(core2duo_10cm, leaky) == 0.0

    def test_template_attack_defeated(self, core2duo_10cm):
        """The leaky-victim attack gets every bit at 10 cm; against the
        constant-time victim it collapses."""
        key = [1, 0, 1, 1, 0, 0, 1, 0]
        templates = profile_templates(core2duo_10cm, block_work=8)
        constant_time = simulate_constant_time_victim(core2duo_10cm, key, 8)
        capture = observe(core2duo_10cm, constant_time, rng=None)
        recovered = recover_key(capture, templates, max_bits=32)
        matches = sum(a == b for a, b in zip(key, recovered))
        assert matches <= len(key) // 2 + 1  # guessing-level at best

    def test_report_str(self, core2duo_10cm):
        report = evaluate_branchless(core2duo_10cm, [1, 0], 8)
        assert "branchless rewrite" in str(report)
