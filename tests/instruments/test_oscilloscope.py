"""Unit tests for the oscilloscope model."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.instruments.oscilloscope import Oscilloscope


class TestOscilloscope:
    def test_resamples_at_scope_rate(self, rng):
        scope = Oscilloscope(sample_rate_hz=1e9, vertical_noise_fraction=0.0)
        waveform = np.linspace(0, 1, 1000)  # 1000 samples at 10 GHz
        capture = scope.capture(waveform, 10e9, rng)
        assert len(capture.samples) == 100

    def test_linear_interpolation(self, rng):
        scope = Oscilloscope(sample_rate_hz=2e9, vertical_noise_fraction=0.0)
        waveform = np.linspace(0.0, 1.0, 101)  # ramp over 100 ns at 1 GHz
        capture = scope.capture(waveform, 1e9, rng)
        # A ramp resampled without noise stays a ramp (np.interp clamps
        # past the source's end, so ignore the trailing samples).
        diffs = np.diff(capture.samples[:-2])
        assert np.allclose(diffs, diffs[0], atol=1e-9)

    def test_vertical_noise_scales_with_range(self, rng):
        scope = Oscilloscope(sample_rate_hz=1e9, vertical_noise_fraction=0.005)
        waveform = np.zeros(100_000)
        waveform[::2] = 10.0  # range of 10
        capture = scope.capture(waveform, 1e9, rng)
        ideal = scope.capture(
            waveform, 1e9, np.random.default_rng(0)
        )  # different noise
        residual = capture.samples - np.where(np.arange(len(capture.samples)) % 2 == 0, 10.0, 0.0)
        assert residual.std() == pytest.approx(0.05, rel=0.1)

    def test_no_noise_on_flat_signal(self, rng):
        scope = Oscilloscope(sample_rate_hz=1e9, vertical_noise_fraction=0.005)
        capture = scope.capture(np.zeros(1000), 1e9, rng)
        assert np.all(capture.samples == 0)

    def test_trigger_jitter_recorded(self, rng):
        scope = Oscilloscope(
            sample_rate_hz=1e9, vertical_noise_fraction=0.0, trigger_jitter_s=1e-9
        )
        offsets = {scope.capture(np.ones(100), 1e9, rng).trigger_offset_s for _ in range(5)}
        assert len(offsets) == 5  # all different

    def test_times_include_offset(self, rng):
        scope = Oscilloscope(sample_rate_hz=1e9, trigger_jitter_s=1e-9)
        capture = scope.capture(np.ones(100), 1e9, rng)
        assert capture.times_s[0] == pytest.approx(capture.trigger_offset_s)

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(MeasurementError):
            Oscilloscope(sample_rate_hz=0)
        scope = Oscilloscope(sample_rate_hz=1e9)
        with pytest.raises(MeasurementError):
            scope.capture(np.array([1.0]), 1e9, rng)
        with pytest.raises(MeasurementError):
            scope.capture(np.ones(100), 0.0, rng)
