"""Unit tests for the spectrum-analyzer model."""

import numpy as np
import pytest

from repro.em.environment import NoiseEnvironment
from repro.errors import MeasurementError
from repro.instruments.spectrum_analyzer import Spectrum, SpectrumAnalyzer


def _tone(amplitude, frequency, fs, duration):
    t = np.arange(int(fs * duration)) / fs
    return amplitude * np.cos(2 * np.pi * frequency * t)


class TestSpectrumAnalyzer:
    def test_tone_band_power_in_watts(self):
        fs = 2.56e6
        amplitude = 1e-3
        samples = _tone(amplitude, 80e3, fs, duration=0.1)
        analyzer = SpectrumAnalyzer(rbw_hz=10.0, environment=None)
        spectrum = analyzer.measure(samples, sample_rate_hz=fs)
        measured = spectrum.band_power_w(80e3, 1e3)
        assert measured == pytest.approx(amplitude**2 / 2 / 50.0, rel=0.02)

    def test_noise_floor_added(self):
        fs = 1e6
        samples = np.zeros(int(fs * 0.05))
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=6e-18, include_thermal=False
        )
        analyzer = SpectrumAnalyzer(rbw_hz=20.0, environment=environment)
        spectrum = analyzer.measure(samples, sample_rate_hz=fs)
        assert np.median(spectrum.psd_w_per_hz) == pytest.approx(6e-18, rel=0.01)

    def test_noise_floor_randomized_with_rng(self, rng):
        fs = 1e6
        samples = np.zeros(int(fs * 0.05))
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=6e-18, include_thermal=False
        )
        analyzer = SpectrumAnalyzer(rbw_hz=20.0, environment=environment)
        spectrum = analyzer.measure(samples, sample_rate_hz=fs, rng=rng)
        assert spectrum.psd_w_per_hz.std() > 0
        assert np.mean(spectrum.psd_w_per_hz) == pytest.approx(6e-18, rel=0.05)

    def test_interferer_appears_in_spectrum(self):
        from repro.em.environment import RadioInterferer

        fs = 1e6
        samples = np.zeros(int(fs * 0.1))
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=1e-18,
            include_thermal=False,
            interferers=(RadioInterferer(81.45e3, 2.5e-16, 30.0),),
        )
        analyzer = SpectrumAnalyzer(rbw_hz=10.0, environment=environment)
        spectrum = analyzer.measure(samples, sample_rate_hz=fs)
        assert spectrum.peak_hz(70e3, 90e3) == pytest.approx(81.45e3, abs=30.0)

    def test_insufficient_samples_for_rbw_rejected(self):
        analyzer = SpectrumAnalyzer(rbw_hz=1.0)
        with pytest.raises(MeasurementError, match="RBW"):
            analyzer.measure(np.zeros(1000), sample_rate_hz=1e6)

    def test_raw_input_requires_sample_rate(self):
        analyzer = SpectrumAnalyzer(rbw_hz=1.0)
        with pytest.raises(MeasurementError):
            analyzer.measure(np.zeros(1000))

    def test_invalid_rbw_rejected(self):
        with pytest.raises(MeasurementError):
            SpectrumAnalyzer(rbw_hz=0.0)


class TestSpectrum:
    def _spectrum(self):
        freqs = np.linspace(0, 1000, 1001)
        psd = np.ones(1001) * 1e-18
        psd[500] = 1e-15
        return Spectrum(freqs, psd, rbw_hz=1.0)

    def test_peak(self):
        assert self._spectrum().peak_hz() == pytest.approx(500.0)

    def test_slice(self):
        sliced = self._spectrum().slice(400, 600)
        assert sliced.freqs_hz[0] >= 400
        assert sliced.freqs_hz[-1] <= 600
        assert sliced.peak_hz() == pytest.approx(500.0)

    def test_slice_outside_range_rejected(self):
        with pytest.raises(MeasurementError):
            self._spectrum().slice(2000, 3000)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            Spectrum(np.zeros(10), np.zeros(5), rbw_hz=1.0)
