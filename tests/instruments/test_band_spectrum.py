"""Band-limited estimators against the full-spectrum reference.

The band path (:class:`ZoomBandPlan`, :func:`band_periodogram_psd`,
:func:`band_welch_psd`, :meth:`SpectrumAnalyzer.measure_band`) is only
allowed to exist because slicing the reference full-spectrum result to
the same bins is indistinguishable within the pipeline's 1e-9 agreement
budget — and bit-identical wherever the implementations share code
paths (frequency grids, noise realizations, interferer spreading).
These tests prove those properties over randomized signals, band
placements, and adversarial transform lengths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.em.environment import (
    NoiseEnvironment,
    RadioInterferer,
    quiet_lab_environment,
)
from repro.errors import MeasurementError
from repro.instruments.signal_processing import (
    ZoomBandPlan,
    band_bin_range,
    band_periodogram_psd,
    band_power,
    band_welch_psd,
    get_zoom_plan,
    periodogram_psd,
    rfft_bin_width,
    welch_psd,
)
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer


def _mixed_signal(rng, modes, num_samples, fs):
    """Tones riding on noise, exercising both coherent and broad bins."""
    t = np.arange(num_samples) / fs
    samples = rng.normal(0.0, 0.3, size=(modes, num_samples))
    for mode in range(modes):
        f0 = fs * (0.05 + 0.4 * rng.random())
        samples[mode] += np.cos(2 * np.pi * f0 * t + rng.random())
    return samples


class TestBandBinRange:
    @given(
        num_samples=st.integers(16, 5000),
        center_fraction=st.floats(0.01, 0.49),
        width_fraction=st.floats(1e-4, 0.2),
        fs=st.floats(1e3, 1e7),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_band_power_mask(
        self, num_samples, center_fraction, width_fraction, fs
    ):
        """Property: the arithmetic bin range selects exactly the bins
        the reference boolean mask in band_power selects."""
        f_center = center_fraction * fs
        half_width = width_fraction * fs
        freqs = np.fft.rfftfreq(num_samples, d=1.0 / fs)
        mask = (freqs >= f_center - half_width) & (freqs <= f_center + half_width)
        if not mask.any():
            with pytest.raises(MeasurementError):
                band_bin_range(num_samples, fs, f_center, half_width)
            return
        k_lo, k_hi = band_bin_range(num_samples, fs, f_center, half_width)
        indices = np.where(mask)[0]
        assert (k_lo, k_hi) == (indices[0], indices[-1])

    def test_band_outside_range_rejected(self):
        with pytest.raises(MeasurementError):
            band_bin_range(1024, 1e4, 1e6, 10.0)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(MeasurementError):
            band_bin_range(1024, 1e4, 1e3, 0.0)

    def test_bin_width_matches_rfftfreq(self):
        for n in (7, 64, 1023, 2_562_392):
            freqs = np.fft.rfftfreq(n, d=1.0 / 31977.0)
            assert rfft_bin_width(n, 31977.0) == freqs[1]


class TestZoomBandPlan:
    @pytest.mark.parametrize(
        "num_samples",
        # Powers of two, primes, prime*2 (Bluestein territory), and the
        # smallest legal lengths.
        (2, 3, 16, 17, 997, 1024, 1031, 2 * 1499, 4096),
    )
    def test_transform_matches_rfft(self, rng, num_samples):
        k_hi = num_samples // 2
        k_lo = max(0, k_hi - 40)
        plan = ZoomBandPlan(num_samples, k_lo, k_hi)
        samples = rng.normal(0.0, 1.0, size=(2, num_samples))
        reference = np.fft.rfft(samples, axis=-1)[:, k_lo : k_hi + 1]
        zoomed = plan.transform(samples)
        assert np.max(np.abs(zoomed - reference)) <= 1e-10 * max(
            1.0, np.max(np.abs(reference))
        )

    @given(
        num_samples=st.integers(8, 3000),
        seed=st.integers(0, 2**32 - 1),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_transform_matches_rfft_property(self, num_samples, seed, data):
        top = num_samples // 2
        k_lo = data.draw(st.integers(0, top))
        k_hi = data.draw(st.integers(k_lo, top))
        rng = np.random.default_rng(seed)
        samples = rng.normal(0.0, 1.0, size=num_samples)
        plan = ZoomBandPlan(num_samples, k_lo, k_hi)
        reference = np.fft.rfft(samples)[k_lo : k_hi + 1]
        zoomed = plan.transform(samples)[0]
        scale = max(1.0, float(np.max(np.abs(reference))))
        assert np.max(np.abs(zoomed - reference)) <= 1e-9 * scale

    def test_frequencies_bit_equal_to_rfftfreq(self):
        fs = 2_562_392.0 / 1.0  # a SAVAT-like non-round rate
        n = 102_400
        plan = ZoomBandPlan(n, 3100, 3300)
        reference = np.fft.rfftfreq(n, d=1.0 / fs)[3100:3301]
        assert np.array_equal(plan.frequencies(fs), reference)

    def test_frequencies_cached_and_read_only(self):
        plan = ZoomBandPlan(256, 10, 20)
        first = plan.frequencies(1e4)
        assert plan.frequencies(1e4) is first
        with pytest.raises(ValueError):
            first[0] = -1.0

    def test_invalid_bin_range_rejected(self):
        with pytest.raises(MeasurementError):
            ZoomBandPlan(64, 20, 10)
        with pytest.raises(MeasurementError):
            ZoomBandPlan(64, 0, 33)

    def test_plan_cache_reuses_geometry(self):
        first = get_zoom_plan(512, 5, 9)
        assert get_zoom_plan(512, 5, 9) is first
        assert get_zoom_plan(512, 5, 10) is not first


class TestBandPeriodogram:
    @given(
        seed=st.integers(0, 2**32 - 1),
        modes=st.integers(1, 3),
        num_samples=st.integers(32, 4096),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_equals_sliced_reference(self, seed, modes, num_samples, data):
        """Property: band bins equal the reference estimator's slice."""
        top = num_samples // 2
        k_lo = data.draw(st.integers(0, top))
        k_hi = data.draw(st.integers(k_lo, top))
        rng = np.random.default_rng(seed)
        fs = 1e5
        samples = _mixed_signal(rng, modes, num_samples, fs)
        ref_freqs, ref_psd = periodogram_psd(samples, fs)
        freqs, psd = band_periodogram_psd(samples, fs, k_lo, k_hi)
        assert np.array_equal(freqs, ref_freqs[k_lo : k_hi + 1])
        reference = ref_psd[k_lo : k_hi + 1]
        scale = max(float(reference.max()), 1e-300)
        assert np.max(np.abs(psd - reference)) <= 1e-10 * scale

    def test_full_range_satisfies_parseval(self, rng):
        """Integrating the band PSD over the whole spectrum recovers the
        windowed signal's variance (boxcar window: exact Parseval)."""
        fs = 10_000.0
        num_samples = 2_000
        samples = rng.normal(0.0, 1.3, num_samples)
        freqs, psd = band_periodogram_psd(
            samples, fs, 0, num_samples // 2, window=np.ones(num_samples)
        )
        total = psd.sum() * (freqs[1] - freqs[0])
        assert total == pytest.approx(samples.var(), rel=1e-9)

    def test_mismatched_plan_rejected(self, rng):
        plan = ZoomBandPlan(256, 10, 20)
        with pytest.raises(MeasurementError):
            band_periodogram_psd(rng.normal(size=256), 1e4, 11, 20, plan=plan)

    def test_workspace_reuse_is_clean(self, rng):
        """Back-to-back calls through the shared workspace must not leak
        samples from the previous call into the next."""
        fs = 1e5
        a = _mixed_signal(rng, 1, 999, fs)
        b = _mixed_signal(rng, 1, 999, fs)
        band_periodogram_psd(a, fs, 50, 80)
        _freqs, psd_b = band_periodogram_psd(b, fs, 50, 80)
        reference = periodogram_psd(b, fs)[1][50:81]
        assert np.max(np.abs(psd_b - reference)) <= 1e-10 * reference.max()


class TestBandWelch:
    @given(seed=st.integers(0, 2**32 - 1), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_equals_sliced_reference(self, seed, data):
        rng = np.random.default_rng(seed)
        fs = 1e5
        num_samples = data.draw(st.integers(256, 4096))
        segment_length = data.draw(st.integers(32, num_samples))
        top = segment_length // 2
        k_lo = data.draw(st.integers(0, top))
        k_hi = data.draw(st.integers(k_lo, top))
        samples = _mixed_signal(rng, 2, num_samples, fs)
        ref_freqs, ref_psd = welch_psd(samples, fs, segment_length)
        freqs, psd = band_welch_psd(samples, fs, segment_length, k_lo, k_hi)
        assert np.array_equal(freqs, ref_freqs[k_lo : k_hi + 1])
        reference = ref_psd[k_lo : k_hi + 1]
        scale = max(float(reference.max()), 1e-300)
        assert np.max(np.abs(psd - reference)) <= 1e-10 * scale

    def test_band_power_agreement_within_budget(self, rng):
        """The headline acceptance property: integrated band power from
        the band path agrees with the reference to <= 1e-9 relative."""
        fs = 2.56e6
        duration = 0.04
        num_samples = int(round(duration * fs))
        samples = _mixed_signal(rng, 3, num_samples, fs)
        segment = int(round(fs / 25.0))
        f_center, half_width = 80e3, 1e3
        ref = band_power(*welch_psd(samples, fs, segment), f_center, half_width)
        k_lo, k_hi = band_bin_range(segment, fs, f_center, half_width)
        freqs, psd = band_welch_psd(samples, fs, segment, k_lo, k_hi)
        fast = band_power(freqs, psd, f_center, half_width)
        assert fast == pytest.approx(ref, rel=1e-9)


class TestMeasureBand:
    def _analyzer(self, environment):
        return SpectrumAnalyzer(rbw_hz=25.0, environment=environment)

    @pytest.mark.parametrize(
        "environment",
        (None, quiet_lab_environment()),
        ids=("noiseless", "quiet_lab"),
    )
    def test_matches_sliced_full_sweep(self, rng, environment):
        """measure_band == measure + slice: frequencies bit-equal, noise
        bit-identical (lockstep rng), signal PSD within 1e-10."""
        fs = 2.56e6
        samples = _mixed_signal(rng, 2, int(0.04 * fs), fs)
        analyzer = self._analyzer(environment)
        rng_full = np.random.default_rng(7)
        rng_band = np.random.default_rng(7)
        full = analyzer.measure(samples, sample_rate_hz=fs, rng=rng_full)
        band = analyzer.measure_band(samples, 80e3, 1e3, sample_rate_hz=fs, rng=rng_band)
        mask = (full.freqs_hz >= 79e3) & (full.freqs_hz <= 81e3)
        assert np.array_equal(band.freqs_hz, full.freqs_hz[mask])
        reference = full.psd_w_per_hz[mask]
        scale = max(float(reference.max()), 1e-300)
        assert np.max(np.abs(band.psd_w_per_hz - reference)) <= 1e-9 * scale
        # The generators stay in lockstep: identical draws afterwards.
        assert rng_full.standard_normal(4).tolist() == rng_band.standard_normal(4).tolist()

    def test_interferer_spread_uses_full_grid_bin_count(self, rng):
        """An interferer wider than the measured band must divide its
        power by its full-grid bin count, not the overlap count."""
        fs = 2.56e6
        samples = np.zeros((1, int(0.04 * fs)))
        environment = NoiseEnvironment(
            instrument_floor_w_per_hz=0.0,
            include_thermal=False,
            interferers=(
                RadioInterferer(frequency_hz=80_500.0, power_w=1e-12, bandwidth_hz=4_000.0),
            ),
        )
        analyzer = self._analyzer(environment)
        full = analyzer.measure(samples, sample_rate_hz=fs)
        band = analyzer.measure_band(samples, 80e3, 1e3, sample_rate_hz=fs)
        mask = (full.freqs_hz >= 79e3) & (full.freqs_hz <= 81e3)
        assert np.array_equal(band.psd_w_per_hz, full.psd_w_per_hz[mask])

    def test_deterministic_band_power_agreement(self, rng):
        fs = 2.56e6
        samples = _mixed_signal(rng, 2, int(0.04 * fs), fs)
        analyzer = self._analyzer(quiet_lab_environment())
        full = analyzer.measure(samples, sample_rate_hz=fs)
        band = analyzer.measure_band(samples, 80e3, 1e3, sample_rate_hz=fs)
        assert band.band_power_w(80e3, 1e3) == pytest.approx(
            full.band_power_w(80e3, 1e3), rel=1e-9
        )
