"""Unit and property tests for the DSP helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.instruments.signal_processing import (
    band_power,
    hann_window,
    peak_frequency,
    periodogram_psd,
    welch_psd,
)


def _tone(amplitude=1.0, frequency=1000.0, fs=65536.0, duration=1.0):
    t = np.arange(int(fs * duration)) / fs
    return amplitude * np.cos(2 * np.pi * frequency * t)


class TestPeriodogram:
    def test_tone_power_recovered(self):
        fs = 65536.0
        amplitude = 2.0
        samples = _tone(amplitude=amplitude, fs=fs)
        freqs, psd = periodogram_psd(samples, fs)
        power = band_power(freqs, psd, 1000.0, 50.0)
        assert power == pytest.approx(amplitude**2 / 2, rel=0.01)

    def test_peak_at_tone_frequency(self):
        fs = 65536.0
        samples = _tone(frequency=1234.0, fs=fs)
        freqs, psd = periodogram_psd(samples, fs)
        assert peak_frequency(freqs, psd) == pytest.approx(1234.0, abs=2.0)

    def test_dc_removed(self):
        fs = 4096.0
        samples = np.full(4096, 5.0)
        freqs, psd = periodogram_psd(samples, fs)
        assert psd.max() < 1e-12

    def test_white_noise_psd_level(self, rng):
        fs = 100_000.0
        sigma = 0.5
        samples = rng.normal(0, sigma, 400_000)
        freqs, psd = periodogram_psd(samples, fs)
        # One-sided PSD of white noise: 2*sigma^2/fs (bins are chi-square
        # distributed around it, so compare the mean, not the median).
        assert np.mean(psd) == pytest.approx(2 * sigma**2 / fs, rel=0.1)

    def test_modes_sum(self):
        fs = 8192.0
        one = periodogram_psd(_tone(fs=fs, duration=0.5), fs)[1]
        stacked = periodogram_psd(
            np.vstack([_tone(fs=fs, duration=0.5)] * 2), fs
        )[1]
        assert np.allclose(stacked, 2 * one, rtol=1e-9)

    def test_too_short_rejected(self):
        with pytest.raises(MeasurementError):
            periodogram_psd(np.array([1.0]), 100.0)

    def test_window_length_mismatch_rejected(self):
        with pytest.raises(MeasurementError):
            periodogram_psd(np.zeros(100), 100.0, window=hann_window(50))


class TestWelch:
    def test_rbw_sets_bin_spacing(self):
        fs = 65536.0
        samples = _tone(fs=fs, duration=2.0)
        freqs, _psd = welch_psd(samples, fs, segment_length=int(fs))
        assert freqs[1] - freqs[0] == pytest.approx(1.0)

    def test_averaging_reduces_variance(self, rng):
        fs = 65536.0
        samples = rng.normal(0, 1, int(fs))
        _freqs, single = periodogram_psd(samples, fs)
        _freqs2, averaged = welch_psd(samples, fs, segment_length=4096)
        assert averaged.std() < single.std()

    def test_segment_longer_than_signal_rejected(self):
        with pytest.raises(MeasurementError):
            welch_psd(np.zeros(100), 100.0, segment_length=200)

    def test_invalid_overlap_rejected(self):
        with pytest.raises(MeasurementError):
            welch_psd(np.zeros(100), 100.0, segment_length=50, overlap=1.0)


class TestBandPower:
    def test_band_outside_range_rejected(self):
        freqs = np.linspace(0, 100, 101)
        psd = np.ones(101)
        with pytest.raises(MeasurementError):
            band_power(freqs, psd, 1e6, 10.0)

    def test_flat_psd_integrates_to_width(self):
        freqs = np.linspace(0, 1000, 1001)
        psd = np.ones(1001)
        assert band_power(freqs, psd, 500.0, 100.0) == pytest.approx(201.0, rel=0.01)

    def test_peak_range_filter(self):
        freqs = np.linspace(0, 100, 101)
        psd = np.zeros(101)
        psd[10] = 5.0
        psd[90] = 10.0
        assert peak_frequency(freqs, psd, f_high_hz=50.0) == pytest.approx(10.0)

    def test_peak_empty_range_rejected(self):
        freqs = np.linspace(0, 100, 101)
        with pytest.raises(MeasurementError):
            peak_frequency(freqs, np.ones(101), f_low_hz=200.0)


@given(sigma=st.floats(min_value=0.1, max_value=3.0), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_parseval_total_power(sigma, seed):
    """Property: integrating the PSD recovers the signal's variance."""
    rng = np.random.default_rng(seed)
    fs = 10_000.0
    samples = rng.normal(0, sigma, 20_000)
    freqs, psd = periodogram_psd(samples, fs, window=np.ones(len(samples)))
    total = psd.sum() * (freqs[1] - freqs[0])
    assert total == pytest.approx(samples.var(), rel=0.02)
