"""Unit tests for the square-and-multiply victim."""

import pytest

from repro.attacks.modexp import (
    block_schedule,
    multiply_block_program,
    simulate_victim,
    square_block_program,
)
from repro.errors import ConfigurationError
from repro.isa.instructions import Opcode
from repro.uarch.components import Component


class TestBlockSchedule:
    def test_zero_bit_is_square_only(self):
        assert block_schedule([0]) == ["square"]

    def test_one_bit_adds_multiply(self):
        assert block_schedule([1]) == ["square", "multiply"]

    def test_mixed_key(self):
        assert block_schedule([1, 0, 1]) == [
            "square", "multiply", "square", "square", "multiply",
        ]

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            block_schedule([])

    def test_non_bit_rejected(self):
        with pytest.raises(ConfigurationError):
            block_schedule([0, 2])


class TestBlockPrograms:
    def test_square_has_no_memory_access(self):
        program = square_block_program(8)
        assert not any(i.is_memory for i in program)

    def test_multiply_fetches_from_table(self):
        program = multiply_block_program(8)
        loads = [i for i in program if i.opcode is Opcode.LOAD]
        assert len(loads) == 8

    def test_both_blocks_reduce_with_idiv(self):
        for program in (square_block_program(4), multiply_block_program(4)):
            assert any(i.opcode is Opcode.IDIV for i in program)


@pytest.mark.slow
class TestSimulateVictim:
    def test_boundaries_cover_trace(self, core2duo_10cm):
        execution = simulate_victim(core2duo_10cm, [1, 0, 1], block_work=8)
        assert execution.block_boundaries[0][0] == 0
        assert execution.block_boundaries[-1][1] == execution.trace.num_cycles

    def test_block_kinds_follow_schedule(self, core2duo_10cm):
        execution = simulate_victim(core2duo_10cm, [1, 0], block_work=8)
        kinds = [kind for _s, _e, kind in execution.block_boundaries]
        assert kinds == ["square", "multiply", "square"]

    def test_multiply_blocks_touch_memory(self, core2duo_10cm):
        execution = simulate_victim(core2duo_10cm, [1], block_work=8)
        (square_start, square_end, _), (mul_start, mul_end, _) = execution.block_boundaries
        square_window = execution.trace.window(square_start, square_end)
        multiply_window = execution.trace.window(mul_start, mul_end)
        assert square_window.totals()[Component.L1D] == 0
        assert multiply_window.totals()[Component.L1D] > 0

    def test_one_bits_make_longer_traces(self, core2duo_10cm):
        short = simulate_victim(core2duo_10cm, [0, 0, 0], block_work=8)
        long = simulate_victim(core2duo_10cm, [1, 1, 1], block_work=8)
        assert long.trace.num_cycles > short.trace.num_cycles
