"""Tests for the EM template attack."""

import numpy as np
import pytest

from repro.attacks.distinguisher import (
    AttackResult,
    observe,
    profile_templates,
    recover_key,
    run_attack,
)
from repro.attacks.modexp import simulate_victim


class TestAttackResult:
    def test_accuracy_full_match(self):
        result = AttackResult((1, 0, 1), (1, 0, 1))
        assert result.accuracy == 1.0
        assert result.exact

    def test_accuracy_partial(self):
        result = AttackResult((1, 0, 1, 1), (1, 1, 1, 1))
        assert result.accuracy == pytest.approx(0.75)
        assert not result.exact

    def test_length_mismatch_penalized(self):
        result = AttackResult((1, 0), (1, 0, 0, 0))
        assert result.accuracy == pytest.approx(0.5)


@pytest.mark.slow
class TestTemplateAttack:
    def test_templates_separate(self, core2duo_10cm):
        templates = profile_templates(core2duo_10cm, block_work=8)
        assert templates.separation > 0
        assert templates.multiply_cycles > templates.square_cycles

    def test_noiseless_recovery_is_exact(self, core2duo_10cm):
        key = [1, 0, 1, 1, 0, 0, 1, 0]
        templates = profile_templates(core2duo_10cm, block_work=8)
        execution = simulate_victim(core2duo_10cm, key, block_work=8)
        capture = observe(core2duo_10cm, execution, rng=None)
        recovered = recover_key(capture, templates, max_bits=32)
        assert recovered == tuple(key)

    def test_end_to_end_attack_at_10cm(self, core2duo_10cm):
        key = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1]
        result = run_attack(core2duo_10cm, key, seed=5, block_work=8)
        assert result.accuracy >= 0.9

    def test_accuracy_degrades_with_distance(self, core2duo_10cm, core2duo_100cm):
        """The attack consumes exactly the signal SAVAT quantifies: at
        10 cm the templates separate far above the receiver noise, at
        100 cm they sink into it and recovery drops to chance."""
        key = [1, 0, 1, 1, 0, 1, 0, 0] * 2
        near = run_attack(core2duo_10cm, key, seed=7, block_work=8)
        far = run_attack(core2duo_100cm, key, seed=7, block_work=8)
        assert near.accuracy >= 0.9
        assert far.accuracy <= near.accuracy - 0.2
