"""Tests keeping the examples runnable and documented.

Every example must compile and carry a usage docstring; the quick ones
are executed end to end (the heavyweight campaign examples are covered
by the benchmark harness, which runs the same code paths).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleHygiene:
    def test_expected_examples_present(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert {
            "quickstart",
            "full_campaign",
            "distance_study",
            "rsa_attack_demo",
            "instruction_clustering",
            "svf_vs_savat",
            "multi_channel",
            "mitigation_study",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_compiles(self, path):
        compiled = compile(path.read_text(), str(path), "exec")
        assert compiled is not None

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_documented(self, path):
        source = path.read_text()
        assert source.startswith("#!/usr/bin/env python3"), path.stem
        assert '"""' in source.split("\n", 2)[1], f"{path.stem} lacks a docstring"
        assert "Run:" in source, f"{path.stem} docstring lacks a Run: line"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source


@pytest.mark.slow
class TestExampleExecution:
    def _run_main(self, stem: str, capsys) -> str:
        module = _load(EXAMPLES_DIR / f"{stem}.py")
        module.main()
        return capsys.readouterr().out

    def test_quickstart_runs(self, capsys, core2duo_10cm):
        output = self._run_main("quickstart", capsys)
        assert "SAVAT(ADD, LDM)" in output
        assert "error floor" in output

    def test_svf_vs_savat_runs(self, capsys, core2duo_10cm):
        output = self._run_main("svf_vs_savat", capsys)
        assert "SVF of the modexp victim" in output
        assert "LDM/NOI" in output

    def test_multi_channel_runs(self, capsys, core2duo_10cm):
        output = self._run_main("multi_channel", capsys)
        assert "Normalized distinguishability" in output
        assert "acoustic" in output
