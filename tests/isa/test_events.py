"""Unit tests for the paper's eleven instruction events (Figure 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.events import (
    EVENT_ORDER,
    EventKind,
    Footprint,
    PAPER_EVENTS,
    event_pairs,
    get_event,
)
from repro.isa.instructions import MemoryOperand, Opcode


class TestEventCatalog:
    def test_eleven_events(self):
        assert len(PAPER_EVENTS) == 11

    def test_paper_order(self):
        assert EVENT_ORDER == (
            "LDM", "STM", "LDL2", "STL2", "LDL1", "STL1",
            "NOI", "ADD", "SUB", "MUL", "DIV",
        )

    def test_lookup_case_insensitive(self):
        assert get_event("ldm").name == "LDM"

    def test_unknown_event(self):
        with pytest.raises(ConfigurationError, match="unknown event"):
            get_event("FDIV")

    def test_footprints_match_figure5(self):
        assert get_event("LDM").footprint is Footprint.MEMORY
        assert get_event("STM").footprint is Footprint.MEMORY
        assert get_event("LDL2").footprint is Footprint.L2
        assert get_event("STL2").footprint is Footprint.L2
        assert get_event("LDL1").footprint is Footprint.L1
        assert get_event("STL1").footprint is Footprint.L1
        for name in ("NOI", "ADD", "SUB", "MUL", "DIV"):
            assert get_event(name).footprint is Footprint.NONE

    def test_kinds(self):
        assert get_event("LDM").kind is EventKind.LOAD
        assert get_event("STL1").kind is EventKind.STORE
        assert get_event("DIV").kind is EventKind.ARITHMETIC
        assert get_event("NOI").kind is EventKind.NONE

    def test_loads_share_x86_text(self):
        assert get_event("LDM").x86_text == get_event("LDL1").x86_text


class TestTestInstruction:
    def test_noi_has_no_instruction(self):
        assert get_event("NOI").test_instruction() is None

    def test_load_uses_pointer_register(self):
        instruction = get_event("LDL2").test_instruction("edi")
        assert instruction.opcode is Opcode.LOAD
        assert isinstance(instruction.src, MemoryOperand)
        assert instruction.src.base.name == "edi"

    def test_store_writes_paper_constant(self):
        instruction = get_event("STM").test_instruction()
        assert instruction.opcode is Opcode.STORE
        assert instruction.src.value == 0xFFFFFFFF

    def test_arithmetic_uses_imm_173(self):
        for name, opcode in (("ADD", Opcode.ADD), ("SUB", Opcode.SUB), ("MUL", Opcode.IMUL)):
            instruction = get_event(name).test_instruction()
            assert instruction.opcode is opcode
            assert instruction.src.value == 173

    def test_div_instruction(self):
        assert get_event("DIV").test_instruction().opcode is Opcode.IDIV

    def test_role_is_test(self):
        assert get_event("ADD").test_instruction().role == "test"


class TestEventPairs:
    def test_all_ordered_pairs(self):
        pairs = event_pairs()
        assert len(pairs) == 121

    def test_contains_both_orders(self):
        pairs = {(a.name, b.name) for a, b in event_pairs()}
        assert ("ADD", "LDM") in pairs
        assert ("LDM", "ADD") in pairs

    def test_is_memory_flags(self):
        assert get_event("LDL1").is_memory
        assert not get_event("MUL").is_memory
        assert get_event("STM").is_store
        assert not get_event("LDM").is_store
