"""Unit tests for the instruction/operand model."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import (
    ALU_OPCODES,
    BRANCH_OPCODES,
    Immediate,
    Instruction,
    MEMORY_OPCODES,
    MemoryOperand,
    Opcode,
    REGISTER_NAMES,
    Register,
    imm,
    mem,
    reg,
)


class TestRegister:
    def test_valid_names(self):
        for name in REGISTER_NAMES:
            assert Register(name).name == name

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblyError):
            Register("rax")

    def test_str(self):
        assert str(Register("eax")) == "eax"


class TestImmediate:
    def test_value_coerced_to_int(self):
        assert imm(173).value == 173

    def test_negative_allowed(self):
        assert imm(-5).value == -5

    def test_str(self):
        assert str(imm(42)) == "42"


class TestMemoryOperand:
    def test_base_only(self):
        operand = mem("esi")
        assert operand.base.name == "esi"
        assert operand.displacement == 0

    def test_base_and_displacement(self):
        operand = mem("esi", displacement=64)
        assert str(operand) == "[esi+64]"

    def test_index_with_scale(self):
        operand = mem("esi", index="eax", scale=4)
        assert "eax*4" in str(operand)

    def test_invalid_scale_rejected(self):
        with pytest.raises(AssemblyError):
            mem("esi", index="eax", scale=3)

    def test_empty_operand_rejected(self):
        with pytest.raises(AssemblyError):
            MemoryOperand()

    def test_displacement_only(self):
        operand = mem(displacement=0x1000)
        assert operand.displacement == 0x1000


class TestInstruction:
    def test_branch_requires_target(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.JNZ)

    def test_branch_with_target(self):
        instruction = Instruction(Opcode.JNZ, target="loop")
        assert instruction.is_branch
        assert instruction.target == "loop"

    def test_load_requires_register_dest(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.LOAD, dest=mem("esi"), src=mem("edi"))

    def test_load_requires_memory_src(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.LOAD, dest=reg("eax"), src=reg("ebx"))

    def test_store_requires_memory_dest(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.STORE, dest=reg("eax"), src=imm(1))

    def test_is_memory(self):
        load = Instruction(Opcode.LOAD, dest=reg("eax"), src=mem("esi"))
        assert load.is_memory
        add = Instruction(Opcode.ADD, dest=reg("eax"), src=imm(1))
        assert not add.is_memory

    def test_str_with_label(self):
        instruction = Instruction(
            Opcode.ADD, dest=reg("eax"), src=imm(173), label="top"
        )
        assert str(instruction) == "top: add eax, 173"

    def test_str_branch(self):
        assert str(Instruction(Opcode.JMP, target="top")) == "jmp top"

    def test_role_defaults_empty(self):
        assert Instruction(Opcode.NOP).role == ""


class TestOpcodeSets:
    def test_memory_opcodes(self):
        assert MEMORY_OPCODES == {Opcode.LOAD, Opcode.STORE}

    def test_branch_opcodes(self):
        assert Opcode.JMP in BRANCH_OPCODES
        assert Opcode.JNZ in BRANCH_OPCODES
        assert Opcode.JZ in BRANCH_OPCODES

    def test_alu_opcodes_exclude_memory_and_branch(self):
        assert not (ALU_OPCODES & MEMORY_OPCODES)
        assert not (ALU_OPCODES & BRANCH_OPCODES)

    def test_opcode_str(self):
        assert str(Opcode.IMUL) == "imul"
