"""Tests for the conditional-move instructions (constant-time support)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError
from repro.isa.assembler import assemble, parse_line
from repro.isa.instructions import ALU_OPCODES, Opcode
from repro.uarch.cache import CacheGeometry
from repro.uarch.core import Core


def _core() -> Core:
    return Core(
        clock_hz=1e9,
        l1_geometry=CacheGeometry(1024, 2, 64),
        l2_geometry=CacheGeometry(8192, 4, 64),
    )


class TestAssembly:
    def test_cmovz_parses(self):
        instruction = parse_line("cmovz eax, ebx")
        assert instruction.opcode is Opcode.CMOVZ

    def test_cmovnz_parses(self):
        instruction = parse_line("cmovnz edx, 5")
        assert instruction.opcode is Opcode.CMOVNZ

    def test_memory_operands_rejected(self):
        with pytest.raises(AssemblyError):
            parse_line("cmovz eax, [esi]")
        with pytest.raises(AssemblyError):
            parse_line("cmovz [esi], eax")

    def test_operand_count_enforced(self):
        with pytest.raises(AssemblyError):
            parse_line("cmovz eax")

    def test_cmov_in_alu_set(self):
        assert Opcode.CMOVZ in ALU_OPCODES
        assert Opcode.CMOVNZ in ALU_OPCODES


class TestSemantics:
    def test_cmovz_moves_on_zero(self):
        core = _core()
        core.run(assemble("mov eax, 0\ntest eax, 1\ncmovz ebx, 42\nhalt"))
        assert core.registers["ebx"] == 42

    def test_cmovz_holds_on_nonzero(self):
        core = _core()
        core.run(assemble("mov eax, 1\nmov ebx, 7\ntest eax, 1\ncmovz ebx, 42\nhalt"))
        assert core.registers["ebx"] == 7

    def test_cmovnz_mirrors(self):
        core = _core()
        core.run(assemble("mov eax, 1\ntest eax, 1\ncmovnz ebx, 9\ncmovz edx, 9\nhalt"))
        assert core.registers["ebx"] == 9
        assert core.registers["edx"] == 0

    def test_cmov_does_not_touch_flags(self):
        core = _core()
        core.run(
            assemble(
                "mov eax, 0\ntest eax, 1\ncmovz ebx, 1\njz took\nmov edx, 99\ntook: halt"
            )
        )
        assert core.registers["edx"] == 0  # jz still sees ZF from test


class TestConstantTimeProperty:
    @given(condition_value=st.integers(min_value=0, max_value=1))
    @settings(max_examples=10, deadline=None)
    def test_timing_independent_of_condition(self, condition_value):
        """Property: cmov costs the same cycles whichever way it goes —
        the microarchitectural guarantee branchless code relies on."""
        source = f"mov eax, {condition_value}\ntest eax, 1\ncmovz ebx, 42\nhalt"
        core = _core()
        result = core.run(assemble(source))
        baseline_core = _core()
        baseline = baseline_core.run(assemble("mov eax, 0\ntest eax, 1\ncmovz ebx, 42\nhalt"))
        assert result.cycles == baseline.cycles

    @given(condition_value=st.integers(min_value=0, max_value=1))
    @settings(max_examples=10, deadline=None)
    def test_activity_independent_of_condition(self, condition_value):
        """Property: identical switching activity for both directions."""
        import numpy as np

        source = f"mov eax, {condition_value}\ntest eax, 1\ncmovnz ebx, 42\nhalt"
        trace = _core().run(assemble(source)).trace
        reference_source = "mov eax, 0\ntest eax, 1\ncmovnz ebx, 42\nhalt"
        reference = _core().run(assemble(reference_source)).trace
        assert np.allclose(trace.data, reference.data)
