"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble, parse_line, parse_operand
from repro.isa.instructions import Immediate, MemoryOperand, Opcode, Register


class TestParseOperand:
    def test_register(self):
        assert parse_operand("eax") == Register("eax")

    def test_decimal_immediate(self):
        assert parse_operand("173") == Immediate(173)

    def test_hex_immediate(self):
        assert parse_operand("0xFF") == Immediate(255)

    def test_negative_immediate(self):
        assert parse_operand("-8") == Immediate(-8)

    def test_memory_base(self):
        operand = parse_operand("[esi]")
        assert isinstance(operand, MemoryOperand)
        assert operand.base.name == "esi"

    def test_memory_base_displacement(self):
        operand = parse_operand("[esi+64]")
        assert operand.displacement == 64

    def test_memory_negative_displacement(self):
        operand = parse_operand("[ebp-4]")
        assert operand.displacement == -4

    def test_memory_index_scale(self):
        operand = parse_operand("[esi+eax*4+8]")
        assert operand.index.name == "eax"
        assert operand.scale == 4
        assert operand.displacement == 8

    def test_empty_rejected(self):
        with pytest.raises(AssemblyError):
            parse_operand("")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblyError):
            parse_operand("17x")


class TestParseLine:
    def test_blank_line(self):
        assert parse_line("   ") is None

    def test_comment_only(self):
        assert parse_line("; a comment") is None
        assert parse_line("# another") is None

    def test_mov_register(self):
        instruction = parse_line("mov eax, ebx")
        assert instruction.opcode is Opcode.MOV

    def test_mov_load(self):
        instruction = parse_line("mov eax, [esi]")
        assert instruction.opcode is Opcode.LOAD

    def test_mov_store(self):
        instruction = parse_line("mov [esi], 0xFFFFFFFF")
        assert instruction.opcode is Opcode.STORE
        assert instruction.src.value == 0xFFFFFFFF

    def test_mov_memory_to_memory_rejected(self):
        with pytest.raises(AssemblyError):
            parse_line("mov [esi], [edi]")

    def test_alu_ops(self):
        for mnemonic, opcode in (
            ("add", Opcode.ADD),
            ("sub", Opcode.SUB),
            ("and", Opcode.AND),
            ("or", Opcode.OR),
            ("xor", Opcode.XOR),
            ("shl", Opcode.SHL),
            ("shr", Opcode.SHR),
            ("imul", Opcode.IMUL),
            ("cmp", Opcode.CMP),
            ("test", Opcode.TEST),
        ):
            assert parse_line(f"{mnemonic} eax, 3").opcode is opcode

    def test_one_operand_ops(self):
        assert parse_line("inc ecx").opcode is Opcode.INC
        assert parse_line("dec ecx").opcode is Opcode.DEC
        assert parse_line("idiv ebx").opcode is Opcode.IDIV

    def test_lea(self):
        instruction = parse_line("lea ebx, [esi+64]")
        assert instruction.opcode is Opcode.LEA

    def test_branches(self):
        assert parse_line("jmp top").target == "top"
        assert parse_line("jnz loop").opcode is Opcode.JNZ
        assert parse_line("jz done").opcode is Opcode.JZ

    def test_nop_and_halt(self):
        assert parse_line("nop").opcode is Opcode.NOP
        assert parse_line("halt").opcode is Opcode.HALT

    def test_nop_with_operand_rejected(self):
        with pytest.raises(AssemblyError):
            parse_line("nop eax")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            parse_line("fadd st0, st1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            parse_line("add eax")

    def test_inline_comment_stripped(self):
        instruction = parse_line("add eax, 1 ; increment")
        assert instruction.opcode is Opcode.ADD


class TestAssemble:
    SOURCE = """
    ; a counted loop
        mov ecx, 4
    top:
        add eax, 1
        dec ecx
        jnz top
        halt
    """

    def test_program_length(self):
        program = assemble(self.SOURCE)
        assert len(program) == 5

    def test_label_resolution(self):
        program = assemble(self.SOURCE)
        assert program.label_index("top") == 1

    def test_label_on_same_line(self):
        program = assemble("start: nop\njmp start")
        assert program.label_index("start") == 0

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined branch target"):
            assemble("jmp nowhere")

    def test_trailing_label_rejected(self):
        with pytest.raises(AssemblyError, match="no instruction"):
            assemble("nop\nend:")

    def test_consecutive_labels_rejected(self):
        with pytest.raises(AssemblyError, match="consecutive labels"):
            assemble("a:\nb:\nnop")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus eax")

    def test_roundtrip_through_text(self):
        program = assemble(self.SOURCE)
        reassembled = assemble(program.to_text())
        assert [i.opcode for i in reassembled] == [i.opcode for i in program]
