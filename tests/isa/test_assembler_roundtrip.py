"""Property tests: assembling rendered programs reproduces them."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.instructions import (
    Instruction,
    Opcode,
    imm,
    mem,
    reg,
)
from repro.isa.program import Program

_REGISTERS = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")

_two_operand = st.sampled_from(
    [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.IMUL,
     Opcode.CMP, Opcode.TEST, Opcode.MOV, Opcode.CMOVZ, Opcode.CMOVNZ]
)
_register = st.sampled_from(_REGISTERS)
_immediate = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def _instructions(draw) -> Instruction:
    kind = draw(st.sampled_from(["alu", "one", "load", "store", "lea", "nop"]))
    if kind == "alu":
        source = draw(st.one_of(_register.map(reg), _immediate.map(imm)))
        return Instruction(draw(_two_operand), dest=reg(draw(_register)), src=source)
    if kind == "one":
        return Instruction(
            draw(st.sampled_from([Opcode.INC, Opcode.DEC, Opcode.IDIV])),
            dest=reg(draw(_register)),
        )
    if kind == "load":
        return Instruction(
            Opcode.LOAD,
            dest=reg(draw(_register)),
            src=mem(draw(_register), displacement=draw(st.integers(0, 4096))),
        )
    if kind == "store":
        return Instruction(
            Opcode.STORE,
            dest=mem(draw(_register), displacement=draw(st.integers(0, 4096))),
            src=draw(st.one_of(_register.map(reg), _immediate.map(imm))),
        )
    if kind == "lea":
        return Instruction(
            Opcode.LEA,
            dest=reg(draw(_register)),
            src=mem(draw(_register), index=draw(_register), scale=draw(st.sampled_from([1, 2, 4, 8]))),
        )
    return Instruction(Opcode.NOP)


@given(instructions=st.lists(_instructions(), min_size=1, max_size=20))
@settings(max_examples=80, deadline=None)
def test_to_text_assemble_roundtrip(instructions):
    """Property: any renderable program survives text round-trips."""
    program = Program(instructions + [Instruction(Opcode.HALT)])
    reassembled = assemble(program.to_text())
    assert len(reassembled) == len(program)
    for original, parsed in zip(program, reassembled):
        assert parsed.opcode is original.opcode
        assert str(parsed) == str(original)


@given(instructions=st.lists(_instructions(), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_execution(instructions):
    """Property: round-tripped programs execute identically."""
    from repro.uarch.cache import CacheGeometry
    from repro.uarch.core import Core

    program = Program(instructions + [Instruction(Opcode.HALT)])
    reassembled = assemble(program.to_text())

    def run(target):
        core = Core(
            clock_hz=1e9,
            l1_geometry=CacheGeometry(1024, 2, 64),
            l2_geometry=CacheGeometry(8192, 4, 64),
        )
        core.registers.update({"esi": 0x1000, "edi": 0x2000, "ebp": 0x3000, "esp": 0x4000})
        result = core.run(target)
        return result.registers, result.cycles

    assert run(program) == run(reassembled)
