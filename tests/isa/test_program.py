"""Unit tests for the Program container."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, Opcode, imm, reg
from repro.isa.program import Program


def _nop(label=None, role=""):
    return Instruction(Opcode.NOP, label=label, role=role)


class TestProgram:
    def test_len_and_iteration(self):
        program = Program([_nop(), _nop()])
        assert len(program) == 2
        assert all(i.opcode is Opcode.NOP for i in program)

    def test_indexing(self):
        add = Instruction(Opcode.ADD, dest=reg("eax"), src=imm(1))
        program = Program([_nop(), add])
        assert program[1] is add

    def test_label_table(self):
        program = Program([_nop("start"), _nop(), _nop("end")])
        assert program.labels == {"start": 0, "end": 2}

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            Program([_nop("x"), _nop("x")])

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(AssemblyError, match="undefined branch target"):
            Program([Instruction(Opcode.JMP, target="missing")])

    def test_label_index_missing(self):
        program = Program([_nop()])
        with pytest.raises(AssemblyError, match="not defined"):
            program.label_index("ghost")

    def test_count_role(self):
        program = Program([_nop(role="test"), _nop(), _nop(role="test")])
        assert program.count_role("test") == 2

    def test_concatenate(self):
        first = Program([_nop("a")])
        second = Program([_nop("b")])
        joined = Program.concatenate([first, second], name="joined")
        assert len(joined) == 2
        assert joined.labels == {"a": 0, "b": 1}

    def test_concatenate_duplicate_labels_rejected(self):
        first = Program([_nop("a")])
        second = Program([_nop("a")])
        with pytest.raises(AssemblyError):
            Program.concatenate([first, second])

    def test_to_text(self):
        program = Program([_nop("here")])
        assert program.to_text() == "here: nop"
