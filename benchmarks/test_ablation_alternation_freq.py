"""Ablation: the alternation frequency is a free parameter.

Section III: the alternation frequency "can be adjusted in software by
changing the number of A and B events per iteration", letting the
operator dodge noisy parts of the spectrum.  The *metric* must not
depend on the choice: per-pair energy divides out the pair rate.  This
ablation measures ADD/LDL2 at 40/80/160 kHz and checks the SAVAT is
stable even though band power and inst_loop_count change several-fold.
"""

from conftest import write_artifact

from repro.core.savat import MeasurementConfig, measure_savat

FREQUENCIES_HZ = (40e3, 80e3, 160e3)


def _sweep(machine):
    results = {}
    for frequency in FREQUENCIES_HZ:
        config = MeasurementConfig(alternation_frequency_hz=frequency)
        results[frequency] = measure_savat(machine, "ADD", "LDL2", config)
    return results


def test_ablation_alternation_frequency(benchmark, core2duo_10cm):
    results = benchmark.pedantic(_sweep, args=(core2duo_10cm,), rounds=1, iterations=1)
    lines = [
        "Ablation: SAVAT vs alternation frequency (ADD/LDL2, Core 2 Duo 10 cm)",
        "",
        f"{'freq':>8} {'inst_loop_count':>16} {'band power (W)':>16} {'SAVAT (zJ)':>12}",
    ]
    for frequency, result in results.items():
        lines.append(
            f"{frequency / 1e3:>6.0f}k {result.plan.spec.inst_loop_count:>16} "
            f"{result.signal_band_power_w:>16.3e} {result.savat_zj:>12.2f}"
        )
    text = "\n".join(lines)
    path = write_artifact("ablation_alternation_freq.txt", text)
    print(f"\n{text}\n-> {path}")

    values = [result.savat_zj for result in results.values()]
    assert max(values) < 1.4 * min(values)
    counts = [result.plan.spec.inst_loop_count for result in results.values()]
    assert max(counts) > 3 * min(counts)  # the knob really moved
