"""Ablation: the +/-1 kHz integration band.

Section IV integrates the spectrum "from 1 kHz below to 1 kHz above the
alternation frequency" because the real alternation frequency shifts and
drifts (Figure 7).  This ablation measures a jittery ADD/LDM capture
with a single 2 Hz bin at exactly 80 kHz versus the paper's band, and
shows the narrow measurement loses most of the dispersed signal.
"""

import numpy as np
from conftest import write_artifact

from repro.core.savat import MeasurementConfig, _plan_pair, simulate_alternation_period
from repro.em.synthesis import JitterModel, synthesize_measurement
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.isa.events import get_event


def _band_vs_bin(machine) -> tuple[float, float]:
    plan = _plan_pair(machine, get_event("ADD"), get_event("LDM"), 80e3)
    trace, plan = simulate_alternation_period(machine, plan)
    rng = np.random.default_rng(16)
    signal = synthesize_measurement(
        trace,
        machine.coupling,
        duration_s=0.5,
        rng=rng,
        jitter=JitterModel(period_sigma=2e-3, drift_sigma=2e-4),
    )
    analyzer = SpectrumAnalyzer(rbw_hz=2.0, environment=None)
    spectrum = analyzer.measure(signal)
    band = spectrum.band_power_w(80e3, 1e3)
    single_bin = spectrum.band_power_w(80e3, 1.0)
    return band, single_bin


def test_ablation_band(benchmark, core2duo_10cm):
    band, single_bin = benchmark.pedantic(
        _band_vs_bin, args=(core2duo_10cm,), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "Ablation: +/-1 kHz band vs a single bin at exactly 80 kHz",
            "",
            f"band power (+/-1 kHz):  {band:.3e} W",
            f"single 2 Hz bin:        {single_bin:.3e} W",
            f"fraction captured by the single bin: {single_bin / band:.1%}",
        ]
    )
    path = write_artifact("ablation_band.txt", text)
    print(f"\n{text}\n-> {path}")

    # Drift/shift disperse the signal: a single bin misses most of it.
    assert single_bin < 0.5 * band
