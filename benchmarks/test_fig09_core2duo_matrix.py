"""Figure 9: the full 11x11 pairwise SAVAT matrix, Core 2 Duo at 10 cm.

The headline result.  Runs the complete measurement campaign through the
full pipeline and compares against the published matrix: shape agreement
(who is distinguishable from whom, by roughly what factor), the
diagonal-minimality validity check, and the ~5% repeatability the paper
reports.
"""

from conftest import get_campaign, write_artifact

from repro.analysis.report import experiment_report
from repro.machines.reference_data import CORE2DUO_10CM


def test_fig09_core2duo_matrix(benchmark):
    campaign = benchmark.pedantic(
        get_campaign, args=("core2duo", 0.10), rounds=1, iterations=1
    )
    report = experiment_report(campaign, CORE2DUO_10CM)
    path = write_artifact("fig09_core2duo_matrix.txt", report)
    print(f"\n{report}\n-> {path}")

    stats = campaign.shape_agreement(CORE2DUO_10CM.values_zj)
    assert stats["spearman"] > 0.85
    assert stats["pearson"] > 0.80
    assert stats["mean_relative_error"] < 0.35

    # Validity: diagonal (A/A) entries are the smallest in their rows
    # and columns (with the paper's tolerance for near-ties).
    rows, columns = campaign.diagonal_minimality(tolerance_zj=0.3)
    assert rows >= 10
    assert columns >= 10

    # Repeatability: std/mean around the paper's 0.05.
    assert 0.01 < campaign.std_over_mean() < 0.10
