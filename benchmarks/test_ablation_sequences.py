"""Ablation: the additive sequence-SAVAT estimate vs real measurement.

Section III's "combination" discussion proposes summing single-
instruction SAVATs to estimate a sequence pair's SAVAT, while warning
the estimate is imprecise because instructions overlap and reorder.
This ablation measures several sequence pairs directly (sequences in
the test slots) and compares against the additive estimate from the
pairwise campaign.
"""

import numpy as np
from conftest import get_campaign, write_artifact
from scipy import stats

from repro.core.sequences import estimate_sequence_savat, measure_sequence_savat

SEQUENCE_PAIRS = (
    (("ADD",), ("DIV",)),
    (("ADD", "ADD"), ("DIV", "DIV")),
    (("MUL",), ("LDL2",)),
    (("MUL", "MUL"), ("LDL2", "LDL2")),
    (("ADD", "MUL"), ("ADD", "MUL")),
)


def _run(machine):
    campaign = get_campaign("core2duo", 0.10)
    rows = []
    for sequence_a, sequence_b in SEQUENCE_PAIRS:
        measured = measure_sequence_savat(machine, sequence_a, sequence_b).measured_zj
        estimated = estimate_sequence_savat(campaign, sequence_a, sequence_b)
        rows.append((sequence_a, sequence_b, measured, estimated))
    return rows


def test_ablation_sequences(benchmark, core2duo_10cm):
    rows = benchmark.pedantic(_run, args=(core2duo_10cm,), rounds=1, iterations=1)
    lines = [
        "Ablation: additive sequence-SAVAT estimate vs direct measurement",
        "",
        f"{'A sequence':>16} {'B sequence':>16} {'measured':>10} {'estimate':>10}",
    ]
    for sequence_a, sequence_b, measured, estimated in rows:
        lines.append(
            f"{'+'.join(sequence_a):>16} {'+'.join(sequence_b):>16} "
            f"{measured:>10.2f} {estimated:>10.2f}"
        )
    text = "\n".join(lines)
    path = write_artifact("ablation_sequences.txt", text)
    print(f"\n{text}\n-> {path}")

    measured = np.array([row[2] for row in rows])
    estimated = np.array([row[3] for row in rows])
    # The estimate tracks the measurement's ordering (the paper expects
    # it to be a *good but imprecise* proxy).
    assert stats.spearmanr(measured, estimated).statistic > 0.7
    # Doubling the differing instructions raises both.
    assert measured[1] > measured[0]
    assert estimated[1] > estimated[0]
