"""Figure 16: selected pairings measured at 50 cm and 100 cm.

The distance study's headline chart: SAVAT drops sharply from 10 cm but
little between 50 cm and 100 cm, and at range the pairings that include
off-chip activity dominate while DIV's advantage over other arithmetic
nearly vanishes.
"""

from conftest import get_campaign, write_artifact

from repro.analysis.visualize import bar_chart
from repro.core.campaign import selected_pairings_means
from repro.machines.reference_data import SELECTED_PAIRINGS


def _both_campaigns():
    return get_campaign("core2duo", 0.50), get_campaign("core2duo", 1.00)


def test_fig16_distance_bars(benchmark):
    campaign_50, campaign_100 = benchmark.pedantic(
        _both_campaigns, rounds=1, iterations=1
    )
    rows_50 = selected_pairings_means(campaign_50, SELECTED_PAIRINGS)
    rows_100 = selected_pairings_means(campaign_100, SELECTED_PAIRINGS)
    chart = (
        bar_chart(rows_50, title="Figure 16 (50 cm): selected pairings")
        + "\n\n"
        + bar_chart(rows_100, title="Figure 16 (100 cm): selected pairings")
    )
    path = write_artifact("fig16_distance_bars.txt", chart)
    print(f"\n{chart}\n-> {path}")

    near = get_campaign("core2duo", 0.10)
    # Sharp drop from 10 cm ...
    assert campaign_50.cell("ADD", "LDM") < 0.7 * near.cell("ADD", "LDM")
    # ... but little change from 50 cm to 100 cm.
    assert campaign_100.cell("ADD", "LDM") > 0.6 * campaign_50.cell("ADD", "LDM")

    # Off-chip pairings now dominate on-chip ones.
    for campaign in (campaign_50, campaign_100):
        assert campaign.cell("ADD", "LDM") > campaign.cell("ADD", "LDL2")
        assert campaign.cell("STL2", "STM") > campaign.cell("STL1", "STL2")

    # DIV's advantage over other arithmetic is now very small.
    div_ratio_far = campaign_100.cell("ADD", "DIV") / campaign_100.cell("ADD", "MUL")
    div_ratio_near = near.cell("ADD", "DIV") / near.cell("ADD", "MUL")
    assert div_ratio_far < div_ratio_near
    assert div_ratio_far < 1.6
