"""Ablation: why the EM model needs multiple field modes.

DESIGN.md's coupling model gives each component a multi-dimensional
(mode) coupling so that incoherent carriers can make LDM and LDL2 both
"equally far" from ADD yet far from each other — the paper's
"their fields differ" observation.  A rank-1 (single-mode) model cannot
express that geometry; this ablation quantifies the loss.
"""

import numpy as np
from conftest import write_artifact
from scipy import stats

from repro.machines.calibration import calibrate
from repro.machines.catalog import CORE2DUO
from repro.machines.reference_data import CORE2DUO_10CM


def _fit_quality(num_modes: int) -> dict[str, float]:
    calibration = calibrate(CORE2DUO, CORE2DUO_10CM, num_modes=num_modes)
    predicted = calibration.predicted_matrix_zj()
    reference = CORE2DUO_10CM.symmetrized()
    upper = np.triu_indices(11, 1)
    return {
        "spearman": float(stats.spearmanr(predicted[upper], reference[upper]).statistic),
        "relative_error": float(
            np.mean(np.abs(predicted[upper] - reference[upper]) / reference[upper])
        ),
        "ldm_ldl2": float(predicted[0, 2]),
    }


def test_ablation_coupling_modes(benchmark):
    results = benchmark.pedantic(
        lambda: {modes: _fit_quality(modes) for modes in (1, 3)},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: field modes in the coupling model (Core 2 Duo, 10 cm)", ""]
    lines.append(f"{'modes':>6} {'spearman':>10} {'rel. error':>12} {'LDM/LDL2 (ref 7.8)':>20}")
    for modes, quality in results.items():
        lines.append(
            f"{modes:>6} {quality['spearman']:>10.3f} "
            f"{quality['relative_error']:>12.3f} {quality['ldm_ldl2']:>20.2f}"
        )
    text = "\n".join(lines)
    path = write_artifact("ablation_coupling_modes.txt", text)
    print(f"\n{text}\n-> {path}")

    # The multi-mode model must fit strictly better...
    assert results[3]["relative_error"] < results[1]["relative_error"]
    # ...and capture the LDM-vs-LDL2 separation the rank-1 model flattens.
    reference_value = CORE2DUO_10CM.symmetrized()[0, 2]
    error_3 = abs(results[3]["ldm_ldl2"] - reference_value)
    error_1 = abs(results[1]["ldm_ldl2"] - reference_value)
    assert error_3 < error_1
