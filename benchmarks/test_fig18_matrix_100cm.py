"""Figure 18: the full matrix at 100 cm (Core 2 Duo)."""

from conftest import get_campaign, write_artifact

from repro.analysis.report import experiment_report
from repro.analysis.visualize import grayscale_matrix
from repro.machines.reference_data import CORE2DUO_100CM


def test_fig18_matrix_100cm(benchmark):
    campaign = benchmark.pedantic(
        get_campaign, args=("core2duo", 1.00), rounds=1, iterations=1
    )
    report = experiment_report(campaign, CORE2DUO_100CM)
    chart = grayscale_matrix(
        campaign.mean(), campaign.events, "Figure 18: SAVAT at 100 cm"
    )
    path = write_artifact("fig18_matrix_100cm.txt", report + "\n\n" + chart)
    print(f"\n{report}\n\n{chart}\n-> {path}")

    stats = campaign.shape_agreement(CORE2DUO_100CM.values_zj)
    assert stats["spearman"] > 0.6
    assert stats["mean_relative_error"] < 0.4

    # "off-chip memory accesses are now (by far) the most
    # attacker-distinguishable type of instruction/event"
    mean = campaign.mean()
    for row in range(2):  # LDM, STM rows
        assert mean[row, 2:].min() > mean[4:, 4:].mean()

    # L2 pairings collapsed much more than off-chip ones relative to 10 cm.
    near = get_campaign("core2duo", 0.10)
    l2_drop = campaign.cell("ADD", "LDL2") / near.cell("ADD", "LDL2")
    offchip_drop = campaign.cell("ADD", "LDM") / near.cell("ADD", "LDM")
    assert l2_drop < offchip_drop
