"""Figures 2/3: why the naive methodology fails and the alternation wins.

Section III's argument, regenerated as numbers: the naive record-and-
subtract approach is wrecked by (1) vertical error proportional to the
whole signal, (2) time misalignment when A and B have different
latencies, and (3) finite real-time sampling — while the alternation
methodology concentrates the A/B difference at a known low frequency
and measures it within a few percent.
"""

from conftest import write_artifact

from repro.core.naive import compare_methodologies


def _run(machine):
    return compare_methodologies(machine, "ADD", "DIV", trials=5, seed=20141213)


def test_fig02_naive_vs_alternation(benchmark, core2duo_10cm):
    comparison = benchmark.pedantic(
        _run, args=(core2duo_10cm,), rounds=1, iterations=1
    )
    lines = [
        "Figure 2/3: naive vs alternation methodology (ADD/DIV, Core 2 Duo, 10 cm)",
        "",
        f"ground truth (noise-free SAVAT):       {comparison.true_difference_zj:12.2f} zJ",
        f"naive, perfect instrument (misalign.): {comparison.noiseless_subtraction_zj:12.2f} zJ"
        f"  ({comparison.misalignment_overestimate:.0f}x overestimate)",
        f"naive, 40 GS/s scope (mean of trials): {comparison.naive_estimates_zj.mean():12.2f} zJ",
        f"alternation (mean of trials):          {comparison.alternation_estimates_zj.mean():12.2f} zJ",
        "",
        f"naive relative error:       {comparison.naive_relative_error:10.1f}",
        f"alternation relative error: {comparison.alternation_relative_error:10.3f}",
        f"error ratio (naive/alt):    {comparison.error_ratio:10.0f}x",
    ]
    text = "\n".join(lines)
    path = write_artifact("fig02_naive_vs_alternation.txt", text)
    print(f"\n{text}\n-> {path}")

    assert comparison.misalignment_overestimate > 50
    assert comparison.error_ratio > 10
    assert comparison.alternation_relative_error < 0.2
