"""Figure 8: recorded spectrum for the 80 kHz ADD/ADD alternation.

The same-instruction measurement is the methodology's error estimate:
with no real A/B difference, what remains is the instrument's
sensitivity floor (~6e-18 W/Hz), external radio signals, and the weak
residual of imperfectly matched halves.  The regenerated spectrum shows
the floor and the paper's annotated "weak external radio signal", and
the A/A band power lands far below the ADD/LDM signal of Figure 7.
"""

import numpy as np
from conftest import write_artifact

from repro.analysis.visualize import spectrum_plot
from repro.core.savat import MeasurementConfig, measure_savat
from repro.instruments.analyzer_path import use_reference_analyzer


def _measure_pair(machine, event_b):
    config = MeasurementConfig(method="full", duration_s=0.5, rbw_hz=2.0)
    rng = np.random.default_rng(8)
    # The figure inspects the 81.45 kHz interferer outside the +/-1 kHz
    # band, so it needs the full-sweep reference analyzer.
    with use_reference_analyzer():
        return measure_savat(machine, "ADD", event_b, config, rng=rng)


def test_fig08_spectrum_add_add(benchmark, core2duo_10cm):
    result = benchmark.pedantic(
        _measure_pair, args=(core2duo_10cm, "ADD"), rounds=1, iterations=1
    )
    spectrum = result.spectrum.slice(78e3, 82e3)
    chart = spectrum_plot(
        spectrum.freqs_hz,
        spectrum.psd_w_per_hz,
        title="Figure 8: 80 kHz ADD/ADD alternation spectrum (W/Hz)",
    )
    path = write_artifact("fig08_spectrum_add_add.txt", chart)
    print(f"\n{chart}\n-> {path}")

    # The sensitivity floor sits around 6e-18 W/Hz.
    floor = np.median(spectrum.psd_w_per_hz)
    np.testing.assert_allclose(floor, 6e-18, rtol=0.5)

    # The weak external radio signal is visible above the floor,
    # outside the measurement band (paper annotates it near 81.5 kHz).
    interferer_peak = spectrum.peak_hz(81.2e3, 81.8e3)
    interferer_level = spectrum.psd_w_per_hz[
        np.argmin(np.abs(spectrum.freqs_hz - interferer_peak))
    ]
    assert interferer_level > 3 * floor

    # The A/A *measurement* (noise-corrected, per pair) lands near the
    # error floor, far below a real A/B signal — raw band powers differ
    # less because both include the same integrated noise.
    ldm_result = _measure_pair(core2duo_10cm, "LDM")
    assert ldm_result.savat_zj > 3 * result.savat_zj
    add_add_band = spectrum.band_power_w(80e3, 1e3)
    expected_noise = 6e-18 * 2e3
    assert add_add_band < 3 * expected_noise
