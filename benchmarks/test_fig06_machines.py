"""Figure 6: the three laptop systems measured in the case study."""

from conftest import write_artifact

from repro.machines.catalog import MACHINES


def _build_table() -> str:
    lines = [f"{'Processor':<20} {'L1 Data Cache':<16} L2 Cache"]
    for spec in MACHINES.values():
        l1 = spec.l1_geometry
        l2 = spec.l2_geometry
        lines.append(
            f"{spec.display_name:<20} "
            f"{l1.size_bytes // 1024} KB, {l1.ways} way{'':<6} "
            f"{l2.size_bytes // 1024} KB, {l2.ways} way"
        )
    return "\n".join(lines)


def test_fig06_machine_table(benchmark):
    table = benchmark(_build_table)
    path = write_artifact("fig06_machines.txt", table)
    print(f"\n{table}\n-> {path}")
    assert "Intel Core 2 Duo" in table
    assert "4096 KB, 16 way" in table
    assert "AMD Turion X2" in table
