"""Figure 11: bar chart of selected instruction pairings (Core 2 Duo)."""

from conftest import get_campaign, write_artifact

from repro.analysis.visualize import bar_chart
from repro.core.campaign import selected_pairings_means
from repro.machines.reference_data import CORE2DUO_10CM, SELECTED_PAIRINGS


def test_fig11_selected_pairs(benchmark):
    campaign = get_campaign("core2duo", 0.10)
    rows = benchmark(selected_pairings_means, campaign, SELECTED_PAIRINGS)
    chart = bar_chart(rows, title="Figure 11: selected pairings, Core 2 Duo 10 cm")
    path = write_artifact("fig11_selected_pairs.txt", chart)
    print(f"\n{chart}\n-> {path}")

    values = dict(rows)
    reference = {
        f"{a}/{b}": CORE2DUO_10CM.cell(a, b) for a, b in SELECTED_PAIRINGS
    }
    # The chart's qualitative story: STL2/DIV and STL2/STM tower over
    # ADD/ADD and ADD/MUL, with ADD/LDM and ADD/LDL2 in between.
    assert values["STL2/DIV"] > 4 * values["ADD/ADD"]
    assert values["STL2/STM"] > 4 * values["ADD/MUL"]
    assert values["ADD/ADD"] < values["ADD/LDL2"] < values["STL2/DIV"]

    # Rank agreement with the paper's bars.
    measured_order = sorted(values, key=values.get)
    reference_order = sorted(reference, key=reference.get)
    # Allow local swaps; anchor the extremes.
    assert measured_order[-1] == reference_order[-1] == "STL2/STM" or (
        measured_order[-1] in ("STL2/DIV", "STL2/STM")
    )
    assert measured_order[0] in ("ADD/ADD", "ADD/MUL")
