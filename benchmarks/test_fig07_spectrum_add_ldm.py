"""Figure 7: recorded spectrum for the 80 kHz ADD/LDM alternation.

Regenerates the paper's spectrum through the full signal path: simulate
one alternation period, tile it with loop jitter over a real capture
interval, run the spectrum-analyzer model, and verify the features the
paper annotates — the strong peak near (but shifted from) 80 kHz, the
frequency dispersion that stays inside the +/-1 kHz integration band,
and the ~6e-18 W/Hz noise floor.
"""

import numpy as np
from conftest import write_artifact

from repro.analysis.visualize import spectrum_plot
from repro.core.savat import MeasurementConfig, measure_savat
from repro.instruments.analyzer_path import use_reference_analyzer


def _measure(core2duo_10cm):
    config = MeasurementConfig(method="full", duration_s=0.5, rbw_hz=2.0)
    rng = np.random.default_rng(7)
    # The figure plots a 4 kHz window around the carrier, so it needs
    # the full-sweep reference analyzer, not the band-limited one.
    with use_reference_analyzer():
        return measure_savat(core2duo_10cm, "ADD", "LDM", config, rng=rng)


def test_fig07_spectrum_add_ldm(benchmark, core2duo_10cm):
    result = benchmark.pedantic(_measure, args=(core2duo_10cm,), rounds=1, iterations=1)
    spectrum = result.spectrum.slice(78e3, 82e3)
    chart = spectrum_plot(
        spectrum.freqs_hz,
        spectrum.psd_w_per_hz,
        title="Figure 7: 80 kHz ADD/LDM alternation spectrum (W/Hz)",
    )
    path = write_artifact("fig07_spectrum_add_ldm.txt", chart)
    print(f"\n{chart}\n-> {path}")

    # Peak is near, but not exactly at, the intended 80 kHz (Fig. 7
    # shows a ~400 Hz shift), and within the +/-1 kHz band.
    peak = spectrum.peak_hz()
    assert abs(peak - 80e3) < 1e3
    assert peak != 80e3

    # The peak towers over the out-of-band floor.
    floor = np.median(spectrum.psd_w_per_hz)
    assert spectrum.psd_w_per_hz.max() > 50 * floor

    # The in-band power dominates: widening beyond +/-1 kHz adds only
    # more noise-floor integral, no extra signal.
    floor_psd = 6e-18
    band = spectrum.band_power_w(80e3, 1e3) - floor_psd * 2e3
    wide = spectrum.band_power_w(80e3, 1.8e3) - floor_psd * 3.6e3
    assert band > 0.85 * wide
