"""Microbenchmarks for the vectorized simulation fast path.

Times the three layers the fast path accelerates, in isolation and end
to end, on the fast and the scalar reference implementations:

* **cold cell** — a complete cold single-cell SAVAT measurement (CPI
  probes, priming, warm-up + measured period, projection) for an
  arithmetic pair (ADD/SUB) and the worst-case off-chip pair (LDM/STM);
* **priming** — ``prime_alternation_steady_state`` alone, full size;
* **finish** — ``ActivityRecorder.finish`` alone on a synthetic event
  population shaped like a measured period (mostly single-cycle events
  plus a minority of multi-cycle windows);
* **full cell** — a complete ``method="full"`` cell (10 repetitions of
  synthesis + spectrum sweep + band integration at the paper's 1 s /
  1 Hz RBW geometry) on the band-limited analyzer versus the
  full-spectrum reference analyzer, including their per-sample
  agreement;
* **study** — a cold 2-distance ``run_study`` (shared kernel-trace
  cache) versus a cold single campaign with the trace cache off; the
  shared cache must keep the whole study under 2x the single-campaign
  cost, because the second distance reuses every trace;
* **shm_campaign** — a pooled mixed-cost ``method="full"`` campaign
  over the shared-memory sample plane versus the same pool with pickle
  transport and a serial reference: samples must be bit-identical
  across all transports and schedules, the shared arena must keep
  >=90% of the sample bytes out of pickle (measured by the campaign's
  own IPC counters), and the shm transport must not cost wall-clock
  over the pickle transport.  Worker-count speedups are recorded but
  not gated — they depend on the container's core count (recorded in
  the results), and this container may be single-core.

Results are written to ``BENCH_simulation.json``.  With ``--campaign``
the cold, cache-disabled, serial Figure 9-sized campaign (11x11 events,
2 repetitions, seed 2014) is also run and compared against the pre-PR
baseline measured on the same container, then re-run with every
observability output enabled (JSONL trace, Prometheus metrics file,
progress line) to measure the instrumentation overhead against its
<5% budget.  With ``--check`` the cold single-cell, priming-only,
full-cell, and study latencies are compared against a checked-in
baseline and the process exits non-zero on a >1.5x regression.

Usage (from the repository root):

    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py
    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py --campaign
    PYTHONPATH=src python benchmarks/perf/run_benchmarks.py \
        --check benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import savat  # noqa: E402
from repro.core.executor import execute_campaign  # noqa: E402
from repro.core.savat import (  # noqa: E402
    MeasurementConfig,
    clear_cpi_cache,
    measure_savat,
    measure_savat_samples,
)
from repro.instruments.analyzer_path import (  # noqa: E402
    use_band_analyzer,
    use_reference_analyzer,
)
from repro.isa.events import PAPER_EVENTS, get_event  # noqa: E402
from repro.machines.calibrated import load_calibrated_machine  # noqa: E402
from repro.obs import CampaignObservability  # noqa: E402
from repro.uarch.activity import ActivityRecorder  # noqa: E402
from repro.uarch.components import COMPONENT_ORDER  # noqa: E402
from repro.uarch.fastpath import use_fast_path, use_reference_path  # noqa: E402

#: Pre-PR wall-clock of the cold, cache-disabled, *serial* Figure 9-sized
#: campaign (11x11 events, 2 repetitions, seed 2014, core2duo at 10 cm)
#: measured on this container immediately before the fast path landed.
PRE_PR_CAMPAIGN_SECONDS = 167.7455028710001

#: Sum of all campaign samples from that same pre-PR run — the fast path
#: must reproduce it bit-for-bit.
PRE_PR_CAMPAIGN_CHECKSUM = 768.9661831795673

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_simulation.json"
DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / "baseline.json"

#: Regression threshold for --check: fail when a cold single-cell or
#: priming-only fast latency exceeds the baseline by more than this
#: factor.  Best-of-N timings on an otherwise idle container are stable
#: to a few percent, so 1.5x catches real regressions without flaking.
REGRESSION_FACTOR = 1.5

#: Maximum acceptable slowdown of the cold campaign when every
#: observability output (JSONL trace, metrics file, progress line) is
#: enabled, relative to the registry-only default.
OBSERVABILITY_OVERHEAD_BUDGET = 0.05


def _timed(callable_, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``callable_()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def bench_cold_cell(machine, pair: tuple[str, str], repeats: int) -> dict:
    """Cold single-cell measurement: CPI probes + priming + simulation."""

    def cold(path_manager):
        clear_cpi_cache()
        with path_manager():
            measure_savat(machine, *pair)

    fast = _timed(lambda: cold(use_fast_path), repeats)
    reference = _timed(lambda: cold(use_reference_path), repeats)
    return {"fast_s": fast, "reference_s": reference, "speedup": reference / fast}


def bench_priming(machine, pair: tuple[str, str], repeats: int) -> dict:
    """Steady-state priming alone, at the pair's real loop count."""
    clear_cpi_cache()
    plan = savat._plan_pair(machine, get_event(pair[0]), get_event(pair[1]), 80e3)
    spec = plan.spec
    core = machine.make_core()

    def prime(path_manager):
        with path_manager():
            savat.prime_alternation_steady_state(core, spec)

    fast = _timed(lambda: prime(use_fast_path), repeats)
    reference = _timed(lambda: prime(use_reference_path), repeats)
    return {
        "inst_loop_count": spec.inst_loop_count,
        "fast_s": fast,
        "reference_s": reference,
        "speedup": reference / fast,
    }


def bench_finish(repeats: int) -> dict:
    """Trace materialization alone, on a period-shaped event population."""
    rng = np.random.default_rng(0)
    num_cycles = 60_000
    single = 400_000
    windows = 8_000

    def build() -> ActivityRecorder:
        recorder = ActivityRecorder(clock_hz=2.4e9)
        for start, component in zip(
            rng.integers(0, num_cycles, size=single).tolist(),
            rng.integers(0, len(COMPONENT_ORDER), size=single).tolist(),
        ):
            recorder.add(COMPONENT_ORDER[component], start, 1, 0.5)
        for start, component in zip(
            rng.integers(0, num_cycles, size=windows).tolist(),
            rng.integers(0, len(COMPONENT_ORDER), size=windows).tolist(),
        ):
            recorder.add(COMPONENT_ORDER[component], start, 14, 0.125)
        return recorder

    recorder = build()
    elapsed = _timed(lambda: recorder.finish(num_cycles), repeats)
    return {
        "events": single + windows,
        "num_cycles": num_cycles,
        "finish_s": elapsed,
        "events_per_second": (single + windows) / elapsed,
    }


def bench_full_cell(machine, pair: tuple[str, str], repeats: int) -> dict:
    """One ``method="full"`` cell, paper-scale, band vs reference analyzer.

    The period is simulated once (shared by both paths, as the campaign
    executor shares it across repetitions); the timed region is the 10
    repetitions of synthesis + spectrum sweep + band integration.  The
    reference analyzer is timed over a single pass — its full-length
    Bluestein transforms make every pass cost tens of seconds.
    """
    repetitions = 10
    config = MeasurementConfig(method="full")
    clear_cpi_cache()
    plan = savat._plan_pair(machine, get_event(pair[0]), get_event(pair[1]), 80e3)
    trace, plan = savat.simulate_alternation_period(machine, plan)

    def cell():
        return measure_savat_samples(
            machine, pair[0], pair[1], config,
            rng=np.random.default_rng(2014),
            trace=trace, plan=plan, repetitions=repetitions,
        )

    with use_band_analyzer():
        band_samples = cell()  # warm the plan/window/workspace caches
        fast = _timed(cell, repeats)
    with use_reference_analyzer():
        started = time.perf_counter()
        reference_samples = cell()
        reference = time.perf_counter() - started
    max_rel_diff = float(
        np.max(np.abs(band_samples - reference_samples) / np.abs(reference_samples))
    )
    return {
        "repetitions": repetitions,
        "fast_s": fast,
        "reference_s": reference,
        "speedup": reference / fast,
        "max_rel_diff": max_rel_diff,
        "agreement_ok": bool(max_rel_diff <= 1e-9),
    }


#: Event subset and distances for the study benchmark — big enough for
#: the trace-production cost to dominate, small enough to run on every
#: benchmark invocation (unlike the full 11x11 --campaign stage).
STUDY_EVENTS = ("ADD", "SUB", "LDM", "STM")
STUDY_DISTANCES = (0.10, 0.50)
STUDY_RATIO_BUDGET = 2.0


def bench_study(machine, repeats: int) -> dict:
    """Cold 2-distance study (shared trace cache) vs cold single campaign.

    The acceptance bar of the trace cache: a study over two distances
    must cost **less than 2x** one cold campaign, because only the
    first distance pays for ``prime``/``core_run`` — the second reuses
    every trace and runs just the per-distance measurement stage.
    """
    from repro.core.campaign import run_campaign
    from repro.core.study import run_study

    def single():
        clear_cpi_cache()
        run_campaign(
            machine,
            events=STUDY_EVENTS,
            repetitions=2,
            seed=2014,
            trace_cache=False,
        )

    single_s = _timed(single, repeats)

    study_s = float("inf")
    study = None
    for _ in range(repeats):
        clear_cpi_cache()
        started = time.perf_counter()
        candidate = run_study(
            ["core2duo"],
            list(STUDY_DISTANCES),
            events=STUDY_EVENTS,
            repetitions=2,
            seed=2014,
        )
        elapsed = time.perf_counter() - started
        if elapsed < study_s:
            study_s, study = elapsed, candidate

    cells = len(STUDY_EVENTS) ** 2
    second = study.matrices[1].metadata["execution"]["trace_cache"]
    ratio = study_s / single_s
    return {
        "2-distance": {
            "fast_s": study_s,
            "single_campaign_s": single_s,
            "ratio": ratio,
            "ratio_budget": STUDY_RATIO_BUDGET,
            "ratio_ok": bool(ratio < STUDY_RATIO_BUDGET),
            "trace_cache_totals": dict(study.trace_cache),
            "second_distance_all_hits": bool(
                second["misses"] == 0
                and second["memory_hits"] + second["disk_hits"] == cells
            ),
        }
    }


#: Event subset for the shm benchmark — a mixed-cost grid (cheap ALU
#: rows next to off-chip memory rows) small enough to run four transport
#: variants per invocation at ``method="full"`` repetition cost.
SHM_EVENTS = ("MUL", "ADD", "LDM")
SHM_REPETITIONS = 2
SHM_WORKERS = 4

#: Minimum fraction of worker-produced sample bytes that the shared
#: arena must keep out of pickle transport, per the campaign's own IPC
#: counters.
SHM_IPC_REDUCTION_FLOOR = 0.90

#: Maximum acceptable wall-clock ratio of the shm transport over the
#: pickle transport on the same pool: both variants run identical
#: simulations, so the transports themselves should be within noise of
#: each other even on a loaded container.
SHM_TRANSPORT_BUDGET = 1.25


def bench_shm_campaign(machine, repeats: int) -> dict:
    """Pooled mixed-cost campaign: shm sample plane vs pickle transport.

    Runs the same cold ``method="full"`` campaign four ways — serial,
    pooled with pickle transport, pooled over the shared-memory arena,
    and pooled over the arena with cost-aware scheduling — and gates on
    the properties that are independent of how many cores the container
    has: samples bit-identical across all four, >=90% of the sample
    bytes kept out of pickle (exact, from the IPC counters), no leaked
    ``/dev/shm`` segments, and shm transport no slower than pickle
    transport beyond noise.  Pool-vs-serial and cost-vs-rowmajor
    speedups are *recorded*, not gated: on a single-core container
    (``cores`` in the results) a process pool cannot beat serial
    wall-clock and submission order cannot change it, so those ratios
    only carry signal on multi-core hosts.
    """
    import os

    from repro.core.campaign import run_campaign
    from repro.core.shm import SEGMENT_PREFIX, list_segments, shm_available

    config = MeasurementConfig(method="full")

    def campaign(workers: int, shm: bool, schedule: str):
        clear_cpi_cache()
        started = time.perf_counter()
        matrix = run_campaign(
            machine,
            config=config,
            events=SHM_EVENTS,
            repetitions=SHM_REPETITIONS,
            seed=2014,
            workers=workers,
            trace_cache=False,
            shm=shm,
            schedule=schedule,
        )
        return time.perf_counter() - started, matrix

    # One warm-up pass so forked workers inherit warm module caches and
    # the first timed variant is not penalized for import costs.
    campaign(0, False, "rowmajor")

    def best(workers: int, shm: bool, schedule: str):
        best_s, best_matrix = float("inf"), None
        for _ in range(repeats):
            elapsed, matrix = campaign(workers, shm, schedule)
            if elapsed < best_s:
                best_s, best_matrix = elapsed, matrix
        return best_s, best_matrix

    serial_s, serial = best(0, False, "rowmajor")
    pickle_s, pickled = best(SHM_WORKERS, False, "rowmajor")
    shm_s, shm_matrix = best(SHM_WORKERS, True, "rowmajor")
    cost_s, cost_matrix = best(SHM_WORKERS, True, "cost")

    def execution(matrix) -> dict:
        return matrix.metadata["execution"]

    ipc = execution(shm_matrix)["ipc"]
    moved = ipc["bytes_saved"] + ipc["sample_bytes"]
    reduction = ipc["bytes_saved"] / moved if moved else 0.0
    # Where the platform has no shm plane the campaign degrades to
    # pickle by design; the reduction gate only means something where
    # the plane can run at all.
    reduction_ok = reduction >= SHM_IPC_REDUCTION_FLOOR or not shm_available()
    identical = all(
        np.array_equal(serial.samples_zj, matrix.samples_zj)
        for matrix in (pickled, shm_matrix, cost_matrix)
    )
    transport_overhead = shm_s / pickle_s
    leaked = list_segments(SEGMENT_PREFIX) if shm_available() else []
    return {
        "mixed_full": {
            "fast_s": shm_s,
            "serial_s": serial_s,
            "pickle_pool_s": pickle_s,
            "cost_pool_s": cost_s,
            "cores": os.cpu_count(),
            "workers": SHM_WORKERS,
            "shm_used": bool(execution(shm_matrix)["shm"]["enabled"]),
            "ipc_bytes_saved": ipc["bytes_saved"],
            "ipc_sample_bytes": ipc["sample_bytes"],
            "ipc_reduction": reduction,
            "ipc_reduction_floor": SHM_IPC_REDUCTION_FLOOR,
            "ipc_reduction_ok": bool(reduction_ok),
            "samples_identical": bool(identical),
            "transport_overhead": transport_overhead,
            "transport_budget": SHM_TRANSPORT_BUDGET,
            "transport_ok": bool(transport_overhead <= SHM_TRANSPORT_BUDGET),
            "pool_speedup_vs_serial": serial_s / shm_s,
            "cost_speedup_vs_rowmajor": shm_s / cost_s,
            "rowmajor_tail_s": execution(shm_matrix)["scheduling"]["tail_seconds"],
            "cost_tail_s": execution(cost_matrix)["scheduling"]["tail_seconds"],
            "leaked_segments": leaked,
            "no_leaked_segments": not leaked,
        }
    }


def bench_campaign(machine) -> dict:
    """Cold, cache-disabled, serial Figure 9-sized campaign (fast path)."""
    clear_cpi_cache()
    with use_fast_path():
        started = time.perf_counter()
        samples, _stats = execute_campaign(
            machine,
            list(PAPER_EVENTS),
            repetitions=2,
            seed=2014,
            workers=1,
            cache=None,
        )
        elapsed = time.perf_counter() - started
    checksum = float(samples.sum())
    return {
        "fast_s": elapsed,
        "pre_pr_reference_s": PRE_PR_CAMPAIGN_SECONDS,
        "speedup_vs_pre_pr": PRE_PR_CAMPAIGN_SECONDS / elapsed,
        "samples_checksum": checksum,
        "pre_pr_samples_checksum": PRE_PR_CAMPAIGN_CHECKSUM,
        "checksum_matches_pre_pr": bool(
            abs(checksum - PRE_PR_CAMPAIGN_CHECKSUM)
            <= 1e-9 * abs(PRE_PR_CAMPAIGN_CHECKSUM)
        ),
        "observability": _bench_campaign_observability(machine, samples, elapsed),
    }


def _bench_campaign_observability(machine, plain_samples, plain_elapsed) -> dict:
    """The same cold campaign with every observability output enabled.

    The baseline run above carries the always-installed registry-only
    default, so the delta measured here is the cost of the optional
    outputs: the JSONL trace (one span pair per cell), the Prometheus
    metrics file, and the forced-on progress line (into a StringIO, so
    rendering cost is included but no terminal is needed).  The
    overhead is a best-of-two on both variants (one extra plain run,
    two instrumented runs): campaign-sized wall times on a shared
    container jitter by up to ~10% run to run, which is larger than
    the effect being measured, and best-of pairs under the same load
    recover the true delta.
    """

    def instrumented_run() -> tuple[float, "np.ndarray"]:
        clear_cpi_cache()
        with tempfile.TemporaryDirectory() as tmp:
            observability = CampaignObservability(
                trace=pathlib.Path(tmp) / "trace.jsonl",
                metrics_out=pathlib.Path(tmp) / "metrics.prom",
                progress=True,
                progress_stream=io.StringIO(),
            )
            with use_fast_path():
                started = time.perf_counter()
                samples, _stats = execute_campaign(
                    machine,
                    list(PAPER_EVENTS),
                    repetitions=2,
                    seed=2014,
                    workers=1,
                    cache=None,
                    observability=observability,
                )
                return time.perf_counter() - started, samples

    def plain_run() -> float:
        clear_cpi_cache()
        with use_fast_path():
            started = time.perf_counter()
            execute_campaign(
                machine,
                list(PAPER_EVENTS),
                repetitions=2,
                seed=2014,
                workers=1,
                cache=None,
            )
            return time.perf_counter() - started

    elapsed, samples = instrumented_run()
    second_elapsed, _ = instrumented_run()
    elapsed = min(elapsed, second_elapsed)
    plain_elapsed = min(plain_elapsed, plain_run())
    overhead = elapsed / plain_elapsed - 1.0
    return {
        "instrumented_s": elapsed,
        "overhead_fraction": overhead,
        "overhead_budget": OBSERVABILITY_OVERHEAD_BUDGET,
        "overhead_ok": bool(overhead < OBSERVABILITY_OVERHEAD_BUDGET),
        "samples_identical": bool(np.array_equal(samples, plain_samples)),
    }


def run(args) -> int:
    machine = load_calibrated_machine("core2duo", 0.10)
    results: dict = {
        "benchmark": "savat-simulation-fast-path",
        "machine": "core2duo@10cm",
        "repeats": args.repeats,
    }

    print("cold single-cell measurements (CPI probes + priming + period)...")
    results["cold_cell"] = {
        "ADD/SUB": bench_cold_cell(machine, ("ADD", "SUB"), args.repeats),
        "LDM/STM": bench_cold_cell(machine, ("LDM", "STM"), args.repeats),
    }
    for pair, numbers in results["cold_cell"].items():
        print(
            f"  {pair}: fast {numbers['fast_s']:.3f}s  "
            f"reference {numbers['reference_s']:.3f}s  "
            f"({numbers['speedup']:.1f}x)"
        )

    print("sweep priming in isolation...")
    results["priming"] = {"LDM/STM": bench_priming(machine, ("LDM", "STM"), args.repeats)}
    numbers = results["priming"]["LDM/STM"]
    print(
        f"  LDM/STM: fast {numbers['fast_s']:.3f}s  "
        f"reference {numbers['reference_s']:.3f}s  ({numbers['speedup']:.1f}x)"
    )

    print("trace materialization (finish) in isolation...")
    results["finish"] = bench_finish(args.repeats)
    print(
        f"  {results['finish']['events']} events -> "
        f"{results['finish']['finish_s']:.3f}s"
    )

    print("full signal-path cell (10 reps of synthesis + sweep; the")
    print("reference analyzer pass alone takes tens of seconds)...")
    results["full_cell"] = {
        "ADD/LDM": bench_full_cell(machine, ("ADD", "LDM"), args.repeats)
    }
    numbers = results["full_cell"]["ADD/LDM"]
    print(
        f"  ADD/LDM: band {numbers['fast_s']:.3f}s  "
        f"reference {numbers['reference_s']:.3f}s  "
        f"({numbers['speedup']:.1f}x); max rel diff "
        f"{numbers['max_rel_diff']:.2e} -> "
        f"{'ok' if numbers['agreement_ok'] else 'OVER BUDGET'}"
    )

    print("cold 2-distance study vs cold single campaign (trace cache)...")
    results["study"] = bench_study(machine, args.repeats)
    numbers = results["study"]["2-distance"]
    print(
        f"  study {numbers['fast_s']:.3f}s vs single campaign "
        f"{numbers['single_campaign_s']:.3f}s "
        f"(ratio {numbers['ratio']:.2f}, budget {numbers['ratio_budget']:.1f}) "
        f"-> {'ok' if numbers['ratio_ok'] else 'OVER BUDGET'}; "
        f"second distance all hits: {numbers['second_distance_all_hits']}"
    )

    print("pooled shm sample plane vs pickle transport (mixed-cost full method)...")
    results["shm_campaign"] = bench_shm_campaign(machine, args.repeats)
    numbers = results["shm_campaign"]["mixed_full"]
    print(
        f"  shm pool {numbers['fast_s']:.3f}s vs pickle pool "
        f"{numbers['pickle_pool_s']:.3f}s vs serial "
        f"{numbers['serial_s']:.3f}s ({numbers['cores']} core(s)); "
        f"ipc reduction {numbers['ipc_reduction']:.0%} "
        f"(floor {numbers['ipc_reduction_floor']:.0%}) -> "
        f"{'ok' if numbers['ipc_reduction_ok'] else 'UNDER FLOOR'}"
    )
    print(
        f"  cost schedule {numbers['cost_pool_s']:.3f}s "
        f"(tail {numbers['cost_tail_s']:.3f}s vs rowmajor "
        f"{numbers['rowmajor_tail_s']:.3f}s); samples identical: "
        f"{numbers['samples_identical']}; transport overhead "
        f"{numbers['transport_overhead']:.2f}x (budget "
        f"{numbers['transport_budget']:.2f}x) -> "
        f"{'ok' if numbers['transport_ok'] else 'OVER BUDGET'}; "
        f"leaked segments: {len(numbers['leaked_segments'])}"
    )

    if args.campaign:
        print("cold serial 11x11 campaign (this takes a while on the fast path,")
        print(f"and took {PRE_PR_CAMPAIGN_SECONDS:.1f}s before the fast path)...")
        results["campaign"] = bench_campaign(machine)
        numbers = results["campaign"]
        print(
            f"  fast {numbers['fast_s']:.1f}s vs pre-PR "
            f"{numbers['pre_pr_reference_s']:.1f}s "
            f"({numbers['speedup_vs_pre_pr']:.1f}x); checksum match: "
            f"{numbers['checksum_matches_pre_pr']}"
        )
        observability = numbers["observability"]
        print(
            f"  with trace+metrics+progress: "
            f"{observability['instrumented_s']:.1f}s "
            f"({observability['overhead_fraction']:+.1%} overhead, "
            f"budget {OBSERVABILITY_OVERHEAD_BUDGET:.0%}) -> "
            f"{'ok' if observability['overhead_ok'] else 'OVER BUDGET'}; "
            f"samples identical: {observability['samples_identical']}"
        )

    output = pathlib.Path(args.output)
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.update_baseline:
        baseline = {
            stage: {
                pair: {"fast_s": numbers["fast_s"]}
                for pair, numbers in results[stage].items()
            }
            for stage in (
                "cold_cell", "priming", "full_cell", "study", "shm_campaign",
            )
        }
        DEFAULT_BASELINE.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {DEFAULT_BASELINE}")

    if args.check is not None:
        baseline = json.loads(pathlib.Path(args.check).read_text())
        failed = False
        for stage in (
            "cold_cell", "priming", "full_cell", "study", "shm_campaign",
        ):
            for pair, numbers in baseline.get(stage, {}).items():
                allowed = numbers["fast_s"] * REGRESSION_FACTOR
                measured = results[stage][pair]["fast_s"]
                status = "ok" if measured <= allowed else "REGRESSION"
                print(
                    f"check {stage} {pair}: {measured:.3f}s vs baseline "
                    f"{numbers['fast_s']:.3f}s (allowed {allowed:.3f}s) -> {status}"
                )
                failed = failed or measured > allowed
        # The shm stage's load-independent properties are hard gates:
        # they are exact counters and array comparisons, immune to
        # container noise (unlike the recorded speedups, which mean
        # nothing on a single-core host).
        shm_numbers = results["shm_campaign"]["mixed_full"]
        for flag in ("ipc_reduction_ok", "samples_identical", "no_leaked_segments"):
            status = "ok" if shm_numbers[flag] else "FAIL"
            print(f"check shm_campaign {flag}: {status}")
            failed = failed or not shm_numbers[flag]
        if failed:
            print("FAIL: fast-path latency regressed more than "
                  f"{REGRESSION_FACTOR}x over the baseline")
            return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timing repeats per benchmark (best-of; default 2)",
    )
    parser.add_argument(
        "--campaign", action="store_true",
        help="also run the cold serial 11x11 campaign end to end",
    )
    parser.add_argument(
        "--output", default=str(DEFAULT_OUTPUT),
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check", metavar="BASELINE.JSON", default=None,
        help="fail (exit 1) if cold single-cell, priming, or full-cell "
        f"fast latency regresses >{REGRESSION_FACTOR}x vs the given baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=f"rewrite {DEFAULT_BASELINE.name} from this run's numbers",
    )
    return run(parser.parse_args())


if __name__ == "__main__":
    raise SystemExit(main())
