"""Extension (Section VII): SAVAT of branch-prediction events.

Not a paper figure — the conclusion proposes it: "Examples that may have
high SAVAT and should be studied include branch prediction hit/misses".
Regenerates a small matrix over {BRH, BRM, ADD, DIV} on all three
machines and checks the hypothesis: a mispredicted branch's front-end
flush is measurably distinguishable from a predicted one.
"""

from conftest import write_artifact

from repro.analysis.visualize import matrix_table
from repro.core.microarch_events import measure_microarch_savat
from repro.machines.calibrated import load_calibrated_machine

EVENTS = ("BRH", "BRM", "ADD", "DIV")


def _matrix(machine_name: str):
    machine = load_calibrated_machine(machine_name, 0.10)
    import numpy as np

    values = np.zeros((len(EVENTS), len(EVENTS)))
    mispredict = 0.0
    for i, event_a in enumerate(EVENTS):
        for j, event_b in enumerate(EVENTS):
            result = measure_microarch_savat(machine, event_a, event_b)
            values[i, j] = result.savat_zj
            if event_a == event_b == "BRM":
                mispredict = result.misprediction_rate
    return values, mispredict


def test_ext_branch_events(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _matrix(name) for name in ("core2duo", "pentium3m", "turionx2")},
        rounds=1,
        iterations=1,
    )
    sections = []
    for name, (values, mispredict) in results.items():
        sections.append(
            matrix_table(
                values,
                EVENTS,
                title=f"{name}: branch-event SAVAT (zJ), BRM mispredict rate "
                f"{mispredict:.0%} of all branches",
                cell_format="{:6.2f}",
            )
        )
    text = "\n\n".join(sections)
    path = write_artifact("ext_branch_events.txt", text)
    print(f"\n{text}\n-> {path}")

    for name, (values, _mispredict) in results.items():
        brh_brm = values[0, 1]
        brh_brh = values[0, 0]
        brm_brm = values[1, 1]
        # Diagonals are silent; hit-vs-miss is measurable on every machine.
        assert brh_brh < 0.1, name
        assert brm_brm < 0.1, name
        assert brh_brm > 10 * max(brh_brh, brm_brm, 0.01), name
