"""Ablation: unequal half durations and the duty-cycle factor.

The paper's kernel runs the *same* inst_loop_count in both halves, so a
slow/fast pair (LDM iterations cost ~20x an ADD iteration) produces a
strongly asymmetric duty cycle, whose fundamental carries
sin^2(pi*duty) of the power a balanced square wave would.  The
calibration divides this factor out (DESIGN.md's G_AB); this ablation
verifies the full simulation actually exhibits it by comparing the
measured fundamental against the two-level model's prediction.
"""

import numpy as np
from conftest import write_artifact

from repro.core.savat import _plan_pair, simulate_alternation_period
from repro.em.coupling import fourier_coefficient
from repro.isa.events import get_event


def _measure_duty_effect(machine) -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for name_a, name_b in (("LDM", "STM"), ("ADD", "LDM")):
        plan = _plan_pair(machine, get_event(name_a), get_event(name_b), 80e3)
        trace, plan = simulate_alternation_period(machine, plan)
        waveform = machine.coupling.project_trace(trace)
        measured = float(np.sum(np.abs(fourier_coefficient(waveform)) ** 2))

        # Two-level prediction from the halves' mean levels.
        split = int(plan.spec.inst_loop_count * plan.cycles_per_iteration_a)
        duty = split / trace.num_cycles
        level_a = waveform[:, :split].mean(axis=1)
        level_b = waveform[:, split:].mean(axis=1)
        predicted = float(
            np.sum((level_a - level_b) ** 2) * np.sin(np.pi * duty) ** 2 / np.pi**2
        )
        results[f"{name_a}/{name_b}"] = {
            "duty": duty,
            "measured_c1_power": measured,
            "two_level_prediction": predicted,
            "shape_factor": float(np.sin(np.pi * duty) ** 2),
        }
    return results


def test_ablation_duty_cycle(benchmark, core2duo_10cm):
    results = benchmark.pedantic(
        _measure_duty_effect, args=(core2duo_10cm,), rounds=1, iterations=1
    )
    lines = ["Ablation: duty-cycle factor in the fundamental", ""]
    lines.append(
        f"{'pair':>10} {'duty':>8} {'sin^2(pi*d)':>12} {'measured':>12} {'2-level':>12}"
    )
    for pair, data in results.items():
        lines.append(
            f"{pair:>10} {data['duty']:>8.3f} {data['shape_factor']:>12.3f} "
            f"{data['measured_c1_power']:>12.3e} {data['two_level_prediction']:>12.3e}"
        )
    text = "\n".join(lines)
    path = write_artifact("ablation_duty_cycle.txt", text)
    print(f"\n{text}\n-> {path}")

    # Balanced pair: duty ~ 0.5, full shape factor.
    balanced = results["LDM/STM"]
    assert abs(balanced["duty"] - 0.5) < 0.05
    # Asymmetric pair: tiny duty, shape factor well below 0.2.
    skewed = results["ADD/LDM"]
    assert skewed["duty"] < 0.15
    assert skewed["shape_factor"] < 0.2
    # The cycle-accurate simulation matches the two-level model closely.
    for data in results.values():
        np.testing.assert_allclose(
            data["measured_c1_power"], data["two_level_prediction"], rtol=0.25
        )
