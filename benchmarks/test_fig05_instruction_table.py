"""Figure 5: the eleven instructions/events of the case study."""

from conftest import write_artifact

from repro.isa.events import PAPER_EVENTS


def _build_table() -> str:
    lines = [f"{'Event':<6} {'x86 instruction':<24} Description"]
    for event in PAPER_EVENTS:
        lines.append(f"{event.name:<6} {event.x86_text:<24} {event.description}")
    return "\n".join(lines)


def test_fig05_instruction_table(benchmark):
    table = benchmark(_build_table)
    path = write_artifact("fig05_instruction_table.txt", table)
    print(f"\n{table}\n-> {path}")
    assert "LDM" in table and "idiv eax" in table
    assert len(table.splitlines()) == 12  # header + 11 events
