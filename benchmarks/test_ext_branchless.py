"""Extension: branchless (constant-time) rewriting, measured end to end.

Complements the compensation benchmark: instead of balancing two paths,
rewrite to one path with a conditional-move select.  The bit-level
signature separation (what the template attack thresholds) drops to
exactly zero, at roughly the cost of always executing the multiply.
"""

from conftest import write_artifact

from repro.mitigations import evaluate_branchless

KEY = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1]


def test_ext_branchless(benchmark, core2duo_10cm):
    report = benchmark.pedantic(
        evaluate_branchless, args=(core2duo_10cm, KEY, 8), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "Extension: branchless constant-time rewrite (Core 2 Duo, 10 cm)",
            "",
            f"key: {''.join(map(str, report.key_bits))}",
            f"bit-signature separation, leaky victim:         {report.leaky_separation:.3g}",
            f"bit-signature separation, constant-time victim: {report.constant_time_separation:.3g}",
            f"execution-time overhead:                        {report.time_overhead:+.0%}",
        ]
    )
    path = write_artifact("ext_branchless.txt", text)
    print(f"\n{text}\n-> {path}")

    assert report.leaky_separation > 1.0
    assert report.constant_time_separation == 0.0
    assert 0.2 < report.time_overhead < 1.5
