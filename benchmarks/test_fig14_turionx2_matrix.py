"""Figures 14/15: SAVAT matrix and selected pairings, Turion X2 at 10 cm.

The cross-vendor comparison: similar structure to the Pentium 3 M, but
the DIV instruction's SAVAT is even higher — it rivals off-chip memory
accesses.
"""

import numpy as np
from conftest import get_campaign, write_artifact

from repro.analysis.report import experiment_report
from repro.analysis.visualize import bar_chart
from repro.core.campaign import selected_pairings_means
from repro.machines.reference_data import SELECTED_PAIRINGS, TURIONX2_10CM


def test_fig14_turionx2_matrix(benchmark):
    campaign = benchmark.pedantic(
        get_campaign, args=("turionx2", 0.10), rounds=1, iterations=1
    )
    report = experiment_report(campaign, TURIONX2_10CM)
    rows = selected_pairings_means(campaign, SELECTED_PAIRINGS)
    chart = bar_chart(rows, title="Figure 15: selected pairings, Turion X2 10 cm")
    path = write_artifact("fig14_fig15_turionx2.txt", report + "\n\n" + chart)
    print(f"\n{report}\n\n{chart}\n-> {path}")

    stats = campaign.shape_agreement(TURIONX2_10CM.symmetrized())
    assert stats["spearman"] > 0.7

    # "the DIV instruction here has even higher SAVAT values — they
    # rival those of off-chip memory accesses."
    div_vs_arith = np.mean(
        [campaign.cell("DIV", name) for name in ("NOI", "ADD", "SUB", "MUL")]
    )
    offchip_vs_arith = np.mean(
        [campaign.cell("LDM", name) for name in ("NOI", "ADD", "SUB", "MUL")]
    )
    assert div_vs_arith > 0.4 * offchip_vs_arith
    # And DIV towers over the other arithmetic pairings.
    assert campaign.cell("ADD", "DIV") > 4 * campaign.cell("ADD", "MUL")
