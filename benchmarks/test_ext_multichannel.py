"""Extension (Section VII): SAVAT through power and acoustic channels.

Not a paper figure — the paper measured only EM — but the experiment its
conclusion calls for: "measure SAVAT for multiple side channels to help
inform decisions about which ones are the most dangerous."  Regenerates
the cross-channel distinguishability table and asserts the physics each
channel model is built on.
"""

from conftest import write_artifact

from repro.channels import (
    channel_comparison,
    distinguishability_profile,
    laptop_acoustic_channel,
    wall_power_channel,
)

PAIRINGS = [("ADD", "LDM"), ("LDM", "LDL2"), ("ADD", "DIV"), ("ADD", "MUL")]


def _run(machine):
    channels = [wall_power_channel(), laptop_acoustic_channel()]
    table = channel_comparison(machine, channels, PAIRINGS)
    return table, distinguishability_profile(table)


def test_ext_multichannel(benchmark, core2duo_10cm):
    table, profile = benchmark.pedantic(
        _run, args=(core2duo_10cm,), rounds=1, iterations=1
    )
    lines = ["Extension: SAVAT by side channel (zJ; scales are per-channel)", ""]
    names = list(table)
    lines.append(f"{'pairing':<12}" + "".join(f"{name:>14}" for name in names))
    for pairing in table[names[0]]:
        lines.append(
            f"{pairing:<12}"
            + "".join(f"{table[name][pairing]:>14.3e}" for name in names)
        )
    text = "\n".join(lines)
    path = write_artifact("ext_multichannel.txt", text)
    print(f"\n{text}\n-> {path}")

    power = table["power"]
    acoustic = table["acoustic"]
    # Both non-EM channels are dominated by memory traffic...
    assert power["ADD/LDM"] > 10 * power["ADD/MUL"]
    assert acoustic["ADD/LDM"] > 10 * acoustic["ADD/MUL"]
    # ...and neither gets the EM channel's huge DIV signature for free:
    # DIV is quieter than off-chip traffic in raw switching energy.
    assert power["ADD/DIV"] < power["ADD/LDM"]
