"""Figures 12/13: SAVAT matrix and selected pairings, Pentium 3 M at 10 cm.

The paper's cross-generation comparison: on this older processor the
DIV instruction is an order of magnitude easier to distinguish from
other arithmetic, and off-chip accesses dominate L2 accesses.
"""

from conftest import get_campaign, write_artifact

from repro.analysis.report import experiment_report
from repro.analysis.visualize import bar_chart
from repro.core.campaign import selected_pairings_means
from repro.machines.reference_data import PENTIUM3M_10CM, SELECTED_PAIRINGS


def test_fig12_pentium3m_matrix(benchmark):
    campaign = benchmark.pedantic(
        get_campaign, args=("pentium3m", 0.10), rounds=1, iterations=1
    )
    report = experiment_report(campaign, PENTIUM3M_10CM)
    rows = selected_pairings_means(campaign, SELECTED_PAIRINGS)
    chart = bar_chart(rows, title="Figure 13: selected pairings, Pentium 3 M 10 cm")
    path = write_artifact("fig12_fig13_pentium3m.txt", report + "\n\n" + chart)
    print(f"\n{report}\n\n{chart}\n-> {path}")

    stats = campaign.shape_agreement(PENTIUM3M_10CM.symmetrized())
    assert stats["spearman"] > 0.75

    # "the ADD/DIV SAVAT is an order of magnitude higher than ADD/MUL"
    assert campaign.cell("ADD", "DIV") > 4 * campaign.cell("ADD", "MUL")
    # "off-chip accesses here have much higher SAVAT values than do L2"
    assert campaign.cell("LDM", "ADD") > 2 * campaign.cell("LDL2", "ADD")
    # "LDM has higher SAVAT values than STM"
    assert campaign.cell("LDM", "ADD") > campaign.cell("STM", "ADD")
