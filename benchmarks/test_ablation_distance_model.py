"""Ablation: power-law distance interpolation vs naive linear blending.

Unpublished distances are calibrated against matrices interpolated with
the near/far-field power-law model (``repro.em.propagation``).  This
ablation holds out the published 50 cm matrix, predicts it from the
10 cm and 100 cm anchors with (a) the power-law model and (b) linear
interpolation in distance, and compares the residuals: EM signals fall
off on steep power laws, so linear blending badly overshoots at
intermediate range.
"""

import numpy as np
from conftest import write_artifact

from repro.em.propagation import interpolate_matrix
from repro.machines.reference_data import (
    CORE2DUO_10CM,
    CORE2DUO_50CM,
    CORE2DUO_100CM,
)

FLOOR_ZJ = 0.6


def _holdout_errors() -> tuple[float, float]:
    anchors = [CORE2DUO_10CM.values_zj, CORE2DUO_100CM.values_zj]
    truth = CORE2DUO_50CM.values_zj
    power_law = interpolate_matrix([0.10, 1.00], anchors, 0.50, floor=FLOOR_ZJ)
    weight = (0.50 - 0.10) / (1.00 - 0.10)
    linear = (1 - weight) * anchors[0] + weight * anchors[1]
    mask = ~np.eye(11, dtype=bool)
    return (
        float(np.abs(power_law - truth)[mask].mean()),
        float(np.abs(linear - truth)[mask].mean()),
    )


def test_ablation_distance_model(benchmark):
    power_law_error, linear_error = benchmark(_holdout_errors)
    text = "\n".join(
        [
            "Ablation: predicting the held-out 50 cm matrix from 10 cm + 100 cm",
            "",
            f"near/far power-law interpolation, mean |error|: {power_law_error:7.3f} zJ",
            f"linear-in-distance interpolation, mean |error|: {linear_error:7.3f} zJ",
            f"improvement: {linear_error / power_law_error:.1f}x",
        ]
    )
    path = write_artifact("ablation_distance_model.txt", text)
    print(f"\n{text}\n-> {path}")

    assert power_law_error < 0.35
    assert power_law_error < 0.25 * linear_error
