"""Extension: compensating-activity mitigation, measured end to end.

The paper motivates SAVAT as the tool for applying expensive
countermeasures *selectively*.  This benchmark regenerates the
cost/benefit table for the worst programmer-facing leaks Section V
identifies (data-dependent cache level; data-dependent DIV), fixing
each with compensation and measuring the residual signal and the time
overhead through the full pipeline.
"""

from conftest import write_artifact

from repro.mitigations import evaluate_compensation

CASES = (
    ("secret selects a DIV", ["ADD", "DIV"], ["ADD"]),
    ("secret selects a table fetch", ["MUL", "LDM"], ["MUL"]),
    ("secret selects cache level", ["LDL2"], ["LDL1"]),
)


def _run(machine):
    return [
        (label, evaluate_compensation(machine, seq_a, seq_b))
        for label, seq_a, seq_b in CASES
    ]


def test_ext_mitigation(benchmark, core2duo_10cm):
    reports = benchmark.pedantic(_run, args=(core2duo_10cm,), rounds=1, iterations=1)
    lines = [
        "Extension: compensating-activity mitigation (Core 2 Duo, 10 cm)",
        "",
        f"{'leak':<30} {'before':>9} {'after':>9} {'quieter':>9} {'overhead':>9}",
    ]
    for label, report in reports:
        if report.savat_after_zj < 1e-6:
            quieter = "  silent"
        else:
            quieter = f"{report.savat_reduction:>7.0f}x"
        lines.append(
            f"{label:<30} {report.savat_before_zj:>7.2f}zJ "
            f"{report.savat_after_zj:>7.2f}zJ {quieter:>9} "
            f"{report.time_overhead:>8.0%}"
        )
    text = "\n".join(lines)
    path = write_artifact("ext_mitigation.txt", text)
    print(f"\n{text}\n-> {path}")

    for label, report in reports:
        assert report.savat_reduction > 3, label
        assert report.time_overhead >= 0, label
    # Compensation is never free for unbalanced paths.
    assert reports[0][1].time_overhead > 0.1
