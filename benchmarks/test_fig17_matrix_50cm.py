"""Figure 17: the full matrix at 50 cm (Core 2 Duo)."""

from conftest import get_campaign, write_artifact

from repro.analysis.report import experiment_report
from repro.analysis.visualize import grayscale_matrix
from repro.machines.reference_data import CORE2DUO_50CM


def test_fig17_matrix_50cm(benchmark):
    campaign = benchmark.pedantic(
        get_campaign, args=("core2duo", 0.50), rounds=1, iterations=1
    )
    report = experiment_report(campaign, CORE2DUO_50CM)
    chart = grayscale_matrix(
        campaign.mean(), campaign.events, "Figure 17: SAVAT at 50 cm"
    )
    path = write_artifact("fig17_matrix_50cm.txt", report + "\n\n" + chart)
    print(f"\n{report}\n\n{chart}\n-> {path}")

    stats = campaign.shape_agreement(CORE2DUO_50CM.values_zj)
    assert stats["spearman"] > 0.6
    assert stats["mean_relative_error"] < 0.4

    # Off-chip rows (LDM/STM) are the dark rows now.
    mean = campaign.mean()
    offchip_mean = mean[:2, 2:].mean()
    onchip_block = mean[2:, 2:]
    assert offchip_mean > onchip_block.mean()
