"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes the artifact (numeric table, grayscale matrix, bar chart, or
spectrum) to ``benchmarks/output/`` so the regenerated figures survive
pytest's output capture.  Campaigns are memoized per (machine,
distance) so that e.g. Figures 9, 10, and 11 — three views of one
measurement campaign — share a single run, exactly as in the paper.

Campaigns route through the parallel executor with an on-disk result
cache under ``benchmarks/output/campaign_cache``, so re-running the
harness skips simulation for every matrix it has already measured.
Environment knobs: ``SAVAT_BENCH_WORKERS`` (worker processes; default
``min(4, cpu_count)``) and ``SAVAT_BENCH_CACHE`` (cache directory, or
``off`` to disable).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.campaign import run_campaign
from repro.core.matrix import SavatMatrix
from repro.machines.calibrated import load_calibrated_machine

#: Repetitions per cell for benchmark campaigns.  The paper used 10;
#: two keeps the full harness under ~15 minutes while still exercising
#: the repeatability statistics.
BENCHMARK_REPETITIONS = 2

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Worker processes for campaign fan-out (results are identical for
#: any worker count, so this only affects wall-clock time).
BENCHMARK_WORKERS = int(
    os.environ.get("SAVAT_BENCH_WORKERS") or min(4, os.cpu_count() or 1)
)

_cache_setting = os.environ.get(
    "SAVAT_BENCH_CACHE", str(OUTPUT_DIR / "campaign_cache")
)
#: On-disk campaign cache directory (None disables caching).
CACHE_DIR = (
    None
    if _cache_setting.strip().lower() in {"", "0", "off", "none"}
    else pathlib.Path(_cache_setting)
)

_CAMPAIGNS: dict[tuple[str, float], SavatMatrix] = {}


def get_campaign(machine_name: str, distance_m: float) -> SavatMatrix:
    """Run (or reuse) the full 11x11 campaign for a machine/distance."""
    key = (machine_name, round(distance_m, 4))
    if key not in _CAMPAIGNS:
        machine = load_calibrated_machine(machine_name, distance_m)
        _CAMPAIGNS[key] = run_campaign(
            machine,
            repetitions=BENCHMARK_REPETITIONS,
            seed=2014,
            workers=BENCHMARK_WORKERS,
            cache_dir=CACHE_DIR,
        )
    return _CAMPAIGNS[key]


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def core2duo_10cm():
    """Calibrated Core 2 Duo at 10 cm (shared across benchmarks)."""
    return load_calibrated_machine("core2duo", 0.10)
