#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the benchmark harness's artifacts.

Run after ``pytest benchmarks/ --benchmark-only``: every benchmark
writes its regenerated figure to ``benchmarks/output/``, and this script
collates them — plus the headline shape statistics it re-parses from the
experiment reports — into the paper-vs-measured record.

Usage:  python benchmarks/generate_experiments_md.py
"""

from __future__ import annotations

import pathlib
import re
import sys

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
TARGET = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"

#: (artifact file, experiment id, paper artifact, what "reproduced" means here)
EXPERIMENTS: tuple[tuple[str, str, str, str], ...] = (
    (
        "fig02_naive_vs_alternation.txt",
        "fig2/3",
        "naive-vs-alternation methodology argument (Section III)",
        "naive subtraction misses by orders of magnitude even noiseless; "
        "alternation stays within a few percent",
    ),
    (
        "fig05_instruction_table.txt",
        "fig5",
        "the 11 instructions/events table",
        "verbatim",
    ),
    ("fig06_machines.txt", "fig6", "the three laptops table", "verbatim"),
    (
        "fig07_spectrum_add_ldm.txt",
        "fig7",
        "ADD/LDM spectrum at 80 kHz",
        "peak shifted <1 kHz from intended frequency, dispersion inside the "
        "+/-1 kHz band, peak far above the ~6e-18 W/Hz floor",
    ),
    (
        "fig08_spectrum_add_add.txt",
        "fig8",
        "ADD/ADD spectrum (error floor)",
        "floor ~6e-18 W/Hz, weak external radio signal visible above it, "
        "A/A measurement near the error floor",
    ),
    (
        "fig09_core2duo_matrix.txt",
        "fig9",
        "Core 2 Duo 11x11 SAVAT matrix, 10 cm",
        "see shape statistics below",
    ),
    (
        "fig10_visualization.txt",
        "fig10",
        "grayscale visualization of fig9",
        "dark off-chip/L2 blocks, light arithmetic block",
    ),
    (
        "fig11_selected_pairs.txt",
        "fig11",
        "selected-pairings bar chart",
        "ordering anchored: STL2/STM & STL2/DIV loudest, ADD/ADD & ADD/MUL quietest",
    ),
    (
        "fig12_fig13_pentium3m.txt",
        "fig12/13",
        "Pentium 3 M matrix + bars, 10 cm",
        "ADD/DIV an order of magnitude over ADD/MUL; LDM > STM; off-chip >> L2",
    ),
    (
        "fig14_fig15_turionx2.txt",
        "fig14/15",
        "Turion X2 matrix + bars, 10 cm",
        "DIV rivals off-chip accesses; otherwise P3M-like structure",
    ),
    (
        "fig16_distance_bars.txt",
        "fig16",
        "selected pairings at 50/100 cm",
        "sharp 10->50 cm drop, small 50->100 cm change, off-chip dominates, "
        "DIV advantage shrinks",
    ),
    (
        "fig17_matrix_50cm.txt",
        "fig17",
        "full matrix at 50 cm",
        "see shape statistics below",
    ),
    (
        "fig18_matrix_100cm.txt",
        "fig18",
        "full matrix at 100 cm",
        "see shape statistics below; L2 collapses faster than off-chip",
    ),
)

ABLATIONS: tuple[tuple[str, str], ...] = (
    ("ablation_coupling_modes.txt", "field modes in the EM coupling model"),
    ("ablation_distance_model.txt", "power-law vs linear distance interpolation"),
    ("ablation_band.txt", "+/-1 kHz integration band vs a single bin"),
    ("ablation_alternation_freq.txt", "alternation-frequency invariance"),
    ("ablation_duty_cycle.txt", "duty-cycle factor for unequal-latency pairs"),
    ("ablation_sequences.txt", "additive sequence estimate vs direct measurement"),
)

EXTENSIONS: tuple[tuple[str, str], ...] = (
    ("ext_multichannel.txt", "power/acoustic channel SAVAT (Section VII)"),
    ("ext_branch_events.txt", "branch-prediction events BRH/BRM (Section VII)"),
    ("ext_mitigation.txt", "compensating-activity mitigation cost/benefit"),
    ("ext_branchless.txt", "branchless constant-time rewrite"),
)

_SHAPE_RE = re.compile(
    r"Shape agreement: Pearson ([\d.-]+), Spearman ([\d.-]+), "
    r"mean relative error ([\d.]+%)"
)
_REPEAT_RE = re.compile(r"Repeatability \(std/mean\): ([\d.]+)")


def _shape_line(text: str) -> str | None:
    match = _SHAPE_RE.search(text)
    if not match:
        return None
    line = (
        f"Pearson {match.group(1)}, Spearman {match.group(2)}, "
        f"mean relative error {match.group(3)}"
    )
    repeat = _REPEAT_RE.search(text)
    if repeat:
        line += f"; std/mean {repeat.group(1)} (paper: ~0.05)"
    return line


def main() -> int:
    missing = [
        name
        for name, *_rest in EXPERIMENTS
        if not (OUTPUT_DIR / name).exists()
    ]
    if missing:
        print(
            "missing artifacts (run `pytest benchmarks/ --benchmark-only` first): "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1

    lines: list[str] = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Every table and figure in the paper's evaluation, regenerated by the",
        "benchmark harness (`pytest benchmarks/ --benchmark-only`).  Artifacts",
        "live in `benchmarks/output/`; this file records, per experiment, what",
        "the paper shows, what the reproduction measures, and the shape",
        "statistics.  Absolute zeptojoule scales match by calibration; the",
        "*measured* quantities below come out of the forward pipeline",
        "(kernel -> cycle simulation -> EM model -> spectrum analyzer), which",
        "is free to disagree with its calibration — the agreement numbers are",
        "the reproduction's actual result.  See DESIGN.md §2 for the",
        "hardware-substitution rationale and §8 for known deviations.",
        "",
        "## Paper figures",
        "",
    ]
    for name, experiment_id, artifact, meaning in EXPERIMENTS:
        text = (OUTPUT_DIR / name).read_text()
        lines.append(f"### {experiment_id} — {artifact}")
        lines.append("")
        lines.append(f"*Artifact:* `benchmarks/output/{name}`")
        lines.append("")
        shape = _shape_line(text)
        if shape:
            lines.append(f"*Shape agreement (measured vs published):* {shape}")
            lines.append("")
        lines.append(f"*Reproduced:* {meaning}.")
        lines.append("")

    lines.append("## Ablations (design choices from DESIGN.md §5)")
    lines.append("")
    for name, description in ABLATIONS:
        path = OUTPUT_DIR / name
        if not path.exists():
            continue
        lines.append(f"### {description}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")

    lines.append("## Extensions (Section VII future work, measured)")
    lines.append("")
    for name, description in EXTENSIONS:
        path = OUTPUT_DIR / name
        if not path.exists():
            continue
        lines.append(f"### {description}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")

    TARGET.write_text("\n".join(lines))
    print(f"wrote {TARGET} ({len(lines)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
