"""Figure 10: grayscale visualization of the Figure 9 matrix."""

import numpy as np
from conftest import get_campaign, write_artifact

from repro.analysis.visualize import grayscale_matrix


def test_fig10_visualization(benchmark):
    campaign = get_campaign("core2duo", 0.10)
    chart = benchmark(
        grayscale_matrix,
        campaign.mean(),
        campaign.events,
        "Figure 10: SAVAT visualization, Core 2 Duo at 10 cm",
    )
    path = write_artifact("fig10_visualization.txt", chart)
    print(f"\n{chart}\n-> {path}")

    lines = chart.splitlines()
    assert len(lines) == 1 + 1 + 11 + 1  # title + header + rows + legend

    # The off-chip/L2 block is dark, the arithmetic block light.
    from repro.analysis.visualize import SHADE_RAMP

    darkest = SHADE_RAMP[-1]
    assert darkest in chart  # somebody reaches full black
    mean = campaign.mean()
    arith = [campaign.index(name) for name in ("NOI", "ADD", "SUB", "MUL")]
    arith_block_max = mean[np.ix_(arith, arith)].max()
    offchip_rows_max = mean[[campaign.index("LDM"), campaign.index("STM")], 2:].max()
    assert offchip_rows_max > 3 * arith_block_max
