"""Command-line interface: ``savat`` (or ``python -m repro.cli``).

Subcommands cover the workflows a downstream user runs most:

* ``savat measure ADD LDM`` — one pairwise measurement;
* ``savat campaign --events ADD,DIV,LDM`` — a matrix campaign with CSV
  or JSON output; add ``--trace run.jsonl --metrics-out run.prom`` for
  a JSONL run trace and a Prometheus metrics export, and
  ``--progress``/``--no-progress`` to control the live status line;
* ``savat study --machines core2duo --distances 0.10,0.25,0.50`` — a
  grid of campaigns over one shared worker pool and kernel-trace cache,
  so later distances skip trace production entirely;
* ``savat groups`` — cluster the events by SAVAT distance;
* ``savat audit victim.s`` — static leak audit of an assembly file;
* ``savat attack --key 10110100`` — the RSA-style attack demo.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError


def _event_list(text: str) -> list[str]:
    """Parse a ``--events`` value into validated catalog event names.

    Tokens are comma-separated, surrounding whitespace is stripped, and
    empty tokens (``"ADD,,SUB"`` or a trailing comma) are dropped.  An
    unknown token — or a value with no tokens at all — fails argument
    parsing with a one-line error naming the bad token and the valid
    choices, instead of surfacing later as a mid-campaign lookup error.
    """
    from repro.isa.events import EVENT_ORDER

    known = {name.upper(): name for name in EVENT_ORDER}
    choices = ", ".join(EVENT_ORDER)
    events: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        resolved = known.get(token.upper())
        if resolved is None:
            raise argparse.ArgumentTypeError(
                f"unknown event {token!r}; choose from {choices}"
            )
        events.append(resolved)
    if not events:
        raise argparse.ArgumentTypeError(
            f"no event names given; choose from {choices}"
        )
    return events


def _distance(text: str) -> float:
    """Parse a distance argument into a validated positive, finite float.

    Mirrors the :func:`~repro.machines.calibrated.load_calibrated_machine`
    validation so a bad ``--distance`` fails argument parsing with a
    one-line message instead of surfacing later from the loader.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid distance {text!r}; expected meters, e.g. 0.25"
        )
    import math

    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"distance must be a positive, finite number of meters; got {text!r}"
        )
    return value


def _distance_list(text: str) -> list[float]:
    """Parse a ``--distances`` value into validated distances in meters.

    Same comma-list conventions as :func:`_event_list`: whitespace is
    stripped, empty tokens are dropped, and an empty list is an error.
    """
    distances = [
        _distance(token)
        for token in (token.strip() for token in text.split(","))
        if token
    ]
    if not distances:
        raise argparse.ArgumentTypeError(
            "no distances given; expected meters, e.g. 0.10,0.25,0.50"
        )
    return distances


def _machine_list(text: str) -> list[str]:
    """Parse a ``--machines`` value into validated catalog machine names."""
    from repro.machines.catalog import MACHINES

    known = {name.lower(): name for name in MACHINES}
    choices = ", ".join(sorted(MACHINES))
    machines: list[str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        resolved = known.get(token.lower())
        if resolved is None:
            raise argparse.ArgumentTypeError(
                f"unknown machine {token!r}; choose from {choices}"
            )
        machines.append(resolved)
    if not machines:
        raise argparse.ArgumentTypeError(
            f"no machine names given; choose from {choices}"
        )
    return machines


def _workers(text: str) -> int:
    """Parse a ``--workers`` value into a validated non-negative int.

    Mirrors the :func:`repro.core.executor._validate_workers` check so
    a bad count fails argument parsing with a one-line message instead
    of surfacing later from the executor (or, historically, as a pool
    traceback).
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a non-negative integer (0 means serial); "
            f"got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be a non-negative integer (0 means serial); "
            f"got {value}"
        )
    return value


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_workers,
        default=0,
        metavar="N",
        help="worker processes for the campaign fan-out (0 or 1: serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the shared-memory sample plane on (--shm) or off "
        "(--no-shm); by default it is on for pooled runs where the "
        "platform supports it ($SAVAT_SHM=0 disables it). Samples are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--schedule",
        choices=("rowmajor", "cost"),
        default="rowmajor",
        help="cell submission order for pooled runs: 'rowmajor' or "
        "'cost' (most expensive cells first, from recorded timings); "
        "never changes the samples (default: rowmajor)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("SAVAT_CACHE_DIR"),
        metavar="DIR",
        help="on-disk campaign result cache (default: $SAVAT_CACHE_DIR, "
        "no caching if unset)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if --cache-dir or "
        "$SAVAT_CACHE_DIR is set",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="per-cell retry budget for transient worker faults; retries "
        "replay the cell's original seed, so results are unchanged "
        "(default: 2)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt; with --workers >= 2 a "
        "hung cell is abandoned and retried on a fresh worker "
        "(default: no budget)",
    )
    parser.add_argument(
        "--journal",
        nargs="?",
        const=True,
        default=os.environ.get("SAVAT_JOURNAL"),
        metavar="FILE",
        help="stream completed cells to a campaign journal for --resume; "
        "without FILE the journal lives inside the cache's campaign "
        "directory (default: $SAVAT_JOURNAL, no journaling if unset)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore completed cells from the campaign journal instead of "
        "recomputing them (implies --journal)",
    )
    parser.add_argument(
        "--inject-faults",
        default=os.environ.get("SAVAT_INJECT_FAULTS"),
        metavar="SPEC",
        help="debug: deterministically inject worker faults, e.g. "
        "'raise@0,1;hang@1,2:2;corrupt@2,0' "
        "(default: $SAVAT_INJECT_FAULTS)",
    )
    parser.add_argument(
        "--metrics-out",
        default=os.environ.get("SAVAT_METRICS_OUT"),
        metavar="FILE",
        help="write the campaign's metrics registry to FILE in Prometheus "
        "text format when the campaign ends (default: $SAVAT_METRICS_OUT)",
    )
    parser.add_argument(
        "--trace",
        default=os.environ.get("SAVAT_TRACE"),
        metavar="FILE",
        help="write a versioned JSONL span/event trace of the campaign "
        "to FILE (default: $SAVAT_TRACE)",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the live progress line on (--progress) or off "
        "(--no-progress); by default it renders only on a terminal",
    )


def _campaign_execution_kwargs(args: argparse.Namespace) -> dict:
    """Executor keyword arguments shared by campaign-running commands."""
    from repro.core.faults import FaultPlan
    from repro.obs import CampaignObservability

    cache_dir = None if args.no_cache else args.cache_dir
    journal = args.journal
    if args.resume and journal is None:
        journal = True
    observability = CampaignObservability(
        trace=args.trace or None,
        metrics_out=args.metrics_out or None,
        progress=args.progress,
    )
    return {
        "workers": args.workers,
        "cache_dir": cache_dir,
        "max_retries": args.max_retries,
        "cell_timeout_s": args.cell_timeout,
        "journal": journal,
        "resume": args.resume,
        "fault_plan": (
            FaultPlan.from_spec(args.inject_faults) if args.inject_faults else None
        ),
        "observability": observability,
        "shm": args.shm,
        "schedule": args.schedule,
    }


def _add_measurement_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method",
        choices=("analytic", "full", "synthesis"),
        default=os.environ.get("SAVAT_METHOD", "analytic"),
        help="measurement method: 'analytic' integrates the periodic "
        "waveform's band power directly; 'full' synthesizes each capture "
        "and runs it through the spectrum-analyzer model ('synthesis' is "
        "a legacy alias for 'full'; default: $SAVAT_METHOD or analytic)",
    )
    parser.add_argument(
        "--duration-s",
        default=os.environ.get("SAVAT_DURATION_S", 1.0),
        metavar="SECONDS",
        help="capture duration per repetition for the full method; "
        "durations below 1/RBW are stretched to 1/RBW "
        "(default: $SAVAT_DURATION_S or 1.0)",
    )


def _measurement_config(args: argparse.Namespace):
    """Build the campaign ``MeasurementConfig`` from CLI arguments."""
    from repro.core.savat import MeasurementConfig
    from repro.errors import ConfigurationError

    duration = args.duration_s
    try:
        duration = float(duration)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"invalid measurement duration {duration!r} (from --duration-s "
            "or $SAVAT_DURATION_S); expected a number of seconds"
        )
    return MeasurementConfig(method=args.method, duration_s=duration)


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="core2duo",
        help="catalog machine: core2duo, pentium3m, turionx2 (default: core2duo)",
    )
    parser.add_argument(
        "--distance",
        type=_distance,
        default=0.10,
        metavar="METERS",
        help="antenna distance in meters, positive and finite "
        "(default: 0.10)",
    )


def _command_measure(args: argparse.Namespace) -> int:
    from repro.core.savat import MeasurementConfig, measure_savat
    from repro.machines.calibrated import load_calibrated_machine

    machine = load_calibrated_machine(args.machine, args.distance)
    config = MeasurementConfig(
        alternation_frequency_hz=args.frequency,
        method=args.method,
    )
    result = measure_savat(machine, args.event_a, args.event_b, config)
    print(result)
    print(f"  achieved alternation frequency: {result.achieved_frequency_hz / 1e3:.2f} kHz")
    print(f"  inst_loop_count: {result.plan.spec.inst_loop_count}")
    print(f"  A/B pairs per second: {result.pairs_per_second:.3e}")
    return 0


def _campaign_summary_lines(campaign, machine) -> list[str]:
    """The human-readable campaign summary (table format).

    The execution footer comes from ``metadata["execution"]``; a matrix
    loaded from JSON written by an older release (or stripped metadata)
    may not carry that entry, in which case the table and the
    repetition statistics still print and only the footer is omitted.
    """
    from repro.analysis.visualize import matrix_table

    lines = [
        matrix_table(
            campaign.mean(),
            campaign.events,
            title=f"SAVAT (zJ) on {machine.describe()}:",
        ),
        f"\nstd/mean over {campaign.repetitions} repetitions: "
        f"{campaign.std_over_mean():.3f}",
    ]
    execution = campaign.metadata.get("execution")
    if execution is None:
        return lines
    lines.append(
        f"executed with {execution['workers']} worker(s) in "
        f"{execution['wall_seconds']:.1f} s; cache: "
        f"{execution['cache_hits']} hit(s), "
        f"{execution['cache_misses']} miss(es), "
        f"{execution['cells_simulated']} cell(s) simulated"
    )
    phase_totals = execution.get("phase_seconds") or {}
    if phase_totals:
        breakdown = ", ".join(
            f"{name} {seconds:.1f} s"
            for name, seconds in sorted(
                phase_totals.items(), key=lambda item: -item[1]
            )
        )
        lines.append(f"simulation time by phase: {breakdown}")
    shm_info = execution.get("shm") or {}
    ipc = execution.get("ipc") or {}
    scheduling = execution.get("scheduling") or {}
    if shm_info.get("enabled"):
        lines.append(
            f"shared memory: {shm_info.get('segments', 0)} segment(s), "
            f"{ipc.get('bytes_saved', 0)} sample byte(s) kept out of "
            f"pickle ({scheduling.get('policy', 'rowmajor')} schedule)"
        )
    lines.append(
        f"robustness: {execution['resumed']} cell(s) resumed from the "
        f"journal, {execution['retries']} retry(ies), "
        f"{execution['timeouts']} timeout(s), "
        f"{execution['quarantined']} cache entry(ies) quarantined"
    )
    faults = execution.get("faults_injected") or {}
    if faults:
        fired = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(faults.items())
        )
        lines.append(f"injected faults fired: {fired}")
    return lines


def _command_campaign(args: argparse.Namespace) -> int:
    from repro.core.campaign import run_campaign
    from repro.machines.calibrated import load_calibrated_machine

    machine = load_calibrated_machine(args.machine, args.distance)
    campaign = run_campaign(
        machine,
        config=_measurement_config(args),
        events=args.events,
        repetitions=args.repetitions,
        seed=args.seed,
        **_campaign_execution_kwargs(args),
    )
    if args.format == "csv":
        print(campaign.to_csv())
    elif args.format == "json":
        print(campaign.to_json())
    else:
        for line in _campaign_summary_lines(campaign, machine):
            print(line)
    return 0


def _command_study(args: argparse.Namespace) -> int:
    import json

    from repro.core.study import run_study

    result = run_study(
        args.machines,
        args.distances,
        events=args.events,
        config=_measurement_config(args),
        repetitions=args.repetitions,
        seed=args.seed,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        trace_cache=False if args.no_trace_cache else None,
        trace_cache_dir=args.trace_cache_dir,
        max_retries=args.max_retries,
        cell_timeout_s=args.cell_timeout,
        output_dir=args.output_dir,
        shm=args.shm,
        schedule=args.schedule,
    )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "wall_seconds": result.wall_seconds,
                    "trace_cache": result.trace_cache,
                    "campaigns": [
                        json.loads(matrix.to_json()) for matrix in result.matrices
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"study: {len(args.machines)} machine(s) x "
        f"{len(args.distances)} distance(s), "
        f"{len(result.matrices)} campaign(s) in {result.wall_seconds:.1f} s"
    )
    for matrix in result.matrices:
        execution = matrix.metadata["execution"]
        trace_cache = execution.get("trace_cache") or {}
        hits = (
            trace_cache.get("memory_hits", 0)
            + trace_cache.get("shm_hits", 0)
            + trace_cache.get("disk_hits", 0)
        )
        print(
            f"  {matrix.machine} @ {matrix.distance_m * 100:.0f} cm: "
            f"{execution['wall_seconds']:.1f} s, "
            f"trace cache {hits} hit(s) / "
            f"{trace_cache.get('misses', 0)} miss(es)"
        )
    totals = result.trace_cache
    print(
        f"trace cache totals: {totals['memory_hits']} memory hit(s), "
        f"{totals.get('shm_hits', 0)} shm hit(s), "
        f"{totals['disk_hits']} disk hit(s), {totals['misses']} miss(es), "
        f"{totals['quarantined']} quarantined"
    )
    if args.output_dir:
        print(f"per-campaign traces, metrics, and matrices in {args.output_dir}")
    return 0


def _command_groups(args: argparse.Namespace) -> int:
    from repro.core.campaign import run_campaign
    from repro.core.clustering import find_groups, group_representatives
    from repro.machines.calibrated import load_calibrated_machine

    machine = load_calibrated_machine(args.machine, args.distance)
    campaign = run_campaign(
        machine,
        config=_measurement_config(args),
        repetitions=args.repetitions,
        seed=args.seed,
        **_campaign_execution_kwargs(args),
    )
    groups = find_groups(campaign, num_groups=args.num_groups)
    print(f"SAVAT clusters on {machine.describe()}:")
    for group in groups:
        print("  {" + ", ".join(sorted(group)) + "}")
    print("representatives:", ", ".join(group_representatives(groups)))
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    from repro.analysis.code_audit import audit_program, audit_report
    from repro.core.matrix import SavatMatrix
    from repro.isa.assembler import assemble
    from repro.isa.events import EVENT_ORDER
    from repro.machines.reference_data import get_reference

    with open(args.source) as handle:
        program = assemble(handle.read(), name=args.source)
    reference = get_reference(args.machine, args.distance)
    matrix = SavatMatrix(
        EVENT_ORDER, reference.values_zj, reference.machine, reference.distance_m
    )
    risks = audit_program(
        program, matrix, memory_assumption=args.assume_memory
    )
    floor = float(matrix.symmetrized().diagonal().mean())
    print(audit_report(risks, floor))
    leaking = [risk for risk in risks if risk.savat_estimate_zj > 2 * floor]
    return 1 if leaking else 0


def _command_attack(args: argparse.Namespace) -> int:
    from repro.attacks.distinguisher import run_attack
    from repro.machines.calibrated import load_calibrated_machine

    key_bits = [int(bit) for bit in args.key]
    machine = load_calibrated_machine(args.machine, args.distance)
    result = run_attack(machine, key_bits, seed=args.seed)
    print(f"true key:      {''.join(map(str, result.true_bits))}")
    print(f"recovered key: {''.join(map(str, result.recovered_bits))}")
    print(f"bit accuracy:  {result.accuracy:.0%}{'  (exact)' if result.exact else ''}")
    return 0 if result.exact else 1


def _command_epi(args: argparse.Namespace) -> int:
    from repro.baselines.epi import epi_table
    from repro.machines.calibrated import load_calibrated_machine

    machine = load_calibrated_machine(args.machine, args.distance)
    table = epi_table(machine)
    print(f"energy per instruction on {machine.describe()}:")
    for name, result in sorted(table.items(), key=lambda item: -item[1].energy_j):
        print(
            f"  {name:>5}: {result.energy_pj:9.1f} pJ "
            f"({result.cycles_per_instruction:.0f} cycles/iteration)"
        )
    return 0


def _command_frequency(args: argparse.Namespace) -> int:
    from repro.core.frequency_selection import recommend_frequency
    from repro.em.environment import quiet_lab_environment

    recommendation = recommend_frequency(
        quiet_lab_environment(), args.low, args.high, args.step
    )
    print(recommendation)
    for frequency, noise in sorted(recommendation.surveyed.items()):
        marker = "  <- chosen" if frequency == recommendation.frequency_hz else ""
        print(f"  {frequency / 1e3:7.1f} kHz: {noise:.3e} W{marker}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="savat",
        description="SAVAT side-channel measurement on a simulated bench "
        "(reproduction of Callan/Zajic/Prvulovic, MICRO 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    measure = subparsers.add_parser("measure", help="measure one A/B pairing")
    measure.add_argument("event_a", help="event A (e.g. ADD)")
    measure.add_argument("event_b", help="event B (e.g. LDM)")
    _add_machine_arguments(measure)
    measure.add_argument("--frequency", type=float, default=80e3, help="alternation Hz")
    measure.add_argument(
        "--method",
        choices=("analytic", "full", "synthesis"),
        default="analytic",
        help="measurement method ('synthesis' is a legacy alias for 'full')",
    )
    measure.set_defaults(handler=_command_measure)

    campaign = subparsers.add_parser("campaign", help="run a pairwise matrix campaign")
    _add_machine_arguments(campaign)
    campaign.add_argument(
        "--events",
        type=_event_list,
        default=None,
        metavar="A,B,...",
        help="comma-separated event subset (validated against the catalog; "
        "default: all eleven events)",
    )
    campaign.add_argument("--repetitions", type=int, default=3)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--format", choices=("table", "csv", "json"), default="table")
    _add_measurement_arguments(campaign)
    _add_execution_arguments(campaign)
    campaign.set_defaults(handler=_command_campaign)

    study = subparsers.add_parser(
        "study",
        help="run a machines x distances grid of campaigns over one "
        "shared worker pool and kernel-trace cache",
    )
    study.add_argument(
        "--machines",
        type=_machine_list,
        default=["core2duo"],
        metavar="M,N,...",
        help="comma-separated catalog machines (default: core2duo)",
    )
    study.add_argument(
        "--distances",
        type=_distance_list,
        default=[0.10, 0.50],
        metavar="D,E,...",
        help="comma-separated antenna distances in meters, each positive "
        "and finite (default: 0.10,0.50)",
    )
    study.add_argument(
        "--events",
        type=_event_list,
        default=None,
        metavar="A,B,...",
        help="comma-separated event subset (validated against the catalog; "
        "default: all eleven events)",
    )
    study.add_argument("--repetitions", type=int, default=3)
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--format", choices=("table", "json"), default="table")
    _add_measurement_arguments(study)
    study.add_argument(
        "--workers",
        type=_workers,
        default=0,
        metavar="N",
        help="worker processes for the shared pool serving every campaign "
        "(0 or 1: serial; results are bit-identical either way)",
    )
    study.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="force the shared-memory plane on (--shm) or off (--no-shm); "
        "in a study it also gives the shared trace cache a "
        "shared-memory tier (default: on for pooled runs where "
        "supported; $SAVAT_SHM=0 disables it)",
    )
    study.add_argument(
        "--schedule",
        choices=("rowmajor", "cost"),
        default="rowmajor",
        help="cell submission order for every pooled campaign "
        "(default: rowmajor)",
    )
    study.add_argument(
        "--cache-dir",
        default=os.environ.get("SAVAT_CACHE_DIR"),
        metavar="DIR",
        help="on-disk result cache shared by all campaigns "
        "(default: $SAVAT_CACHE_DIR, no caching if unset)",
    )
    study.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if --cache-dir or "
        "$SAVAT_CACHE_DIR is set",
    )
    study.add_argument(
        "--trace-cache-dir",
        default=None,
        metavar="DIR",
        help="disk tier for the shared kernel-trace cache (default: "
        "$SAVAT_TRACE_CACHE_DIR, then <cache-dir>/traces, then a "
        "temporary directory)",
    )
    study.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the kernel-trace cache (every campaign recomputes "
        "its traces; useful for benchmarking the cache's win)",
    )
    study.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="per-cell retry budget for transient worker faults "
        "(default: 2)",
    )
    study.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell attempt (default: no budget)",
    )
    study.add_argument(
        "--output-dir",
        default=None,
        metavar="DIR",
        help="write each campaign's JSONL trace, Prometheus metrics, and "
        "matrix JSON under DIR (inputs for python -m repro.obs.check)",
    )
    study.set_defaults(handler=_command_study)

    groups = subparsers.add_parser("groups", help="cluster events by SAVAT")
    _add_machine_arguments(groups)
    groups.add_argument("--num-groups", type=int, default=4)
    groups.add_argument("--repetitions", type=int, default=2)
    groups.add_argument("--seed", type=int, default=0)
    _add_measurement_arguments(groups)
    _add_execution_arguments(groups)
    groups.set_defaults(handler=_command_groups)

    audit = subparsers.add_parser("audit", help="static leak audit of an .s file")
    audit.add_argument("source", help="assembly source file")
    _add_machine_arguments(audit)
    audit.add_argument(
        "--assume-memory",
        default="MEMORY",
        choices=("MEMORY", "L2", "L1"),
        help="cache level assumed for memory accesses (default: MEMORY)",
    )
    audit.set_defaults(handler=_command_audit)

    attack = subparsers.add_parser("attack", help="EM key-extraction demo")
    attack.add_argument("--key", default="1011010011", help="secret key bits")
    _add_machine_arguments(attack)
    attack.add_argument("--seed", type=int, default=0)
    attack.set_defaults(handler=_command_attack)

    epi = subparsers.add_parser(
        "epi", help="energy-per-instruction baseline measurement"
    )
    _add_machine_arguments(epi)
    epi.set_defaults(handler=_command_epi)

    frequency = subparsers.add_parser(
        "frequency", help="survey the environment for a quiet alternation frequency"
    )
    frequency.add_argument("--low", type=float, default=40e3)
    frequency.add_argument("--high", type=float, default=200e3)
    frequency.add_argument("--step", type=float, default=5e3)
    frequency.set_defaults(handler=_command_frequency)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
