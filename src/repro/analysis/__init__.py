"""Analysis and reporting: visualizations, statistics, claim checks."""

from repro.analysis.code_audit import (
    BranchRisk,
    MEMORY_ASSUMPTIONS,
    audit_program,
    audit_report,
    instruction_event,
)
from repro.analysis.report import (
    ClaimCheck,
    claims_summary,
    core2duo_claims,
    distance_claims,
    experiment_report,
)
from repro.analysis.stats import (
    crossover_distance,
    group_means,
    matrix_correlations,
    offdiagonal,
)
from repro.analysis.visualize import (
    SHADE_RAMP,
    bar_chart,
    grayscale_matrix,
    matrix_table,
    shade,
    spectrum_plot,
)

__all__ = [
    "BranchRisk",
    "ClaimCheck",
    "MEMORY_ASSUMPTIONS",
    "audit_program",
    "audit_report",
    "instruction_event",
    "SHADE_RAMP",
    "bar_chart",
    "claims_summary",
    "core2duo_claims",
    "crossover_distance",
    "distance_claims",
    "experiment_report",
    "grayscale_matrix",
    "group_means",
    "matrix_correlations",
    "matrix_table",
    "offdiagonal",
    "shade",
    "spectrum_plot",
]
