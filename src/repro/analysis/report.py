"""Paper-vs-measured reporting (the tables EXPERIMENTS.md records).

:func:`experiment_report` renders one experiment's comparison — the
measured matrix, the paper's matrix, and the shape-agreement statistics
— as plain text; :func:`claims_report` checks the paper's headline
qualitative claims against a measured matrix one by one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import matrix_correlations
from repro.analysis.visualize import matrix_table
from repro.core.matrix import SavatMatrix
from repro.machines.reference_data import ReferenceMatrix


@dataclass
class ClaimCheck:
    """One qualitative claim from the paper, checked against data."""

    claim: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        return f"[{status}] {self.claim} ({self.detail})"


def experiment_report(matrix: SavatMatrix, reference: ReferenceMatrix) -> str:
    """Side-by-side report of a measured campaign vs the paper."""
    measured = matrix.mean()
    paper = reference.values_zj
    correlations = matrix_correlations(measured, paper)
    lines = [
        f"Machine: {matrix.machine} at {matrix.distance_m * 100:.0f} cm "
        f"({reference.figure})",
        "",
        matrix_table(measured, matrix.events, title="Measured SAVAT (zJ):"),
        "",
        matrix_table(paper, matrix.events, title="Paper SAVAT (zJ):"),
        "",
        f"Shape agreement: Pearson {correlations['pearson']:.3f}, "
        f"Spearman {correlations['spearman']:.3f}, "
        f"mean relative error {correlations['mean_relative_error']:.1%}",
        f"Repeatability (std/mean): {matrix.std_over_mean():.3f} "
        f"(paper reports ~0.05)",
    ]
    return "\n".join(lines)


def core2duo_claims(matrix: SavatMatrix) -> list[ClaimCheck]:
    """The paper's Section V-A claims, checked on a Core 2 Duo campaign."""
    mean = matrix.mean()
    checks: list[ClaimCheck] = []

    # 0.15 zJ tolerance: the paper's own table has a few display-
    # precision ties on its diagonal.
    rows_minimal, columns_minimal = matrix.diagonal_minimality(tolerance_zj=0.15)
    count = len(matrix.events)
    checks.append(
        ClaimCheck(
            claim="diagonal (A/A) is the smallest entry in its row and column "
            "(the paper allows one exception)",
            holds=rows_minimal >= count - 2 and columns_minimal >= count - 2,
            detail=f"{rows_minimal}/{count} rows, {columns_minimal}/{count} columns "
            "(0.15 zJ tolerance)",
        )
    )

    add_sub = matrix.cell("ADD", "SUB")
    add_add = matrix.cell("ADD", "ADD")
    checks.append(
        ClaimCheck(
            claim="ADD/SUB is as hard to distinguish as ADD/ADD "
            "(similar-activity instructions have very low mutual SAVAT)",
            holds=add_sub <= 2.0 * add_add,
            detail=f"ADD/SUB {add_sub:.2f} zJ vs ADD/ADD {add_add:.2f} zJ",
        )
    )

    arithmetic_vs_offchip = matrix.cell("ADD", "LDM")
    checks.append(
        ClaimCheck(
            claim="off-chip accesses vs on-chip activity have high SAVAT",
            holds=arithmetic_vs_offchip >= 3.0 * add_add,
            detail=f"ADD/LDM {arithmetic_vs_offchip:.2f} zJ vs ADD/ADD {add_add:.2f} zJ",
        )
    )

    add_ldl2 = matrix.cell("ADD", "LDL2")
    checks.append(
        ClaimCheck(
            claim="L2 hits are about as distinguishable from arithmetic as "
            "off-chip accesses are (at short distance)",
            holds=0.3 <= add_ldl2 / max(arithmetic_vs_offchip, 1e-12) <= 3.0,
            detail=f"ADD/LDL2 {add_ldl2:.2f} zJ vs ADD/LDM {arithmetic_vs_offchip:.2f} zJ",
        )
    )

    ldm_ldl2 = matrix.cell("LDM", "LDL2")
    checks.append(
        ClaimCheck(
            claim="LDM and LDL2 are even easier to tell apart from each other "
            "than from arithmetic (their fields differ)",
            holds=ldm_ldl2 > max(arithmetic_vs_offchip, add_ldl2),
            detail=f"LDM/LDL2 {ldm_ldl2:.2f} zJ",
        )
    )

    add_div = matrix.cell("ADD", "DIV")
    add_mul = matrix.cell("ADD", "MUL")
    checks.append(
        ClaimCheck(
            claim="DIV is noticeably easier to distinguish than other arithmetic",
            holds=add_div > 1.2 * add_mul,
            detail=f"ADD/DIV {add_div:.2f} zJ vs ADD/MUL {add_mul:.2f} zJ",
        )
    )

    stl2_mean = float(np.mean([matrix.cell("STL2", e) for e in ("ADD", "SUB", "MUL", "NOI")]))
    ldl2_mean = float(np.mean([matrix.cell("LDL2", e) for e in ("ADD", "SUB", "MUL", "NOI")]))
    checks.append(
        ClaimCheck(
            claim="an L2 store hit is noticeably easier to distinguish than an "
            "L2 load hit (write-back activity)",
            holds=stl2_mean > ldl2_mean,
            detail=f"STL2 vs arith {stl2_mean:.2f} zJ, LDL2 vs arith {ldl2_mean:.2f} zJ",
        )
    )
    return checks


def distance_claims(
    matrix_10cm: SavatMatrix, matrix_50cm: SavatMatrix, matrix_100cm: SavatMatrix
) -> list[ClaimCheck]:
    """The paper's Section V-B distance claims."""
    checks: list[ClaimCheck] = []

    near = matrix_10cm.cell("ADD", "LDM")
    mid = matrix_50cm.cell("ADD", "LDM")
    far = matrix_100cm.cell("ADD", "LDM")
    checks.append(
        ClaimCheck(
            claim="SAVAT drops sharply from 10 cm to 50 cm",
            holds=mid < 0.7 * near,
            detail=f"ADD/LDM {near:.2f} -> {mid:.2f} zJ",
        )
    )
    checks.append(
        ClaimCheck(
            claim="SAVAT does not drop much from 50 cm to 100 cm",
            holds=far > 0.5 * mid,
            detail=f"ADD/LDM {mid:.2f} -> {far:.2f} zJ",
        )
    )

    offchip_far = matrix_100cm.cell("ADD", "LDM")
    l2_far = matrix_100cm.cell("ADD", "LDL2")
    checks.append(
        ClaimCheck(
            claim="at long range, off-chip accesses are by far the most "
            "distinguishable events",
            holds=offchip_far > 1.3 * l2_far,
            detail=f"ADD/LDM {offchip_far:.2f} zJ vs ADD/LDL2 {l2_far:.2f} zJ at 100 cm",
        )
    )

    div_near_ratio = matrix_10cm.cell("ADD", "DIV") / matrix_10cm.cell("ADD", "MUL")
    div_far_ratio = matrix_100cm.cell("ADD", "DIV") / matrix_100cm.cell("ADD", "MUL")
    checks.append(
        ClaimCheck(
            claim="DIV's advantage over other arithmetic shrinks with distance",
            holds=div_far_ratio < div_near_ratio,
            detail=f"ADD/DIV over ADD/MUL: {div_near_ratio:.2f}x at 10 cm, "
            f"{div_far_ratio:.2f}x at 100 cm",
        )
    )
    return checks


def claims_summary(checks: list[ClaimCheck]) -> str:
    """Render claim checks with a pass count header."""
    passed = sum(1 for check in checks if check.holds)
    lines = [f"{passed}/{len(checks)} claims hold"]
    lines.extend(str(check) for check in checks)
    return "\n".join(lines)
