"""Static leak audit: rank a program's data-dependent branches by SAVAT.

The paper's guidance for programmers: "in code that processes sensitive
data, special care should be taken to avoid situations where a memory
access instruction might have an L2 hit or miss depending on the value
of some sensitive data item ... the most worrisome situation ... would
be one where a DIV instruction is executed or not depending on sensitive
data."  This module turns that advice into a tool: given a program and a
measured SAVAT matrix, it walks every conditional branch, extracts the
two successor paths, maps their instructions to Figure-5 events (with a
configurable worst-case assumption for memory accesses), and scores each
branch with the additive sequence-SAVAT estimate.

The result is the prioritized to-fix list the introduction promises:
"programmers [can] change their code to avoid creating high-SAVAT
instruction-level differences that depend on secret information."
"""

from __future__ import annotations


from dataclasses import dataclass

from repro.core.matrix import SavatMatrix
from repro.core.sequences import estimate_sequence_savat
from repro.errors import ConfigurationError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

#: Default opcode-to-event mapping.  Memory accesses assume the worst
#: case (off-chip) because a static tool cannot know the cache level;
#: pass ``memory_assumption="L1"``-style overrides to refine.
_BASE_EVENT_MAP: dict[Opcode, str] = {
    Opcode.MOV: "ADD",
    Opcode.CMOVZ: "ADD",
    Opcode.CMOVNZ: "ADD",
    Opcode.ADD: "ADD",
    Opcode.SUB: "SUB",
    Opcode.AND: "ADD",
    Opcode.OR: "ADD",
    Opcode.XOR: "ADD",
    Opcode.SHL: "ADD",
    Opcode.SHR: "ADD",
    Opcode.INC: "ADD",
    Opcode.DEC: "ADD",
    Opcode.CMP: "ADD",
    Opcode.TEST: "ADD",
    Opcode.LEA: "ADD",
    Opcode.IMUL: "MUL",
    Opcode.IDIV: "DIV",
    Opcode.NOP: "NOI",
}

#: Cache-level assumptions a caller may pick for memory instructions.
MEMORY_ASSUMPTIONS: dict[str, tuple[str, str]] = {
    "MEMORY": ("LDM", "STM"),
    "L2": ("LDL2", "STL2"),
    "L1": ("LDL1", "STL1"),
}


@dataclass
class BranchRisk:
    """One conditional branch's leak assessment."""

    branch_index: int
    branch_text: str
    taken_events: tuple[str, ...]
    fallthrough_events: tuple[str, ...]
    savat_estimate_zj: float

    def __str__(self) -> str:
        return (
            f"[{self.savat_estimate_zj:6.2f} zJ] instruction {self.branch_index}: "
            f"{self.branch_text}  taken={'+'.join(self.taken_events) or '-'}  "
            f"fallthrough={'+'.join(self.fallthrough_events) or '-'}"
        )


def instruction_event(
    instruction: Instruction, memory_assumption: str = "MEMORY"
) -> str | None:
    """Figure-5 event name for one instruction, or None for branches."""
    if instruction.is_branch or instruction.opcode is Opcode.HALT:
        return None
    if instruction.opcode in (Opcode.LOAD, Opcode.STORE):
        try:
            load_event, store_event = MEMORY_ASSUMPTIONS[memory_assumption.upper()]
        except KeyError:
            raise ConfigurationError(
                f"unknown memory assumption {memory_assumption!r}; "
                f"options: {', '.join(MEMORY_ASSUMPTIONS)}"
            ) from None
        return store_event if instruction.opcode is Opcode.STORE else load_event
    try:
        return _BASE_EVENT_MAP[instruction.opcode]
    except KeyError:
        raise ConfigurationError(
            f"no event mapping for opcode {instruction.opcode!r}"
        ) from None


def _path_events(
    program: Program,
    start: int,
    horizon: int,
    memory_assumption: str,
) -> tuple[str, ...]:
    """Events along the straight-line path from ``start``.

    Collection stops at the horizon, at a HALT, at program end, or at a
    *backward* branch (a loop edge — beyond a static tool's pay grade);
    forward unconditional jumps are followed, conditional branches end
    the path (their own risk gets its own entry).
    """
    events: list[str] = []
    index = start
    while index < len(program) and len(events) < horizon:
        instruction = program[index]
        if instruction.opcode is Opcode.HALT:
            break
        if instruction.opcode is Opcode.JMP:
            target = program.label_index(instruction.target)
            if target <= index:
                break
            index = target
            continue
        if instruction.is_branch:
            break
        event = instruction_event(instruction, memory_assumption)
        if event is not None:
            events.append(event)
        index += 1
    return tuple(events)


def audit_program(
    program: Program,
    matrix: SavatMatrix,
    horizon: int = 16,
    memory_assumption: str = "MEMORY",
) -> list[BranchRisk]:
    """Rank every conditional branch by the SAVAT of its two paths.

    Parameters
    ----------
    program:
        The program to audit (typically assembled from the kernel under
        review).
    matrix:
        A measured (or reference) SAVAT matrix providing the pairwise
        costs.
    horizon:
        Maximum instructions followed down each path.
    memory_assumption:
        Which cache level memory accesses are assumed to hit
        (``"MEMORY"``, ``"L2"``, or ``"L1"``).

    Returns
    -------
    list[BranchRisk]
        Sorted loudest-first.  An empty list means no conditional
        branches — no control-flow leak surface at all.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    risks: list[BranchRisk] = []
    for index, instruction in enumerate(program):
        if instruction.opcode not in (Opcode.JNZ, Opcode.JZ):
            continue
        target = program.label_index(instruction.target)
        if target <= index:
            continue  # loop back-edge, not a data-dependent selection
        taken = _path_events(program, target, horizon, memory_assumption)
        fallthrough = _path_events(program, index + 1, horizon, memory_assumption)
        estimate = estimate_sequence_savat(matrix, list(taken), list(fallthrough))
        risks.append(
            BranchRisk(
                branch_index=index,
                branch_text=str(instruction),
                taken_events=taken,
                fallthrough_events=fallthrough,
                savat_estimate_zj=estimate,
            )
        )
    risks.sort(key=lambda risk: risk.savat_estimate_zj, reverse=True)
    return risks


def audit_report(risks: list[BranchRisk], floor_zj: float) -> str:
    """Human-readable audit summary.

    Branches within 2x of the measurement floor are reported as balanced
    (an attacker can't use them); the rest are the to-fix list.
    """
    if not risks:
        return "no conditional branches: no control-flow leak surface"
    lines = ["SAVAT code audit (loudest data-dependent branches first):"]
    for risk in risks:
        verdict = "BALANCED" if risk.savat_estimate_zj <= 2 * floor_zj else "LEAKS"
        lines.append(f"  {verdict:>8}  {risk}")
    return "\n".join(lines)
