"""Terminal visualizations of SAVAT results.

The paper presents its matrices both as numeric tables (Figure 9) and as
grayscale images (Figures 10/12/14/17/18), plus bar charts of selected
pairings (Figures 11/13/15/16).  These renderers produce the same
artifacts as text, so every benchmark can print the figure it
regenerates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Light-to-dark ramp used for the grayscale matrix (white = smallest
#: SAVAT, black = largest, matching the paper's convention).
SHADE_RAMP = " .:-=+*#%@"


def shade(value: float, low: float, high: float, ramp: str = SHADE_RAMP) -> str:
    """Map ``value`` in [low, high] to a ramp character."""
    if high <= low:
        return ramp[0]
    position = (value - low) / (high - low)
    index = int(np.clip(position, 0.0, 1.0) * (len(ramp) - 1))
    return ramp[index]


def matrix_table(
    values: np.ndarray,
    labels: Sequence[str],
    title: str = "",
    cell_format: str = "{:6.1f}",
) -> str:
    """Numeric table in the style of the paper's Figure 9."""
    values = np.asarray(values, dtype=np.float64)
    count = len(labels)
    if values.shape != (count, count):
        raise ConfigurationError(
            f"matrix shape {values.shape} does not match {count} labels"
        )
    width = max(max(len(label) for label in labels), 6)
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " " * (width + 1) + " ".join(f"{label:>{width}}" for label in labels)
    lines.append(header)
    for i, label in enumerate(labels):
        row = " ".join(f"{cell_format.format(value):>{width}}" for value in values[i])
        lines.append(f"{label:>{width}} {row}")
    return "\n".join(lines)


def grayscale_matrix(
    values: np.ndarray,
    labels: Sequence[str],
    title: str = "",
) -> str:
    """ASCII grayscale rendering in the style of Figures 10/12/14/17/18.

    White (space) is the smallest value in the matrix, black (``@``) the
    largest; each cell is doubled horizontally for a square-ish aspect.
    """
    values = np.asarray(values, dtype=np.float64)
    count = len(labels)
    if values.shape != (count, count):
        raise ConfigurationError(
            f"matrix shape {values.shape} does not match {count} labels"
        )
    low = float(values.min())
    high = float(values.max())
    width = max(len(label) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " " * (width + 1) + " ".join(label[:2] for label in labels)
    lines.append(header)
    for i, label in enumerate(labels):
        cells = " ".join(shade(value, low, high) * 2 for value in values[i])
        lines.append(f"{label:>{width}} {cells}")
    lines.append(f"(white = {low:.1f}, black = {high:.1f})")
    return "\n".join(lines)


def bar_chart(
    rows: Sequence[tuple[str, float]],
    title: str = "",
    unit: str = "zJ",
    width: int = 50,
) -> str:
    """Horizontal ASCII bar chart in the style of Figures 11/13/15/16."""
    if not rows:
        raise ConfigurationError("bar chart needs at least one row")
    if width < 4:
        raise ConfigurationError(f"chart width must be >= 4, got {width}")
    peak = max(value for _label, value in rows)
    label_width = max(len(label) for label, _value in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        length = 0 if peak <= 0 else int(round(value / peak * width))
        bar = "#" * length
        lines.append(f"{label:>{label_width}} |{bar:<{width}} {value:.2f} {unit}")
    return "\n".join(lines)


def spectrum_plot(
    freqs_hz: np.ndarray,
    psd_w_per_hz: np.ndarray,
    height: int = 16,
    width: int = 72,
    title: str = "",
) -> str:
    """Log-scale ASCII spectrum in the style of Figures 7/8."""
    freqs = np.asarray(freqs_hz, dtype=np.float64)
    psd = np.asarray(psd_w_per_hz, dtype=np.float64)
    if freqs.shape != psd.shape or freqs.ndim != 1 or len(freqs) < 2:
        raise ConfigurationError("spectrum plot needs matching 1-D freq/psd arrays")
    if height < 4 or width < 8:
        raise ConfigurationError("spectrum plot needs height >= 4 and width >= 8")
    # Downsample to the plot width by max-pooling (peaks must survive).
    edges = np.linspace(0, len(freqs), width + 1, dtype=int)
    pooled = np.array(
        [psd[start:end].max() if end > start else psd[min(start, len(psd) - 1)]
         for start, end in zip(edges[:-1], edges[1:])]
    )
    floor = max(pooled[pooled > 0].min() if np.any(pooled > 0) else 1e-30, 1e-30)
    log_values = np.log10(np.clip(pooled, floor, None))
    low, high = float(log_values.min()), float(log_values.max())
    span = max(high - low, 1e-12)
    rows: list[str] = []
    if title:
        rows.append(title)
    for level in range(height, 0, -1):
        threshold = low + span * level / height
        line = "".join("#" if value >= threshold else " " for value in log_values)
        decade = 10 ** (threshold)
        rows.append(f"{decade:8.1e} |{line}")
    rows.append(" " * 10 + "-" * width)
    rows.append(
        " " * 10
        + f"{freqs[0] / 1e3:.1f} kHz{'':>{max(width - 20, 1)}}{freqs[-1] / 1e3:.1f} kHz"
    )
    return "\n".join(rows)
