"""Statistical helpers for comparing measured matrices with the paper."""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


def offdiagonal(matrix: np.ndarray) -> np.ndarray:
    """All off-diagonal entries of a square matrix, flattened."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(f"need a square matrix, got shape {matrix.shape}")
    mask = ~np.eye(matrix.shape[0], dtype=bool)
    return matrix[mask]


def matrix_correlations(measured: np.ndarray, reference: np.ndarray) -> dict[str, float]:
    """Pearson/Spearman correlation and relative error over off-diagonals."""
    measured_flat = offdiagonal(measured)
    reference_flat = offdiagonal(reference)
    if measured_flat.shape != reference_flat.shape:
        raise ConfigurationError("matrices must share a shape")
    pearson = float(np.corrcoef(measured_flat, reference_flat)[0, 1])
    spearman = float(scipy_stats.spearmanr(measured_flat, reference_flat).statistic)
    valid = reference_flat > 0
    relative = float(
        np.mean(np.abs(measured_flat[valid] - reference_flat[valid]) / reference_flat[valid])
    )
    return {"pearson": pearson, "spearman": spearman, "mean_relative_error": relative}


def group_means(matrix: np.ndarray, labels: list[str], groups: dict[str, list[str]]) -> dict:
    """Mean inter-group SAVAT for each (group, group) combination.

    The diagonal blocks give intra-group means (the paper: "low
    intra-group and high inter-group SAVATs").
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    index = {label: i for i, label in enumerate(labels)}
    result: dict[tuple[str, str], float] = {}
    for name_a, members_a in groups.items():
        for name_b, members_b in groups.items():
            cells = [
                matrix[index[a], index[b]]
                for a in members_a
                for b in members_b
                if not (name_a == name_b and a == b)
            ]
            if cells:
                result[(name_a, name_b)] = float(np.mean(cells))
    return result


def crossover_distance(
    distances_m: list[float],
    values_a: list[float],
    values_b: list[float],
) -> float | None:
    """Distance at which series A stops exceeding series B (log interp).

    Used to locate where on-chip pairings sink below off-chip pairings
    as the antenna moves away (the Section V-B observation).  Returns
    ``None`` if the series never cross.
    """
    if not (len(distances_m) == len(values_a) == len(values_b)) or len(distances_m) < 2:
        raise ConfigurationError("need matched series of length >= 2")
    for (d0, a0, b0), (d1, a1, b1) in zip(
        zip(distances_m, values_a, values_b),
        zip(distances_m[1:], values_a[1:], values_b[1:]),
    ):
        gap0 = a0 - b0
        gap1 = a1 - b1
        if gap0 == 0:
            return d0
        if gap0 * gap1 < 0:
            fraction = abs(gap0) / (abs(gap0) + abs(gap1))
            return float(np.exp(np.log(d0) + fraction * (np.log(d1) - np.log(d0))))
    return None
