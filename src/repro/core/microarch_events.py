"""SAVAT for microarchitectural events beyond the data cache (§VII).

Measures pairwise SAVAT between :mod:`repro.codegen.microarch` events —
currently the branch-prediction events BRH/BRM, pairable with any
non-memory Figure-5 event — through the machine's calibrated EM model.

Caveat recorded in DESIGN.md: the paper published no branch-event
measurements, so these cells have no calibration anchor.  The signal
they measure comes from components the Figure-9 calibration *did*
constrain (the flush's fetch/decode replay), plus the predictor array
itself, whose coupling the fit leaves essentially unconstrained (no
Figure-5 event exercises it differentially); treat absolute values as
model output, relative structure as the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.alternation import (
    POINTER_REGISTER_A,
    POINTER_REGISTER_B,
)
from repro.codegen.microarch import (
    LFSR_REGISTER,
    LFSR_SEED,
    MicroarchEvent,
    build_microarch_half,
    get_microarch_event,
)
from repro.codegen.pointers import BASE_ADDRESS_A, BASE_ADDRESS_B, SweepPlan
from repro.em.coupling import band_power_from_modes, fourier_coefficient
from repro.errors import MeasurementError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.machines.calibrated import CalibratedMachine
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE


@dataclass
class MicroarchSavatResult:
    """One pairwise microarch-event SAVAT measurement."""

    event_a: str
    event_b: str
    machine: str
    savat_zj: float
    pairs_per_second: float
    achieved_frequency_hz: float
    misprediction_rate: float

    def __str__(self) -> str:
        return (
            f"SAVAT({self.event_a}/{self.event_b}) = {self.savat_zj:.2f} zJ "
            f"on {self.machine} (mispredict rate {self.misprediction_rate:.0%})"
        )


def _half_plan(core) -> SweepPlan:
    """Nominal L1-class sweep for the (non-memory) microarch kernels."""
    footprint = core.hierarchy.l1_geometry.size_bytes // 2
    return SweepPlan(base=BASE_ADDRESS_A, footprint=footprint, offset=64)


def _probe_cpi(machine, event: MicroarchEvent) -> float:
    core = machine.make_core()
    plan = _half_plan(core)
    iterations = 64
    half = build_microarch_half(event, iterations, plan, POINTER_REGISTER_A, "probe")
    program = Program(list(half.instructions) + [Instruction(Opcode.HALT)], name="probe")
    core.registers[POINTER_REGISTER_A] = plan.base
    core.registers[LFSR_REGISTER] = LFSR_SEED
    core.registers["eax"] = 173
    # Warm the predictor (loop branch + slot branch histories).
    core.run(program, warm_hierarchy=True)
    result = core.run(program, warm_hierarchy=True)
    return max(result.cycles - 1, iterations) / iterations


def measure_microarch_savat(
    machine: CalibratedMachine,
    event_a: MicroarchEvent | str,
    event_b: MicroarchEvent | str,
    alternation_frequency_hz: float = 80e3,
    rng: np.random.Generator | None = None,
    loop_noise_fraction: float = 0.05,
) -> MicroarchSavatResult:
    """Measure pairwise SAVAT between two microarchitectural events.

    Event names may be ``"BRH"``/``"BRM"`` or any non-memory Figure-5
    mnemonic.  The pipeline mirrors :func:`repro.core.savat.measure_savat`
    minus the cache priming (these kernels live in L1 by construction).
    """
    if isinstance(event_a, str):
        event_a = get_microarch_event(event_a)
    if isinstance(event_b, str):
        event_b = get_microarch_event(event_b)
    if alternation_frequency_hz <= 0:
        raise MeasurementError(
            f"alternation frequency must be positive, got {alternation_frequency_hz}"
        )

    cpi_a = _probe_cpi(machine, event_a)
    cpi_b = _probe_cpi(machine, event_b)
    core = machine.make_core()
    period_cycles = core.clock_hz / alternation_frequency_hz
    inst_loop_count = max(round(period_cycles / (cpi_a + cpi_b)), 1)

    plan_a = _half_plan(core)
    plan_b = SweepPlan(
        base=BASE_ADDRESS_B, footprint=plan_a.footprint, offset=plan_a.offset
    )
    half_a = build_microarch_half(event_a, inst_loop_count, plan_a, POINTER_REGISTER_A, "a")
    half_b = build_microarch_half(event_b, inst_loop_count, plan_b, POINTER_REGISTER_B, "b")
    program = Program(
        list(half_a.instructions) + list(half_b.instructions) + [Instruction(Opcode.HALT)],
        name=f"{event_a.name}/{event_b.name}",
    )

    core.registers[POINTER_REGISTER_A] = plan_a.base
    core.registers[POINTER_REGISTER_B] = plan_b.base
    core.registers[LFSR_REGISTER] = LFSR_SEED
    core.registers["eax"] = 173
    core.run(program, warm_hierarchy=True)  # warm-up period (and predictor)
    result = core.run(program, warm_hierarchy=True)
    trace = result.trace

    waveform = machine.coupling.project_trace(trace)
    signal_power = band_power_from_modes(
        fourier_coefficient(waveform), REFERENCE_IMPEDANCE
    )
    achieved_frequency = core.clock_hz / trace.num_cycles
    pairs_per_second = inst_loop_count * achieved_frequency

    loop_factor = 1.0
    if rng is not None and loop_noise_fraction > 0:
        loop_factor = max(1.0 + rng.normal(0.0, loop_noise_fraction), 0.0)

    return MicroarchSavatResult(
        event_a=event_a.name,
        event_b=event_b.name,
        machine=machine.name,
        savat_zj=signal_power * loop_factor / pairs_per_second / ZEPTOJOULE,
        pairs_per_second=pairs_per_second,
        achieved_frequency_hz=achieved_frequency,
        misprediction_rate=core.predictor.stats.misprediction_rate,
    )
