"""Study runner: many campaigns, one worker pool, one trace cache.

The paper's headline experiments are *studies*, not single campaigns —
the same 11 events measured across machines and distances (Figs. 9–18),
and §V-B's distance sweep re-measuring identical pairs at 10/25/50/100
cm.  The expensive part of every campaign cell (the ``prime`` +
``core_run`` trace production) depends only on the machine spec, the
pair, and the frequency plan — not on distance, seed, or method — so
every campaign after the first re-derives traces the first already
produced.

:func:`run_study` runs the full ``machines x distances`` grid so that
the work is paid once:

* one shared :class:`~repro.core.trace_cache.TraceCache` with a disk
  tier serves every campaign (the second and later distances of a
  machine skip ``prime``/``core_run`` entirely);
* one persistent :class:`~repro.core.executor.WorkerPool` outlives the
  individual campaigns, so worker processes keep their warm in-memory
  trace LRUs from one campaign to the next (the parent ships the cache
  *path* to workers, never trace payloads);
* each campaign still gets its own result cache namespace, journal,
  and observability bundle (per-campaign trace/metrics files under
  ``output_dir``), exactly as if it had been run standalone — samples
  are bit-identical to independent :func:`~repro.core.campaign.run_campaign`
  calls;
* a study-level :class:`~repro.obs.metrics.MetricsRegistry` aggregates
  per-campaign wall time, cell counts, and trace-cache traffic under
  ``machine``/``distance`` labels.

Campaigns run machine-major (all distances of one machine back to
back), which maximizes trace reuse while the kernels are still warm in
the worker LRUs.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.campaign import PAPER_REPETITIONS, run_campaign
from repro.core.executor import (
    DEFAULT_MAX_RETRIES,
    ProgressCallback,
    ResultCache,
    WorkerPool,
    _validate_workers,
)
from repro.core.matrix import SavatMatrix
from repro.core.savat import MeasurementConfig
from repro.core.shm import resolve_shm
from repro.core.trace_cache import (
    TRACE_CACHE_DIR_ENV,
    TraceCache,
    new_shm_prefix,
    trace_cache_enabled,
)
from repro.errors import ConfigurationError
from repro.isa.events import InstructionEvent
from repro.obs import CampaignObservability
from repro.obs.metrics import MetricsRegistry


def _distance_label(distance_m: float) -> str:
    """Filesystem- and label-friendly rendering of a distance."""
    centimetres = distance_m * 100.0
    if abs(centimetres - round(centimetres)) < 1e-9:
        return f"{int(round(centimetres))}cm"
    return f"{centimetres:g}cm"


class StudyResult:
    """Everything one :func:`run_study` call measured.

    Attributes
    ----------
    matrices:
        One :class:`~repro.core.matrix.SavatMatrix` per campaign, in
        execution order (machine-major, then distance); each carries
        its own ``metadata["execution"]`` exactly as a standalone
        campaign would.
    wall_seconds:
        Wall-clock duration of the whole study.
    registry:
        The study-level metrics registry (``savat_study_*`` families
        labelled by machine and distance).
    trace_cache:
        Study-wide totals of the per-campaign trace-cache counters
        (``memory_hits`` / ``shm_hits`` / ``disk_hits`` / ``misses`` /
        ``stores`` / ``quarantined``).
    """

    def __init__(
        self,
        matrices: list[SavatMatrix],
        wall_seconds: float,
        registry: MetricsRegistry,
        trace_cache: dict[str, int],
    ) -> None:
        self.matrices = matrices
        self.wall_seconds = wall_seconds
        self.registry = registry
        self.trace_cache = trace_cache

    def matrix_for(self, machine: str, distance_m: float) -> SavatMatrix:
        """The campaign matrix for one (machine, distance) pair."""
        for matrix in self.matrices:
            if (
                matrix.machine == machine.lower()
                and abs(matrix.distance_m - float(distance_m)) < 1e-9
            ):
                return matrix
        raise ConfigurationError(
            f"study has no campaign for machine {machine!r} at "
            f"{distance_m!r} m"
        )

    def campaign_wall_seconds(self) -> dict[tuple[str, float], float]:
        """Per-campaign wall seconds keyed by (machine, distance)."""
        return {
            (matrix.machine, matrix.distance_m): float(
                matrix.metadata["execution"]["wall_seconds"]
            )
            for matrix in self.matrices
        }


def run_study(
    machines: Sequence[str],
    distances_m: Sequence[float],
    events: Sequence[InstructionEvent | str] | None = None,
    config: MeasurementConfig | None = None,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = 0,
    workers: int = 0,
    cache_dir: str | os.PathLike | None = None,
    trace_cache: TraceCache | bool | None = None,
    trace_cache_dir: str | os.PathLike | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    cell_timeout_s: float | None = None,
    progress: ProgressCallback | None = None,
    output_dir: str | os.PathLike | None = None,
    observability: Sequence[CampaignObservability] | None = None,
    shm: bool | None = None,
    schedule: str = "rowmajor",
) -> StudyResult:
    """Run the full ``machines x distances`` campaign grid as one study.

    Every campaign produces exactly the samples an independent
    :func:`~repro.core.campaign.run_campaign` call with the same
    arguments would (bit for bit) — the study only removes *redundant*
    work: kernel traces are produced once and reused across distances
    (and re-analyses), and one persistent worker pool serves every
    campaign so worker trace LRUs stay warm between them.

    Parameters
    ----------
    machines:
        Catalog machine names (``"core2duo"``, ...), one campaign per
        machine per distance, machine-major order.
    distances_m:
        Antenna distances in metres; each must be positive and finite
        (validated by :func:`~repro.machines.calibrated.load_calibrated_machine`).
    events / config / repetitions / seed:
        Per-campaign measurement parameters, identical for every
        campaign (the seed too: campaigns are distinguished by machine
        and distance, exactly like the paper's repeated sweeps).
    workers:
        Worker processes for the shared pool (``0``/``1``: every
        campaign runs serially in-process; the shared trace cache still
        removes the redundant work).
    cache_dir:
        Directory for the per-cell result cache.  One
        :class:`~repro.core.executor.ResultCache` is shared by all
        campaigns — campaign content-hash keys keep their cells apart,
        and per-execution counter resets keep their metadata honest.
        Journals are placed inside each campaign's cache directory.
    trace_cache:
        Pre-built :class:`~repro.core.trace_cache.TraceCache` to use,
        or ``False`` to disable trace caching (every campaign then
        recomputes its traces; useful for benchmarking the win).
        Default: a study-owned cache whose disk tier lives in
        ``trace_cache_dir``, falling back to ``$SAVAT_TRACE_CACHE_DIR``,
        then ``<cache_dir>/traces``, then a temporary directory deleted
        when the study ends.  ``SAVAT_TRACE_CACHE=0`` disables it.
    trace_cache_dir:
        Disk-tier directory for the study-owned trace cache (ignored
        when ``trace_cache`` is given).
    max_retries / cell_timeout_s:
        Per-campaign fault-tolerance settings (see
        :func:`~repro.core.executor.execute_campaign`).
    progress:
        Optional per-cell progress callback, shared by all campaigns.
    output_dir:
        When given, each campaign writes a JSONL trace
        (``<machine>_<distance>.trace.jsonl``), a Prometheus metrics
        export (``.prom``) and its matrix (``.json``) under this
        directory — the inputs ``python -m repro.obs.check`` consumes.
    observability:
        Pre-built per-campaign observability bundles, in campaign
        order (advanced; overrides ``output_dir``'s per-campaign
        bundles).  Must have exactly one entry per campaign.
    shm:
        Shared-memory plane for pooled campaigns (see
        :func:`~repro.core.campaign.run_campaign`).  In a study it
        additionally gives the study-owned trace cache a shared-memory
        tier, so sibling workers serve each other traces without the
        ``.npz`` disk round-trip; the study unlinks every segment at
        teardown.
    schedule:
        Cell submission order for every pooled campaign
        (``"rowmajor"`` or ``"cost"``); never changes samples.
    """
    workers = _validate_workers(workers)
    machine_names = [str(name) for name in machines]
    distances = [float(distance) for distance in distances_m]
    if not machine_names:
        raise ConfigurationError("study needs at least one machine")
    if not distances:
        raise ConfigurationError("study needs at least one distance")
    for distance in distances:
        # Fail the whole grid up front rather than mid-study, after
        # earlier campaigns have already burned their wall time.
        if not math.isfinite(distance) or distance <= 0:
            raise ConfigurationError(
                f"distance_m must be a positive, finite distance in metres; "
                f"got {distance!r}"
            )
    grid = [
        (machine_name, distance)
        for machine_name in machine_names
        for distance in distances
    ]
    if observability is not None and len(observability) != len(grid):
        raise ConfigurationError(
            f"observability needs one bundle per campaign "
            f"({len(grid)}), got {len(observability)}"
        )

    shared_result_cache = (
        ResultCache(cache_dir) if cache_dir is not None else None
    )

    # Resolve the shared trace cache.  A study wants a disk tier even
    # when the caller did not configure one: the in-process LRU is
    # bounded below the size of a full-event-set campaign, and pool
    # workers can only share traces through disk.
    temp_trace_dir: tempfile.TemporaryDirectory | None = None
    owned_trace_cache: TraceCache | None = None
    if trace_cache is False or not trace_cache_enabled():
        shared_trace_cache: TraceCache | None = None
    elif isinstance(trace_cache, TraceCache):
        shared_trace_cache = trace_cache
    else:
        directory = trace_cache_dir or os.environ.get(TRACE_CACHE_DIR_ENV)
        if directory is None and cache_dir is not None:
            directory = Path(cache_dir).expanduser() / "traces"
        if directory is None:
            temp_trace_dir = tempfile.TemporaryDirectory(prefix="savat_traces_")
            directory = temp_trace_dir.name
        # The study-owned cache gets a shared-memory tier when the
        # plane is on: sibling workers then serve each other traces
        # without the .npz round-trip.  The study owns the prefix and
        # sweeps it in the ``finally`` below.
        shm_prefix = new_shm_prefix() if resolve_shm(shm) else None
        shared_trace_cache = TraceCache(
            directory=directory, shm_prefix=shm_prefix
        )
        owned_trace_cache = shared_trace_cache

    registry = MetricsRegistry()
    campaigns_total = registry.counter(
        "savat_study_campaigns_total", "Campaigns the study completed."
    )
    cells_total = registry.counter(
        "savat_study_cells_total",
        "Cells measured across all campaigns (simulated, cached, or resumed).",
    )
    study_wall = registry.gauge(
        "savat_study_wall_seconds", "Wall-clock duration of the whole study."
    )
    campaign_wall = registry.gauge(
        "savat_study_campaign_wall_seconds",
        "Per-campaign wall seconds.",
        labelnames=("machine", "distance"),
    )
    study_trace_hits = registry.counter(
        "savat_study_trace_cache_hits_total",
        "Study-wide trace-cache hits, by tier.",
        labelnames=("tier",),
    )
    study_trace_hits.labels(tier="memory")
    study_trace_hits.labels(tier="shm")
    study_trace_hits.labels(tier="disk")
    study_trace_misses = registry.counter(
        "savat_study_trace_cache_misses_total",
        "Study-wide trace-cache misses.",
    )

    totals = {
        "memory_hits": 0,
        "shm_hits": 0,
        "disk_hits": 0,
        "misses": 0,
        "stores": 0,
        "quarantined": 0,
    }
    output_path = Path(output_dir).expanduser() if output_dir is not None else None
    if output_path is not None:
        output_path.mkdir(parents=True, exist_ok=True)

    matrices: list[SavatMatrix] = []
    pool: WorkerPool | None = None
    started = time.perf_counter()
    try:
        if workers > 1:
            pool = WorkerPool(workers, trace_cache=shared_trace_cache)
        for index, (machine_name, distance) in enumerate(grid):
            from repro.machines.calibrated import load_calibrated_machine

            machine = load_calibrated_machine(machine_name, distance)
            if observability is not None:
                bundle = observability[index]
            elif output_path is not None:
                stem = f"{machine.name}_{_distance_label(distance)}"
                bundle = CampaignObservability(
                    trace=output_path / f"{stem}.trace.jsonl",
                    metrics_out=output_path / f"{stem}.prom",
                )
            else:
                bundle = CampaignObservability()
            matrix = run_campaign(
                machine,
                config=config,
                events=events,
                repetitions=repetitions,
                seed=seed,
                progress=progress,
                workers=workers,
                cache=shared_result_cache,
                max_retries=max_retries,
                cell_timeout_s=cell_timeout_s,
                journal=True if shared_result_cache is not None else None,
                observability=bundle,
                trace_cache=(
                    shared_trace_cache if shared_trace_cache is not None else False
                ),
                pool=pool,
                shm=shm,
                schedule=schedule,
            )
            matrices.append(matrix)
            if output_path is not None:
                stem = f"{machine.name}_{_distance_label(distance)}"
                (output_path / f"{stem}.json").write_text(matrix.to_json())

            execution = matrix.metadata["execution"]
            label = _distance_label(distance)
            campaigns_total.inc()
            cells_total.inc(len(matrix.events) ** 2)
            campaign_wall.labels(machine=machine.name, distance=label).set(
                execution["wall_seconds"]
            )
            campaign_trace = execution.get("trace_cache") or {}
            for name in totals:
                totals[name] += int(campaign_trace.get(name, 0))
            if campaign_trace.get("memory_hits"):
                study_trace_hits.labels(tier="memory").inc(
                    campaign_trace["memory_hits"]
                )
            if campaign_trace.get("shm_hits"):
                study_trace_hits.labels(tier="shm").inc(
                    campaign_trace["shm_hits"]
                )
            if campaign_trace.get("disk_hits"):
                study_trace_hits.labels(tier="disk").inc(
                    campaign_trace["disk_hits"]
                )
            if campaign_trace.get("misses"):
                study_trace_misses.inc(campaign_trace["misses"])
    finally:
        # Teardown order matters when an exception unwinds mid-study:
        # outstanding worker futures must drain *before* any shared
        # state (trace segments, the temp trace directory) goes away,
        # or in-flight workers race the unlink and die writing to it.
        if pool is not None:
            pool.drain()
            pool.shutdown()
        if owned_trace_cache is not None:
            owned_trace_cache.unlink_shm()
        if temp_trace_dir is not None:
            temp_trace_dir.cleanup()
        study_wall.set(time.perf_counter() - started)

    return StudyResult(
        matrices=matrices,
        wall_seconds=float(study_wall.value()),
        registry=registry,
        trace_cache=totals,
    )


__all__ = ["StudyResult", "run_study"]
