"""Pairwise SAVAT measurement — the paper's methodology, end to end.

:func:`measure_savat` performs one A/B measurement exactly as Section III
and IV describe:

1. choose ``inst_loop_count`` so the alternation lands on the target
   frequency (80 kHz by default);
2. run the Figure 4 kernel on the simulated machine in cache steady
   state and capture the switching-activity trace of one full period;
3. project the trace through the machine's calibrated EM couplings to
   get the signal at the antenna;
4. extract the power in the +/-1 kHz band around the alternation
   frequency — either analytically (the Fourier coefficient of the
   periodic waveform; fast, the campaign default) or by synthesizing a
   full one-second capture and running it through the spectrum-analyzer
   model (the ``"full"`` method — the only mode that exercises Figure
   7's jitter/dispersion and the analyzer noise correction end to end;
   ``"synthesis"`` is accepted as a legacy alias);
5. correct for the analyzer's average noise level (as the real
   measurement procedure does), add the alternation-loop's residual
   self-noise, and divide by the number of A/B pairs per second.

The result is the per-pair signal energy in zeptojoules — the SAVAT.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.codegen.alternation import build_alternation_program
from repro.codegen.frequency import FrequencyPlan
from repro.codegen.pointers import advance_pointer, sweep_address_stream
from repro.em.coupling import band_power_from_modes, fourier_coefficient
from repro.em.synthesis import JitterModel, period_envelope, synthesize_measurement
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.analyzer_path import reference_analyzer_enabled
from repro.instruments.spectrum_analyzer import Spectrum, SpectrumAnalyzer
from repro.isa.events import InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.activity import ActivityTrace
from repro.uarch.fastpath import fast_path_enabled, prime_extrapolation_enabled
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE

#: Supported measurement methods.
METHODS = ("analytic", "full")

#: Legacy method spellings, normalized by ``MeasurementConfig``.
METHOD_ALIASES = {"synthesis": "full"}

#: Pipeline phases timed by :func:`record_phase_seconds`, in pipeline
#: order.  The campaign executor's observability layer labels its
#: ``savat_cell_phase_seconds`` / ``savat_phase_seconds_total`` metrics
#: with exactly these names.
PHASE_NAMES = ("prime", "core_run", "synthesize", "analyze")

#: Relative per-repetition cost of each measurement method, used as the
#: static prior of the executor's cost-aware cell scheduling.  The
#: ``"full"`` method synthesizes and analyzes a time-domain signal per
#: repetition where ``"analytic"`` integrates a closed form, so its
#: measurement stage dominates the cell; the exact ratio only has to
#: order cells sensibly, not predict wall time.
METHOD_COST_WEIGHTS = {"analytic": 1.0, "full": 25.0}


def estimate_cell_cost(
    plan: FrequencyPlan, repetitions: int, method: str
) -> float:
    """Static prior of one cell's simulation cost, in arbitrary units.

    Two terms dominate a cold cell: the ``prime`` phase scales with the
    pair's combined pointer-sweep footprint (memory pairs like LDM/STM
    pre-condition far more cache state than register pairs), and the
    measurement stage scales with ``repetitions`` times the method's
    per-repetition weight (the ``"full"`` method synthesizes a signal
    per repetition).  The prior only has to *order* cells sensibly —
    recorded per-pair seconds from an earlier run override it when
    available — and ordering never affects samples: every cell replays
    its own seed-schedule entry regardless of submission order.
    """
    spec = plan.spec
    footprint = float(spec.sweep_a.footprint + spec.sweep_b.footprint)
    weight = METHOD_COST_WEIGHTS.get(method, 1.0)
    measure = max(int(repetitions), 1) * weight
    return (1.0 + footprint) * (1.0 + measure)


#: Active phase-timing sink (``None``: phase timing disabled).
_PHASE_SINK: dict[str, float] | None = None


@contextmanager
def record_phase_seconds(sink: dict[str, float]) -> Iterator[dict[str, float]]:
    """Accumulate per-phase wall-clock seconds into ``sink``.

    While active, the measurement pipeline adds elapsed time under the
    keys ``"prime"`` (cache pre-conditioning), ``"core_run"``
    (instruction-level simulation), ``"synthesize"`` (signal tiling) and
    ``"analyze"`` (spectrum / band-power integration) — see
    :data:`PHASE_NAMES`.  The campaign executor wraps each cell in this
    to build the per-cell breakdown in ``matrix.metadata["execution"]``
    and the phase-labeled series in its metrics registry.
    """
    global _PHASE_SINK
    previous = _PHASE_SINK
    _PHASE_SINK = sink
    try:
        yield sink
    finally:
        _PHASE_SINK = previous


@contextmanager
def _phase(name: str) -> Iterator[None]:
    """Time a pipeline phase when a sink is installed (no-op otherwise)."""
    sink = _PHASE_SINK
    if sink is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        sink[name] = sink.get(name, 0.0) + time.perf_counter() - started


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of one SAVAT measurement (paper defaults)."""

    alternation_frequency_hz: float = 80e3
    band_half_width_hz: float = 1e3
    rbw_hz: float = 1.0
    duration_s: float = 1.0
    method: str = "analytic"
    loop_noise_fraction: float = 0.05
    noise_corrected: bool = True
    jitter: JitterModel = field(default_factory=JitterModel)

    def __post_init__(self) -> None:
        if self.method in METHOD_ALIASES:
            object.__setattr__(self, "method", METHOD_ALIASES[self.method])
        if self.method not in METHODS:
            raise ConfigurationError(
                f"unknown measurement method {self.method!r}; options: {METHODS}"
            )
        if self.alternation_frequency_hz <= 0:
            raise ConfigurationError("alternation frequency must be positive")
        if self.band_half_width_hz <= 0:
            raise ConfigurationError("band half-width must be positive")
        if self.rbw_hz <= 0:
            raise ConfigurationError(
                f"resolution bandwidth must be positive, got {self.rbw_hz}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.loop_noise_fraction < 0:
            raise ConfigurationError("loop noise fraction must be non-negative")

    def with_method(self, method: str) -> "MeasurementConfig":
        """Copy of this config with a different measurement method."""
        return replace(self, method=method)


@dataclass
class SavatResult:
    """Outcome of one pairwise SAVAT measurement."""

    event_a: str
    event_b: str
    machine: str
    distance_m: float
    savat_zj: float
    signal_band_power_w: float
    noise_band_power_w: float
    pairs_per_second: float
    achieved_frequency_hz: float
    plan: FrequencyPlan
    spectrum: Spectrum | None = None

    def __str__(self) -> str:
        return (
            f"SAVAT({self.event_a}/{self.event_b}) = {self.savat_zj:.2f} zJ "
            f"on {self.machine} at {self.distance_m * 100:.0f} cm"
        )


_CPI_CACHE: dict[tuple[str, str], float] = {}


def _plan_pair(
    machine: CalibratedMachine,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    frequency_hz: float,
) -> FrequencyPlan:
    """Frequency plan for a pair, with per-(machine, event) CPI caching."""
    from repro.codegen.frequency import measure_cycles_per_iteration

    core = machine.make_core()
    for event in (event_a, event_b):
        key = (machine.name, event.name)
        if key not in _CPI_CACHE:
            _CPI_CACHE[key] = measure_cycles_per_iteration(machine.make_core(), event)
    # Re-solve using cached CPIs by monkey-free arithmetic: replicate the
    # solver's logic with the cached values.
    cpi_a = _CPI_CACHE[(machine.name, event_a.name)]
    cpi_b = _CPI_CACHE[(machine.name, event_b.name)]
    period_cycles_target = core.clock_hz / frequency_hz
    raw_count = period_cycles_target / (cpi_a + cpi_b)
    if raw_count < 0.5:
        raise MeasurementError(
            f"cannot alternate {event_a.name}/{event_b.name} at {frequency_hz:.0f} Hz "
            f"on {machine.name}"
        )
    from repro.codegen.alternation import plan_alternation

    inst_loop_count = max(round(raw_count), 1)
    spec = plan_alternation(
        event_a,
        event_b,
        core.hierarchy.l1_geometry,
        core.hierarchy.l2_geometry,
        inst_loop_count,
    )
    predicted = core.clock_hz / (inst_loop_count * (cpi_a + cpi_b))
    return FrequencyPlan(
        spec=spec,
        target_frequency_hz=frequency_hz,
        predicted_frequency_hz=predicted,
        cycles_per_iteration_a=cpi_a,
        cycles_per_iteration_b=cpi_b,
    )


#: Cap on replayed warm-up periods (memory-heavy pairs need ~2000 to
#: cycle an entire off-chip footprint through the caches).
MAX_PRIME_PERIODS = 4096

#: Relative frequency error above which ``inst_loop_count`` is re-tuned.
FREQUENCY_TOLERANCE = 0.02

#: Chunk size, in alternation periods, used by the steady-state
#: extrapolation detector: priming is replayed chunk by chunk, and two
#: equal canonical snapshots one chunk apart prove pass-periodicity.
PRIME_CHUNK_PERIODS = 32


def _sweep_chunk_stream(sweeps, count: int, start_period: int, periods: int):
    """Interleaved priming stream for ``periods`` periods from ``start_period``.

    ``sweeps`` lists the memory halves' ``(SweepPlan, is_store)`` in
    execution order; the returned stream interleaves them period by
    period exactly as the alternation loop issues them.
    """
    total = periods * count
    streams = [
        sweep_address_stream(
            plan,
            advance_pointer(plan.base, plan.mask, plan.offset, start_period * count),
            total,
        )
        for plan, _is_store in sweeps
    ]
    if len(sweeps) == 1:
        return streams[0], sweeps[0][1]
    stream = np.empty((periods, 2 * count), dtype=np.int64)
    stream[:, :count] = streams[0].reshape(periods, count)
    stream[:, count:] = streams[1].reshape(periods, count)
    store_a = sweeps[0][1]
    store_b = sweeps[1][1]
    if store_a == store_b:
        return stream.reshape(-1), store_a
    period_writes = np.empty(2 * count, dtype=bool)
    period_writes[:count] = store_a
    period_writes[count:] = store_b
    return stream.reshape(-1), np.tile(period_writes, periods)


def _ring_states_equal(state_a, state_b) -> bool:
    return all(
        np.array_equal(array_a, array_b)
        for level_a, level_b in zip(state_a, state_b)
        for array_a, array_b in zip(level_a, level_b)
    )


def _counter_delta(now, before):
    return (
        {name: now[0][name] - before[0][name] for name in now[0]},
        {name: now[1][name] - before[1][name] for name in now[1]},
        now[2] - before[2],
    )


def _prime_fast(hierarchy, sweeps, count: int, periods_needed: int) -> None:
    """Replay priming periods, extrapolating the pass-periodic steady state.

    Each period advances every memory sweep by ``count`` ring slots, so
    once the hierarchy state repeats *up to that rotation* the remaining
    periods are pure repetition: the per-chunk counter deltas are
    constant and the final state is a known rotation of the detected one.
    The detector replays :data:`PRIME_CHUNK_PERIODS`-period chunks,
    canonicalizes the state after each chunk by rotating every ring back
    by the slots already swept, and — on the first repeat — adds the
    remaining whole chunks' counter deltas arithmetically, rotates the
    state forward, and replays only the sub-chunk remainder.  Counters
    and final state are bit-identical to replaying every access.

    Extrapolation requires the rotation to be a cache isomorphism.  Rings
    whose slot count divides both set counts qualify unconditionally; an
    L1-sized ring smaller than the L2 set count qualifies *dynamically*,
    while none of its lines are resident in L2 — the L2 half of the map
    is then vacuous, and in steady state such rings live entirely in L1
    (a line that does spill into L2 persists there for hundreds of
    periods — far longer than a chunk — so the per-boundary absence check
    cannot miss it).  Sweeps failing both tests replay in full through
    the wavefront engine.
    """
    chunk = PRIME_CHUNK_PERIODS
    line = hierarchy.line_bytes
    rings = [(plan.base // line, plan.num_slots) for plan, _is_store in sweeps]
    check_rings = hierarchy.ring_shift_plan(rings)
    eligible = (
        prime_extrapolation_enabled()
        and periods_needed >= 3 * chunk
        and all(plan.offset == line for plan, _is_store in sweeps)
        and check_rings is not None
    )
    if not eligible:
        stream, writes = _sweep_chunk_stream(sweeps, count, 0, periods_needed)
        hierarchy.access_stream(stream, writes)
        return

    done = 0
    previous_state = None
    previous_counters = None
    while done < periods_needed:
        todo = min(chunk, periods_needed - done)
        stream, writes = _sweep_chunk_stream(sweeps, count, done, todo)
        hierarchy.access_stream(stream, writes)
        done += todo
        if todo < chunk or done >= periods_needed:
            break
        if check_rings and not hierarchy.rings_absent_from_l2(check_rings):
            previous_state = None
            continue
        state = hierarchy.canonical_ring_state(rings, -done * count)
        counters = hierarchy.counters()
        if previous_state is not None and _ring_states_equal(state, previous_state):
            skip = (periods_needed - done) // chunk
            if skip:
                hierarchy.add_counters(
                    _counter_delta(counters, previous_counters), times=skip
                )
                hierarchy.apply_ring_shift(rings, skip * chunk * count)
                done += skip * chunk
            remainder = periods_needed - done
            if remainder:
                stream, writes = _sweep_chunk_stream(sweeps, count, done, remainder)
                hierarchy.access_stream(stream, writes)
            return
        previous_state = state
        previous_counters = counters


def prime_alternation_steady_state(core, spec) -> tuple[int, int]:
    """Drive the caches to the alternation loop's periodic steady state.

    The two halves' sweeps interact: a big sweep slowly walks the other
    half's lines out of the caches, a few lines per period, and the
    other half re-fetches them at the same slow rate.  Reaching that
    steady state requires cycling the *larger* footprint completely, so
    this replays both halves' address streams (just the cache accesses —
    no instruction simulation) for enough periods, and returns the sweep
    pointers at the start of the next period so the measured run
    continues seamlessly.

    The fast path precomputes both halves' address streams with NumPy
    (the pointer recurrence has a closed form), interleaves them period
    by period in execution order, and replays them through the wavefront
    engine behind
    :meth:`~repro.uarch.hierarchy.MemoryHierarchy.access_stream` —
    extrapolating the pass-periodic tail arithmetically when the sweeps
    permit it (see :func:`_prime_fast`; ``SAVAT_PRIME_EXTRAPOLATE=0``
    disables just the extrapolation).  State and statistics are
    bit-identical to the scalar reference loop below
    (``SAVAT_REFERENCE_PATH=1`` to force it).
    """
    core.hierarchy.reset()
    count = spec.inst_loop_count
    offset_a = spec.sweep_a.offset
    offset_b = spec.sweep_b.offset

    periods_needed = 2
    for sweep, event in ((spec.sweep_a, spec.event_a), (spec.sweep_b, spec.event_b)):
        if event.is_memory:
            periods_needed = max(periods_needed, -(-sweep.num_slots // count) + 2)
    periods_needed = min(periods_needed, MAX_PRIME_PERIODS)

    mask_a = spec.sweep_a.mask
    mask_b = spec.sweep_b.mask
    a_is_memory = spec.event_a.is_memory
    b_is_memory = spec.event_b.is_memory
    a_is_store = spec.event_a.is_store
    b_is_store = spec.event_b.is_store
    total = periods_needed * count

    if fast_path_enabled():
        sweeps = []
        if a_is_memory:
            sweeps.append((spec.sweep_a, a_is_store))
        if b_is_memory:
            sweeps.append((spec.sweep_b, b_is_store))
        if sweeps:
            _prime_fast(core.hierarchy, sweeps, count, periods_needed)
        pointer_a = advance_pointer(spec.sweep_a.base, mask_a, offset_a, total)
        pointer_b = advance_pointer(spec.sweep_b.base, mask_b, offset_b, total)
        return pointer_a, pointer_b

    pointer_a = spec.sweep_a.base
    pointer_b = spec.sweep_b.base
    access = core.hierarchy.access

    for _period in range(periods_needed):
        for _ in range(count):
            pointer_a = (pointer_a & ~mask_a) | ((pointer_a + offset_a) & mask_a)
            if a_is_memory:
                access(pointer_a, a_is_store)
        for _ in range(count):
            pointer_b = (pointer_b & ~mask_b) | ((pointer_b + offset_b) & mask_b)
            if b_is_memory:
                access(pointer_b, b_is_store)
    return pointer_a, pointer_b


def simulate_alternation_period(
    machine: CalibratedMachine,
    plan: FrequencyPlan,
    adjust_frequency: bool = True,
) -> tuple[ActivityTrace, FrequencyPlan]:
    """One steady-state alternation period's activity trace.

    Replays the address streams to periodic steady state, runs one full
    warm-up period through the core, then captures the next period.  If
    the achieved alternation frequency misses the target by more than
    :data:`FREQUENCY_TOLERANCE` (pair-context cache interference can
    change per-iteration cost versus the isolated probes), the
    ``inst_loop_count`` is re-tuned and the simulation repeated — the
    software-side frequency adjustment the paper's methodology allows.

    Returns the measured trace together with the (possibly re-tuned)
    plan actually used.
    """
    from dataclasses import replace as dataclass_replace

    simulated_plan = plan
    for _attempt in range(3):
        core = machine.make_core()
        simulated_plan = plan
        spec = plan.spec
        program = build_alternation_program(spec)
        with _phase("prime"):
            pointer_a, pointer_b = prime_alternation_steady_state(core, spec)
        registers = spec.initial_registers()
        registers["esi"] = pointer_a
        registers["edi"] = pointer_b
        for name, value in registers.items():
            core.registers[name] = value
        with _phase("core_run"):
            core.run(program, warm_hierarchy=True)  # warm-up period
            result = core.run(program, warm_hierarchy=True)  # measured period
        trace = result.trace

        achieved = core.clock_hz / trace.num_cycles
        relative_error = abs(achieved - plan.target_frequency_hz) / plan.target_frequency_hz
        if not adjust_frequency or relative_error <= FREQUENCY_TOLERANCE:
            return trace, plan
        retuned_count = max(
            round(spec.inst_loop_count * achieved / plan.target_frequency_hz), 1
        )
        if retuned_count == spec.inst_loop_count:
            return trace, plan
        plan = dataclass_replace(
            plan,
            spec=dataclass_replace(spec, inst_loop_count=retuned_count),
            predicted_frequency_hz=plan.target_frequency_hz,
        )
    # Retune attempts exhausted: the trace in hand was simulated with
    # ``simulated_plan``, not the freshly re-tuned ``plan`` — return the
    # plan that actually produced it so downstream pairs-per-second and
    # frequency bookkeeping stay consistent with the trace.
    return trace, simulated_plan


def measure_savat(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    config: MeasurementConfig | None = None,
    rng: np.random.Generator | None = None,
    trace: ActivityTrace | None = None,
    plan: FrequencyPlan | None = None,
) -> SavatResult:
    """Measure the pairwise SAVAT of (A, B) on a calibrated machine.

    Parameters
    ----------
    machine:
        A calibrated machine from
        :func:`repro.machines.load_calibrated_machine`.
    event_a, event_b:
        Paper events (objects or names).
    config:
        Measurement configuration (defaults to the paper's setup).
    rng:
        Randomness for the noise models; omit for the deterministic
        expected-value measurement.
    trace, plan:
        Pre-computed period trace and plan (the campaign runner reuses
        them across repetitions, since repetitions re-draw only the
        environment, as in the paper's multi-day repeats).
    """
    config = config or MeasurementConfig()
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)

    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    if trace is None:
        trace, plan = simulate_alternation_period(machine, plan)

    achieved_frequency = 1.0 / trace.duration_s
    pairs_per_second = plan.spec.inst_loop_count * achieved_frequency

    spectrum: Spectrum | None = None
    if config.method == "analytic":
        with _phase("analyze"):
            signal_power = _analytic_signal_power(machine, trace)
            noise_residual = _noise_residual(machine, config, rng)
    else:
        signal_power, noise_residual, spectrum = _measure_by_synthesis(
            machine, trace, config, rng
        )

    total_power = _combine_powers(
        machine, event_a, event_b, config, rng,
        signal_power, noise_residual, pairs_per_second,
    )

    return SavatResult(
        event_a=event_a.name,
        event_b=event_b.name,
        machine=machine.name,
        distance_m=machine.distance_m,
        savat_zj=total_power / pairs_per_second / ZEPTOJOULE,
        signal_band_power_w=signal_power,
        noise_band_power_w=noise_residual,
        pairs_per_second=pairs_per_second,
        achieved_frequency_hz=achieved_frequency,
        plan=plan,
        spectrum=spectrum,
    )


def measure_savat_samples(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    config: MeasurementConfig | None = None,
    rng: np.random.Generator | None = None,
    trace: ActivityTrace | None = None,
    plan: FrequencyPlan | None = None,
    repetitions: int = 1,
) -> np.ndarray:
    """All ``repetitions`` SAVAT samples of one cell, batched.

    Bit-identical to calling :func:`measure_savat` ``repetitions`` times
    with the shared ``rng``/``trace``/``plan`` (the campaign executor's
    historical loop): every random draw happens in the same order, and
    the jitter-independent per-repetition rework is hoisted instead —
    the analytic band power is computed once (it is a pure function of
    the trace), and the full method's period envelope is projected once
    and re-tiled per repetition.  Phase timings still attribute to
    ``synthesize``/``analyze`` as before.

    Returns the per-repetition ``savat_zj`` values, shape
    ``(repetitions,)``.
    """
    config = config or MeasurementConfig()
    if repetitions <= 0:
        raise ConfigurationError(f"repetitions must be positive, got {repetitions}")
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)

    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    if trace is None:
        trace, plan = simulate_alternation_period(machine, plan)

    achieved_frequency = 1.0 / trace.duration_s
    pairs_per_second = plan.spec.inst_loop_count * achieved_frequency

    samples = np.empty(repetitions)
    if config.method == "analytic":
        with _phase("analyze"):
            signal_power = _analytic_signal_power(machine, trace)
        for repetition in range(repetitions):
            with _phase("analyze"):
                noise_residual = _noise_residual(machine, config, rng)
            total_power = _combine_powers(
                machine, event_a, event_b, config, rng,
                signal_power, noise_residual, pairs_per_second,
            )
            samples[repetition] = total_power / pairs_per_second / ZEPTOJOULE
    else:
        with _phase("synthesize"):
            envelope = period_envelope(trace, machine.coupling)
        for repetition in range(repetitions):
            signal_power, noise_residual, _spectrum = _measure_by_synthesis(
                machine, trace, config, rng, envelope=envelope, reuse_buffer=True
            )
            total_power = _combine_powers(
                machine, event_a, event_b, config, rng,
                signal_power, noise_residual, pairs_per_second,
            )
            samples[repetition] = total_power / pairs_per_second / ZEPTOJOULE
    return samples


def _analytic_signal_power(machine: CalibratedMachine, trace: ActivityTrace) -> float:
    """Band signal power of the periodic waveform, via Fourier modes."""
    waveform = machine.coupling.project_trace(trace)
    coefficients = fourier_coefficient(waveform)
    return band_power_from_modes(coefficients, REFERENCE_IMPEDANCE)


def _combine_powers(
    machine: CalibratedMachine,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    config: MeasurementConfig,
    rng: np.random.Generator | None,
    signal_power: float,
    noise_residual: float,
    pairs_per_second: float,
) -> float:
    """Fold self-noise and loop noise into the total band power (W)."""
    self_noise_power = (
        machine.self_noise_j(event_a.name) + machine.self_noise_j(event_b.name)
    ) * pairs_per_second
    loop_factor = 1.0
    if rng is not None and config.loop_noise_fraction > 0:
        loop_factor = max(1.0 + rng.normal(0.0, config.loop_noise_fraction), 0.0)
    total_power = (signal_power + self_noise_power) * loop_factor + noise_residual
    return max(total_power, 0.0)


def _noise_residual(
    machine: CalibratedMachine,
    config: MeasurementConfig,
    rng: np.random.Generator | None,
) -> float:
    """Band noise power left after the analyzer's noise correction."""
    expected = machine.environment.band_noise_power(
        config.alternation_frequency_hz, config.band_half_width_hz, rng=None
    )
    drawn = machine.environment.band_noise_power(
        config.alternation_frequency_hz, config.band_half_width_hz, rng=rng
    )
    if not config.noise_corrected:
        return drawn
    return drawn - expected


def _measure_by_synthesis(
    machine: CalibratedMachine,
    trace: ActivityTrace,
    config: MeasurementConfig,
    rng: np.random.Generator | None,
    envelope: np.ndarray | None = None,
    reuse_buffer: bool = False,
) -> tuple[float, float, Spectrum]:
    """Full signal-path measurement: synthesize, analyze, integrate.

    With ``rng=None`` this is the deterministic expected-value path:
    the period trace is tiled with *no* timing jitter and the analyzer
    adds no noise, instead of silently substituting a fixed-seed
    generator whose jitter draws masqueraded as determinism.

    The spectral step runs through the band-limited analyzer by default
    and the full-sweep reference under ``SAVAT_REFERENCE_ANALYZER=1``
    (see :mod:`repro.instruments.analyzer_path`); the band analyzer's
    spectrum covers only the measurement band, so callers that plot the
    whole sweep should force the reference path.  ``envelope``
    optionally carries a precomputed :func:`period_envelope` so batched
    repetitions skip re-projecting the jitter-independent trace.
    """
    jitter = config.jitter
    if rng is None:
        jitter = JitterModel(period_sigma=0.0, drift_sigma=0.0)
    with _phase("synthesize"):
        signal = synthesize_measurement(
            trace,
            machine.coupling,
            duration_s=max(config.duration_s, 1.0 / config.rbw_hz),
            rng=rng,
            jitter=jitter,
            envelope=envelope,
            reuse_buffer=reuse_buffer,
        )
    with _phase("analyze"):
        analyzer = SpectrumAnalyzer(
            rbw_hz=config.rbw_hz, environment=machine.environment
        )
        if reference_analyzer_enabled():
            spectrum = analyzer.measure(signal, rng=rng)
        else:
            spectrum = analyzer.measure_band(
                signal,
                config.alternation_frequency_hz,
                config.band_half_width_hz,
                rng=rng,
            )
        band = spectrum.band_power_w(
            config.alternation_frequency_hz, config.band_half_width_hz
        )
    expected_noise = (
        machine.environment.total_floor_w_per_hz * 2.0 * config.band_half_width_hz
    )
    if config.noise_corrected:
        return max(band - expected_noise, 0.0), 0.0, spectrum
    return band, 0.0, spectrum


def clear_cpi_cache() -> None:
    """Drop cached per-event loop timings (mostly for tests)."""
    _CPI_CACHE.clear()
