"""Pairwise SAVAT measurement — the paper's methodology, end to end.

:func:`measure_savat` performs one A/B measurement exactly as Section III
and IV describe:

1. choose ``inst_loop_count`` so the alternation lands on the target
   frequency (80 kHz by default);
2. run the Figure 4 kernel on the simulated machine in cache steady
   state and capture the switching-activity trace of one full period;
3. project the trace through the machine's calibrated EM couplings to
   get the signal at the antenna;
4. extract the power in the +/-1 kHz band around the alternation
   frequency — either analytically (the Fourier coefficient of the
   periodic waveform; fast, used for campaigns) or by synthesizing a
   full one-second capture and running it through the spectrum-analyzer
   model (the ``"synthesis"`` method, used for the spectrum figures and
   for validating the fast path);
5. correct for the analyzer's average noise level (as the real
   measurement procedure does), add the alternation-loop's residual
   self-noise, and divide by the number of A/B pairs per second.

The result is the per-pair signal energy in zeptojoules — the SAVAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.codegen.alternation import build_alternation_program
from repro.codegen.frequency import FrequencyPlan
from repro.codegen.pointers import advance_pointer, sweep_address_stream
from repro.em.coupling import band_power_from_modes, fourier_coefficient
from repro.em.synthesis import JitterModel, synthesize_measurement
from repro.errors import ConfigurationError, MeasurementError
from repro.instruments.spectrum_analyzer import Spectrum, SpectrumAnalyzer
from repro.isa.events import InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.activity import ActivityTrace
from repro.uarch.fastpath import fast_path_enabled
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE

#: Supported measurement methods.
METHODS = ("analytic", "synthesis")


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of one SAVAT measurement (paper defaults)."""

    alternation_frequency_hz: float = 80e3
    band_half_width_hz: float = 1e3
    rbw_hz: float = 1.0
    duration_s: float = 1.0
    method: str = "analytic"
    loop_noise_fraction: float = 0.05
    noise_corrected: bool = True
    jitter: JitterModel = field(default_factory=JitterModel)

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ConfigurationError(
                f"unknown measurement method {self.method!r}; options: {METHODS}"
            )
        if self.alternation_frequency_hz <= 0:
            raise ConfigurationError("alternation frequency must be positive")
        if self.band_half_width_hz <= 0:
            raise ConfigurationError("band half-width must be positive")
        if self.duration_s < self.rbw_hz and self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.loop_noise_fraction < 0:
            raise ConfigurationError("loop noise fraction must be non-negative")

    def with_method(self, method: str) -> "MeasurementConfig":
        """Copy of this config with a different measurement method."""
        return replace(self, method=method)


@dataclass
class SavatResult:
    """Outcome of one pairwise SAVAT measurement."""

    event_a: str
    event_b: str
    machine: str
    distance_m: float
    savat_zj: float
    signal_band_power_w: float
    noise_band_power_w: float
    pairs_per_second: float
    achieved_frequency_hz: float
    plan: FrequencyPlan
    spectrum: Spectrum | None = None

    def __str__(self) -> str:
        return (
            f"SAVAT({self.event_a}/{self.event_b}) = {self.savat_zj:.2f} zJ "
            f"on {self.machine} at {self.distance_m * 100:.0f} cm"
        )


_CPI_CACHE: dict[tuple[str, str], float] = {}


def _plan_pair(
    machine: CalibratedMachine,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    frequency_hz: float,
) -> FrequencyPlan:
    """Frequency plan for a pair, with per-(machine, event) CPI caching."""
    from repro.codegen.frequency import measure_cycles_per_iteration

    core = machine.make_core()
    for event in (event_a, event_b):
        key = (machine.name, event.name)
        if key not in _CPI_CACHE:
            _CPI_CACHE[key] = measure_cycles_per_iteration(machine.make_core(), event)
    # Re-solve using cached CPIs by monkey-free arithmetic: replicate the
    # solver's logic with the cached values.
    cpi_a = _CPI_CACHE[(machine.name, event_a.name)]
    cpi_b = _CPI_CACHE[(machine.name, event_b.name)]
    period_cycles_target = core.clock_hz / frequency_hz
    raw_count = period_cycles_target / (cpi_a + cpi_b)
    if raw_count < 0.5:
        raise MeasurementError(
            f"cannot alternate {event_a.name}/{event_b.name} at {frequency_hz:.0f} Hz "
            f"on {machine.name}"
        )
    from repro.codegen.alternation import plan_alternation

    inst_loop_count = max(round(raw_count), 1)
    spec = plan_alternation(
        event_a,
        event_b,
        core.hierarchy.l1_geometry,
        core.hierarchy.l2_geometry,
        inst_loop_count,
    )
    predicted = core.clock_hz / (inst_loop_count * (cpi_a + cpi_b))
    return FrequencyPlan(
        spec=spec,
        target_frequency_hz=frequency_hz,
        predicted_frequency_hz=predicted,
        cycles_per_iteration_a=cpi_a,
        cycles_per_iteration_b=cpi_b,
    )


#: Cap on replayed warm-up periods (memory-heavy pairs need ~2000 to
#: cycle an entire off-chip footprint through the caches).
MAX_PRIME_PERIODS = 4096

#: Relative frequency error above which ``inst_loop_count`` is re-tuned.
FREQUENCY_TOLERANCE = 0.02


def prime_alternation_steady_state(core, spec) -> tuple[int, int]:
    """Drive the caches to the alternation loop's periodic steady state.

    The two halves' sweeps interact: a big sweep slowly walks the other
    half's lines out of the caches, a few lines per period, and the
    other half re-fetches them at the same slow rate.  Reaching that
    steady state requires cycling the *larger* footprint completely, so
    this replays both halves' address streams (just the cache accesses —
    no instruction simulation) for enough periods, and returns the sweep
    pointers at the start of the next period so the measured run
    continues seamlessly.

    The fast path precomputes both halves' full address streams with
    NumPy (the pointer recurrence has a closed form), interleaves them
    period by period in execution order, and replays the combined stream
    through :meth:`~repro.uarch.hierarchy.MemoryHierarchy.access_stream`
    in one call.  State and statistics are bit-identical to the scalar
    reference loop below (``SAVAT_REFERENCE_PATH=1`` to force it).
    """
    core.hierarchy.reset()
    count = spec.inst_loop_count
    offset_a = spec.sweep_a.offset
    offset_b = spec.sweep_b.offset

    periods_needed = 2
    for sweep, event in ((spec.sweep_a, spec.event_a), (spec.sweep_b, spec.event_b)):
        if event.is_memory:
            periods_needed = max(periods_needed, -(-sweep.num_slots // count) + 2)
    periods_needed = min(periods_needed, MAX_PRIME_PERIODS)

    mask_a = spec.sweep_a.mask
    mask_b = spec.sweep_b.mask
    a_is_memory = spec.event_a.is_memory
    b_is_memory = spec.event_b.is_memory
    a_is_store = spec.event_a.is_store
    b_is_store = spec.event_b.is_store
    total = periods_needed * count

    if fast_path_enabled():
        if a_is_memory and b_is_memory:
            stream_a = sweep_address_stream(spec.sweep_a, spec.sweep_a.base, total)
            stream_b = sweep_address_stream(spec.sweep_b, spec.sweep_b.base, total)
            stream = np.empty((periods_needed, 2 * count), dtype=np.int64)
            stream[:, :count] = stream_a.reshape(periods_needed, count)
            stream[:, count:] = stream_b.reshape(periods_needed, count)
            if a_is_store == b_is_store:
                is_write: bool | np.ndarray = a_is_store
            else:
                period_writes = np.empty(2 * count, dtype=bool)
                period_writes[:count] = a_is_store
                period_writes[count:] = b_is_store
                is_write = np.tile(period_writes, periods_needed)
            core.hierarchy.access_stream(stream.reshape(-1), is_write)
        elif a_is_memory:
            stream = sweep_address_stream(spec.sweep_a, spec.sweep_a.base, total)
            core.hierarchy.access_stream(stream, a_is_store)
        elif b_is_memory:
            stream = sweep_address_stream(spec.sweep_b, spec.sweep_b.base, total)
            core.hierarchy.access_stream(stream, b_is_store)
        pointer_a = advance_pointer(spec.sweep_a.base, mask_a, offset_a, total)
        pointer_b = advance_pointer(spec.sweep_b.base, mask_b, offset_b, total)
        return pointer_a, pointer_b

    pointer_a = spec.sweep_a.base
    pointer_b = spec.sweep_b.base
    access = core.hierarchy.access

    for _period in range(periods_needed):
        for _ in range(count):
            pointer_a = (pointer_a & ~mask_a) | ((pointer_a + offset_a) & mask_a)
            if a_is_memory:
                access(pointer_a, a_is_store)
        for _ in range(count):
            pointer_b = (pointer_b & ~mask_b) | ((pointer_b + offset_b) & mask_b)
            if b_is_memory:
                access(pointer_b, b_is_store)
    return pointer_a, pointer_b


def simulate_alternation_period(
    machine: CalibratedMachine,
    plan: FrequencyPlan,
    adjust_frequency: bool = True,
) -> tuple[ActivityTrace, FrequencyPlan]:
    """One steady-state alternation period's activity trace.

    Replays the address streams to periodic steady state, runs one full
    warm-up period through the core, then captures the next period.  If
    the achieved alternation frequency misses the target by more than
    :data:`FREQUENCY_TOLERANCE` (pair-context cache interference can
    change per-iteration cost versus the isolated probes), the
    ``inst_loop_count`` is re-tuned and the simulation repeated — the
    software-side frequency adjustment the paper's methodology allows.

    Returns the measured trace together with the (possibly re-tuned)
    plan actually used.
    """
    from dataclasses import replace as dataclass_replace

    simulated_plan = plan
    for _attempt in range(3):
        core = machine.make_core()
        simulated_plan = plan
        spec = plan.spec
        program = build_alternation_program(spec)
        pointer_a, pointer_b = prime_alternation_steady_state(core, spec)
        registers = spec.initial_registers()
        registers["esi"] = pointer_a
        registers["edi"] = pointer_b
        for name, value in registers.items():
            core.registers[name] = value
        core.run(program, warm_hierarchy=True)  # warm-up period
        result = core.run(program, warm_hierarchy=True)  # measured period
        trace = result.trace

        achieved = core.clock_hz / trace.num_cycles
        relative_error = abs(achieved - plan.target_frequency_hz) / plan.target_frequency_hz
        if not adjust_frequency or relative_error <= FREQUENCY_TOLERANCE:
            return trace, plan
        retuned_count = max(
            round(spec.inst_loop_count * achieved / plan.target_frequency_hz), 1
        )
        if retuned_count == spec.inst_loop_count:
            return trace, plan
        plan = dataclass_replace(
            plan,
            spec=dataclass_replace(spec, inst_loop_count=retuned_count),
            predicted_frequency_hz=plan.target_frequency_hz,
        )
    # Retune attempts exhausted: the trace in hand was simulated with
    # ``simulated_plan``, not the freshly re-tuned ``plan`` — return the
    # plan that actually produced it so downstream pairs-per-second and
    # frequency bookkeeping stay consistent with the trace.
    return trace, simulated_plan


def measure_savat(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    config: MeasurementConfig | None = None,
    rng: np.random.Generator | None = None,
    trace: ActivityTrace | None = None,
    plan: FrequencyPlan | None = None,
) -> SavatResult:
    """Measure the pairwise SAVAT of (A, B) on a calibrated machine.

    Parameters
    ----------
    machine:
        A calibrated machine from
        :func:`repro.machines.load_calibrated_machine`.
    event_a, event_b:
        Paper events (objects or names).
    config:
        Measurement configuration (defaults to the paper's setup).
    rng:
        Randomness for the noise models; omit for the deterministic
        expected-value measurement.
    trace, plan:
        Pre-computed period trace and plan (the campaign runner reuses
        them across repetitions, since repetitions re-draw only the
        environment, as in the paper's multi-day repeats).
    """
    config = config or MeasurementConfig()
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)

    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    if trace is None:
        trace, plan = simulate_alternation_period(machine, plan)

    achieved_frequency = 1.0 / trace.duration_s
    pairs_per_second = plan.spec.inst_loop_count * achieved_frequency

    spectrum: Spectrum | None = None
    if config.method == "analytic":
        waveform = machine.coupling.project_trace(trace)
        coefficients = fourier_coefficient(waveform)
        signal_power = band_power_from_modes(coefficients, REFERENCE_IMPEDANCE)
        noise_residual = _noise_residual(machine, config, rng)
    else:
        signal_power, noise_residual, spectrum = _measure_by_synthesis(
            machine, trace, config, rng
        )

    self_noise_power = (
        machine.self_noise_j(event_a.name) + machine.self_noise_j(event_b.name)
    ) * pairs_per_second

    loop_factor = 1.0
    if rng is not None and config.loop_noise_fraction > 0:
        loop_factor = max(1.0 + rng.normal(0.0, config.loop_noise_fraction), 0.0)
    total_power = (signal_power + self_noise_power) * loop_factor + noise_residual
    total_power = max(total_power, 0.0)

    return SavatResult(
        event_a=event_a.name,
        event_b=event_b.name,
        machine=machine.name,
        distance_m=machine.distance_m,
        savat_zj=total_power / pairs_per_second / ZEPTOJOULE,
        signal_band_power_w=signal_power,
        noise_band_power_w=noise_residual,
        pairs_per_second=pairs_per_second,
        achieved_frequency_hz=achieved_frequency,
        plan=plan,
        spectrum=spectrum,
    )


def _noise_residual(
    machine: CalibratedMachine,
    config: MeasurementConfig,
    rng: np.random.Generator | None,
) -> float:
    """Band noise power left after the analyzer's noise correction."""
    expected = machine.environment.band_noise_power(
        config.alternation_frequency_hz, config.band_half_width_hz, rng=None
    )
    drawn = machine.environment.band_noise_power(
        config.alternation_frequency_hz, config.band_half_width_hz, rng=rng
    )
    if not config.noise_corrected:
        return drawn
    return drawn - expected


def _measure_by_synthesis(
    machine: CalibratedMachine,
    trace: ActivityTrace,
    config: MeasurementConfig,
    rng: np.random.Generator | None,
) -> tuple[float, float, Spectrum]:
    """Full signal-path measurement: synthesize, analyze, integrate."""
    local_rng = rng or np.random.default_rng(0)
    signal = synthesize_measurement(
        trace,
        machine.coupling,
        duration_s=max(config.duration_s, 1.0 / config.rbw_hz),
        rng=local_rng,
        jitter=config.jitter,
    )
    analyzer = SpectrumAnalyzer(rbw_hz=config.rbw_hz, environment=machine.environment)
    spectrum = analyzer.measure(signal, rng=rng)
    band = spectrum.band_power_w(
        config.alternation_frequency_hz, config.band_half_width_hz
    )
    expected_noise = (
        machine.environment.total_floor_w_per_hz * 2.0 * config.band_half_width_hz
    )
    if config.noise_corrected:
        return max(band - expected_noise, 0.0), 0.0, spectrum
    return band, 0.0, spectrum


def clear_cpi_cache() -> None:
    """Drop cached per-event loop timings (mostly for tests)."""
    _CPI_CACHE.clear()
