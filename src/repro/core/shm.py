"""POSIX shared-memory data plane for pooled campaigns.

Pooled campaigns move two kinds of bulk payload between processes: the
per-cell repetition samples (worker -> parent, previously pickled
through ``future.result()``) and the kernel traces behind the
cross-campaign trace cache (worker <-> worker, previously an ``.npz``
disk round-trip).  Both are plain float64 arrays, so both can travel
through one ``multiprocessing.shared_memory`` segment instead:

* :class:`SampleArena` — one segment per pooled campaign holding the
  full ``(count, count, repetitions)`` sample cube plus a per-cell
  strip of phase seconds and elapsed time.  The parent creates it
  before fan-out, every worker writes its cell's slice in place, and
  worker results shrink to scalars (indices, elapsed, counter deltas,
  span fragment) — no sample array is ever pickled.
* segment helpers (:func:`create_segment` / :func:`attach_segment` /
  :func:`unlink_segments`) — the primitives behind the trace cache's
  shared-memory tier, where sibling workers serve each other traces
  without touching disk.

Lifecycle discipline: the **parent** that creates a segment owns its
name and unlinks it in a ``finally`` (fault, timeout, resume, and
``CellExecutionError`` paths included), so ``/dev/shm`` never
accumulates ``savat_*`` entries.  POSIX unlink semantics make this
safe even while an abandoned (hung) worker attempt is still writing:
unlinking removes the *name*; the zombie's mapping stays valid until
it closes, and its late writes land in memory nobody will read.
Workers that merely *attach* a segment are unregistered from the
``multiprocessing`` resource tracker, which otherwise unlinks
attached segments when the worker exits (and would destroy the
parent's live arena mid-campaign).

The plane is optional.  ``SAVAT_SHM=0`` disables it process-wide, and
:func:`shm_available` gates it to Linux — the one platform where POSIX
segment names are long enough for content-hash keys and ``/dev/shm``
can be enumerated for leak checks — so serial mode and other platforms
fall back to the pickle/disk paths with bit-identical samples.
"""

from __future__ import annotations

import itertools
import os
import secrets
import sys
from contextlib import contextmanager
from multiprocessing import resource_tracker
from pathlib import Path

import numpy as np

#: Environment variable that disables the shared-memory plane when
#: set falsy (it is on by default where :func:`shm_available`).
SHM_ENV = "SAVAT_SHM"

#: Every segment this codebase creates starts with this, so a leak
#: check is one ``ls /dev/shm/savat_*`` away.
SEGMENT_PREFIX = "savat_"

#: Where Linux exposes POSIX shared-memory segments as files.
SHM_DIR = Path("/dev/shm")

_FALSY = {"0", "false", "no", "off"}

_TOKENS = itertools.count()


def shm_enabled(environ: dict | None = None) -> bool:
    """Whether ``SAVAT_SHM`` permits the shared-memory plane (default yes)."""
    environ = os.environ if environ is None else environ
    return environ.get(SHM_ENV, "").strip().lower() not in _FALSY


def shm_available() -> bool:
    """Whether this platform supports the shared-memory plane.

    Linux only: POSIX limits segment-name length to 31 characters on
    macOS (too short for content-hash keys) and ``/dev/shm`` — which
    the leak checks and prefix unlinking enumerate — is Linux-specific.
    """
    if not sys.platform.startswith("linux"):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return SHM_DIR.is_dir()


def resolve_shm(shm: bool | None, environ: dict | None = None) -> bool:
    """Resolve a ``shm`` parameter against the environment and platform.

    ``None`` defers to ``SAVAT_SHM`` (on by default); ``True`` requests
    the plane but still degrades to the pickle/disk fallback when the
    platform lacks it; ``False`` disables it outright.  Samples are
    bit-identical either way.
    """
    if shm is False:
        return False
    if shm is None and not shm_enabled(environ):
        return False
    return shm_available()


def new_token() -> str:
    """A short name component unique across and within processes."""
    return f"{os.getpid():x}_{next(_TOKENS):x}_{secrets.token_hex(4)}"


@contextmanager
def _untracked():
    """Suppress resource-tracker registration inside the block.

    A segment that a process merely *attaches* (or creates on behalf
    of a longer-lived owner, like a worker producing a trace segment)
    must not be tracked: the tracker unlinks every tracked segment
    when its process exits, destroying the owner's live segment.  The
    pre-3.13 ``SharedMemory`` API has no ``track=False``, and
    register-then-unregister is racy — the tracker's name set is
    shared by parent and workers, so interleaved register/unregister
    pairs for one name can strip a registration someone still relies
    on.  Not registering at all is the only ordering-safe option.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


# ----------------------------------------------------------------------
# The campaign sample arena
# ----------------------------------------------------------------------
class SampleArena:
    """One campaign's zero-copy sample plane.

    Layout (all float64): a ``(count, count, repetitions)`` sample cube
    followed by a ``(count, count, STRIP_WIDTH)`` per-cell strip of
    ``prime`` / ``core_run`` / ``synthesize`` / ``analyze`` phase
    seconds plus the worker-side elapsed time.  Strip slots are NaN
    until the owning cell's worker writes them, which doubles as the
    "phase never ran" marker (a trace-cache hit records no prime or
    core_run seconds).

    The parent :meth:`create`\\ s the arena and later :meth:`unlink`\\ s
    it; workers :meth:`attach` from the :meth:`spec` shipped in the
    task payload and only ever :meth:`close` their mapping.  Each cell
    ``(i, j)`` is written by exactly one live attempt — retried
    attempts return their samples by pickle instead — so no two
    writers share a slot.
    """

    #: Strip columns, in order: the four pipeline phases, then elapsed.
    STRIP_FIELDS = ("prime", "core_run", "synthesize", "analyze", "elapsed_s")
    STRIP_WIDTH = len(STRIP_FIELDS)

    def __init__(self, segment, count: int, repetitions: int, owner: bool) -> None:
        self._segment = segment
        self.count = int(count)
        self.repetitions = int(repetitions)
        self.owner = owner
        cube = self.count * self.count * self.repetitions
        strip = self.count * self.count * self.STRIP_WIDTH
        buffer = segment.buf
        self.samples = np.ndarray(
            (self.count, self.count, self.repetitions),
            dtype=np.float64,
            buffer=buffer[: cube * 8],
        )
        self.strip = np.ndarray(
            (self.count, self.count, self.STRIP_WIDTH),
            dtype=np.float64,
            buffer=buffer[cube * 8 : (cube + strip) * 8],
        )

    # ------------------------------------------------------------------
    @classmethod
    def nbytes(cls, count: int, repetitions: int) -> int:
        """Segment size for a ``count x count x repetitions`` campaign."""
        cells = count * count
        return (cells * repetitions + cells * cls.STRIP_WIDTH) * 8

    @classmethod
    def create(cls, count: int, repetitions: int) -> "SampleArena":
        """Allocate a fresh arena (parent side; caller must unlink)."""
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True,
            name=f"{SEGMENT_PREFIX}arena_{new_token()}",
            size=cls.nbytes(count, repetitions),
        )
        arena = cls(segment, count, repetitions, owner=True)
        arena.samples.fill(0.0)
        arena.strip.fill(np.nan)
        return arena

    @classmethod
    def attach(cls, spec: dict) -> "SampleArena":
        """Map an existing arena from its :meth:`spec` (worker side)."""
        from multiprocessing import shared_memory

        with _untracked():
            segment = shared_memory.SharedMemory(name=spec["name"])
        return cls(
            segment, spec["count"], spec["repetitions"], owner=False
        )

    def spec(self) -> dict:
        """Picklable attachment recipe shipped to workers."""
        return {
            "name": self._segment.name,
            "count": self.count,
            "repetitions": self.repetitions,
        }

    @property
    def name(self) -> str:
        return self._segment.name

    # ------------------------------------------------------------------
    def write_cell(
        self,
        i: int,
        j: int,
        samples: np.ndarray,
        phase_seconds: dict[str, float],
        elapsed_s: float,
    ) -> None:
        """Write one cell's samples and strip entry in place (worker)."""
        self.samples[i, j, :] = samples
        row = self.strip[i, j]
        row.fill(np.nan)
        for column, field in enumerate(self.STRIP_FIELDS[:-1]):
            if field in phase_seconds:
                row[column] = phase_seconds[field]
        row[self.STRIP_WIDTH - 1] = elapsed_s

    def read_cell(self, i: int, j: int) -> np.ndarray:
        """One cell's samples, copied out of the arena (parent)."""
        return np.array(self.samples[i, j, :], dtype=np.float64)

    def read_strip(self, i: int, j: int) -> tuple[dict[str, float], float]:
        """One cell's ``(phase_seconds, elapsed_s)`` from the strip.

        NaN slots — phases the cell never ran — are omitted from the
        mapping, matching what an in-process run would have recorded.
        """
        row = self.strip[i, j]
        phases = {
            field: float(row[column])
            for column, field in enumerate(self.STRIP_FIELDS[:-1])
            if np.isfinite(row[column])
        }
        elapsed = row[self.STRIP_WIDTH - 1]
        return phases, float(elapsed) if np.isfinite(elapsed) else 0.0

    @property
    def cell_nbytes(self) -> int:
        """Bytes one cell's samples + strip entry would cost to pickle."""
        return (self.repetitions + self.STRIP_WIDTH) * 8

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        # Views into the buffer must be released before the mapping.
        self.samples = None
        self.strip = None
        try:
            self._segment.close()
        except Exception:  # noqa: BLE001 — already closed
            pass

    def unlink(self) -> None:
        """Remove the segment's name (owner only; idempotent)."""
        self.close()
        if not self.owner:
            return
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # noqa: BLE001 — already unlinked elsewhere
            pass


# ----------------------------------------------------------------------
# Raw segments (the trace cache's shared-memory tier)
# ----------------------------------------------------------------------
def create_segment(name: str, nbytes: int):
    """Create an exclusive segment, or ``None`` if it already exists.

    The creator is never registered with the resource tracker: trace
    segments outlive the worker that produced them (that is the point
    of the tier), and the owning campaign/study unlinks them by prefix
    at teardown instead.
    """
    from multiprocessing import shared_memory

    try:
        with _untracked():
            segment = shared_memory.SharedMemory(
                create=True, name=name, size=int(nbytes)
            )
    except FileExistsError:
        return None
    except OSError:
        return None
    return segment


def attach_segment(name: str):
    """Map an existing segment by name, or ``None`` when absent."""
    from multiprocessing import shared_memory

    try:
        with _untracked():
            segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return None
    except OSError:
        return None
    return segment


def unlink_segment(name: str) -> bool:
    """Remove one segment by name; ``True`` if it existed."""
    path = SHM_DIR / name
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


def list_segments(prefix: str) -> list[str]:
    """Names of live segments starting with ``prefix``."""
    if not SHM_DIR.is_dir():
        return []
    return sorted(path.name for path in SHM_DIR.glob(f"{prefix}*"))


def unlink_segments(prefix: str) -> int:
    """Unlink every live segment starting with ``prefix``.

    The owner's teardown sweep: called after the pool has drained, so
    no worker can create a segment under the prefix afterwards.
    """
    removed = 0
    for name in list_segments(prefix):
        if unlink_segment(name):
            removed += 1
    return removed


__all__ = [
    "SEGMENT_PREFIX",
    "SHM_DIR",
    "SHM_ENV",
    "SampleArena",
    "attach_segment",
    "create_segment",
    "list_segments",
    "new_token",
    "resolve_shm",
    "shm_available",
    "shm_enabled",
    "unlink_segment",
    "unlink_segments",
]
