"""The naïve measurement methodology of Figure 2, and why it fails.

Section III motivates the alternation methodology by walking through the
obvious approach — record the signal around a single A instruction,
record it again with B substituted, align, and subtract — and showing it
is swamped by (1) vertical measurement error proportional to the whole
signal, (2) time misalignment between the captures, and (3) the limited
real-time sample rate of affordable digitizers.

This module implements that naïve approach against the same simulated
machine and EM model, so the two methodologies can be compared
quantitatively: :func:`compare_methodologies` reports the
relative error of each, and the benchmark ``test_fig02`` regenerates the
paper's argument as numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codegen.alternation import (
    POINTER_REGISTER_A,
    pointer_update_instructions,
)
from repro.codegen.frequency import plan_sweep_for_core
from repro.codegen.pointers import prime_for_sweep
from repro.errors import MeasurementError
from repro.instruments.oscilloscope import Oscilloscope
from repro.isa.events import InstructionEvent, get_event
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.machines.calibrated import CalibratedMachine
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE


@dataclass
class NaiveComparison:
    """Naïve-vs-alternation methodology comparison for one pair.

    All energies are in zeptojoules.

    Attributes
    ----------
    true_difference_zj:
        Ground truth: the deterministic (noise-free) SAVAT of the pair —
        the quantity both methodologies are trying to estimate.
    noiseless_subtraction_zj:
        What the naïve method reports even with a *perfect* instrument
        (infinite sample rate, zero noise, exact trigger).  This isolates
        the paper's time-misalignment failure: when A's latency differs
        from B's, everything after the test instruction is compared
        against shifted, unrelated activity, so the subtraction energy
        is orders of magnitude larger than the single-instruction
        difference.
    naive_estimates_zj:
        Per-trial estimates from the scope-based naïve procedure
        (vertical noise + trigger jitter + finite sample rate on top of
        the misalignment).
    alternation_estimates_zj:
        Per-trial estimates from the paper's methodology.
    """

    event_a: str
    event_b: str
    true_difference_zj: float
    noiseless_subtraction_zj: float
    naive_estimates_zj: np.ndarray
    alternation_estimates_zj: np.ndarray

    @staticmethod
    def _relative_error(estimates: np.ndarray, truth: float) -> float:
        if truth <= 0:
            return float("inf")
        return float(np.mean(np.abs(estimates - truth)) / truth)

    @property
    def naive_relative_error(self) -> float:
        """Mean |estimate - truth| / truth for the naïve method."""
        return self._relative_error(self.naive_estimates_zj, self.true_difference_zj)

    @property
    def alternation_relative_error(self) -> float:
        """Mean |estimate - truth| / truth for the alternation method."""
        return self._relative_error(self.alternation_estimates_zj, self.true_difference_zj)

    @property
    def error_ratio(self) -> float:
        """How many times worse the naïve method is."""
        alternation = self.alternation_relative_error
        if alternation == 0:
            return float("inf")
        return self.naive_relative_error / alternation

    @property
    def misalignment_overestimate(self) -> float:
        """Factor by which even a *perfect-instrument* naïve subtraction
        overestimates the single-instruction difference."""
        if self.true_difference_zj <= 0:
            return float("inf")
        return self.noiseless_subtraction_zj / self.true_difference_zj


def build_single_event_fragment(
    event: InstructionEvent,
    plan,
    filler_iterations: int = 24,
) -> Program:
    """A program fragment with one test instruction amid identical filler.

    Mirrors Figure 2: ``filler_iterations`` of the pointer-update code,
    then the single instruction under test, then the same filler again.
    The filler is identical for both fragments of a naïve comparison, so
    any difference between their signals is due to the one instruction.
    """
    instructions: list[Instruction] = []
    for _ in range(filler_iterations):
        instructions.extend(pointer_update_instructions(POINTER_REGISTER_A, plan))
    test = event.test_instruction(POINTER_REGISTER_A)
    if test is not None:
        instructions.append(test)
    for _ in range(filler_iterations):
        instructions.extend(pointer_update_instructions(POINTER_REGISTER_A, plan))
    instructions.append(Instruction(Opcode.HALT))
    return Program(instructions, name=f"fragment:{event.name}")


def _fragment_waveform(
    machine: CalibratedMachine, event: InstructionEvent, filler_iterations: int
) -> tuple[np.ndarray, float]:
    """Noiseless composite antenna waveform of one fragment (V, cycle rate)."""
    core = machine.make_core()
    plan = plan_sweep_for_core(core, event)
    program = build_single_event_fragment(event, plan, filler_iterations)
    prime_for_sweep(core.hierarchy, plan, is_write=event.is_store)
    core.registers[POINTER_REGISTER_A] = plan.base
    core.registers["eax"] = 173
    result = core.run(program, warm_hierarchy=True)
    modes = machine.coupling.project_trace(result.trace)
    # The scope digitizes one composite channel; sum the field modes
    # coherently (a single-antenna capture cannot separate them).
    return modes.sum(axis=0), core.clock_hz


def _difference_energy_zj(
    waveform_a: np.ndarray,
    waveform_b: np.ndarray,
    sample_rate_hz: float,
) -> float:
    """Integrated squared difference between two captures, in zJ."""
    length = min(len(waveform_a), len(waveform_b))
    difference = waveform_a[:length] - waveform_b[:length]
    energy_j = float(np.sum(difference**2) / REFERENCE_IMPEDANCE / sample_rate_hz)
    return energy_j / ZEPTOJOULE


def naive_measurement(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    scope: Oscilloscope,
    rng: np.random.Generator,
    filler_iterations: int = 24,
) -> float:
    """One naïve A-vs-B estimate (zJ) using the scope model.

    Captures each fragment once (independent noise and trigger jitter),
    aligns them nominally, and integrates the squared difference.
    """
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)
    waveform_a, clock_hz = _fragment_waveform(machine, event_a, filler_iterations)
    waveform_b, _clock = _fragment_waveform(machine, event_b, filler_iterations)
    capture_a = scope.capture(waveform_a, clock_hz, rng)
    capture_b = scope.capture(waveform_b, clock_hz, rng)
    return _difference_energy_zj(capture_a.samples, capture_b.samples, scope.sample_rate_hz)


def noiseless_subtraction_energy(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    filler_iterations: int = 24,
) -> float:
    """The naïve method's answer with a perfect instrument (zJ).

    Full-rate, noise-free, exactly triggered subtraction of the two
    fragments.  For events of unequal latency this is dominated by the
    paper's misalignment failure — "a portion of A's execution is
    compared to unrelated processor activity in the signal containing
    B" — and wildly overestimates the single-instruction difference.
    """
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)
    waveform_a, clock_hz = _fragment_waveform(machine, event_a, filler_iterations)
    waveform_b, _clock = _fragment_waveform(machine, event_b, filler_iterations)
    return _difference_energy_zj(waveform_a, waveform_b, clock_hz)


def compare_methodologies(
    machine: CalibratedMachine,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    trials: int = 10,
    scope: Oscilloscope | None = None,
    seed: int = 0,
    filler_iterations: int = 24,
) -> NaiveComparison:
    """Run both methodologies ``trials`` times and compare their errors.

    The alternation estimates come from :func:`repro.core.savat.measure_savat`
    with per-trial noise; the naïve estimates from scope captures with
    the paper's 0.5%-of-range vertical error.  The scope defaults to a
    flagship 40 GS/s digitizer — the naïve method loses even with the
    best instrument money can buy.
    """
    from repro.core.savat import MeasurementConfig, _plan_pair, measure_savat, \
        simulate_alternation_period

    if trials < 1:
        raise MeasurementError(f"need at least one trial, got {trials}")
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)
    scope = scope or Oscilloscope(sample_rate_hz=40e9, trigger_jitter_s=0.2e-9)
    rng = np.random.default_rng(seed)

    noiseless = noiseless_subtraction_energy(
        machine, event_a, event_b, filler_iterations
    )

    naive = np.array(
        [
            naive_measurement(machine, event_a, event_b, scope, rng, filler_iterations)
            for _ in range(trials)
        ]
    )

    config = MeasurementConfig()
    plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    trace, plan = simulate_alternation_period(machine, plan)
    # Ground truth: the deterministic (noise-free) SAVAT — the quantity
    # both methodologies are estimating.
    truth = measure_savat(
        machine, event_a, event_b, config=config, rng=None, trace=trace, plan=plan
    ).savat_zj
    alternation = np.array(
        [
            measure_savat(
                machine, event_a, event_b, config=config, rng=rng, trace=trace, plan=plan
            ).savat_zj
            for _ in range(trials)
        ]
    )

    return NaiveComparison(
        event_a=event_a.name,
        event_b=event_b.name,
        true_difference_zj=truth,
        noiseless_subtraction_zj=noiseless,
        naive_estimates_zj=naive,
        alternation_estimates_zj=alternation,
    )
