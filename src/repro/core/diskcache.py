"""Shared on-disk cache discipline: atomic writes and quarantine moves.

Both persistent caches in the executor stack — the per-cell campaign
:class:`~repro.core.executor.ResultCache` and the cross-campaign
:class:`~repro.core.trace_cache.TraceCache` — follow the same two rules:

* **Writes are atomic.**  Every payload goes to a same-directory
  temporary file, is flushed and fsynced, and only then renamed over the
  target with :func:`os.replace`.  A process killed mid-write can leave
  an orphaned ``*.tmp`` file but never a truncated file under a live
  name, so concurrent workers may share a cache directory without
  locking.
* **Bad entries are quarantined, never deleted.**  An unreadable,
  truncated, or wrong-shaped entry is moved into a ``quarantine/``
  directory — keeping its identifying key as a filename prefix, and
  never overwriting an earlier quarantined file of the same name — so
  repeated corruption stays individually inspectable post mortem while
  the caller simply recomputes the entry.

This module is the single implementation of both rules.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Callable
from pathlib import Path


def atomic_write(directory: Path, target: Path, writer: Callable) -> None:
    """Write ``target`` via a same-directory temp file and ``os.replace``.

    ``writer`` receives the open binary handle.  The handle is flushed
    and fsynced before the rename, so a process killed mid-write can
    never leave a truncated file under the target name — the worst case
    is an orphaned ``*.tmp`` file.
    """
    descriptor, temp_name = tempfile.mkstemp(
        dir=directory, prefix=target.stem + "_", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def quarantine_entry(quarantine_dir: Path, key: str, path: Path) -> Path | None:
    """Move a bad cache entry into ``quarantine_dir``.

    The entry keeps ``key`` as a filename prefix, and an existing
    quarantined file of the same name is never overwritten (a numeric
    suffix is appended instead), so repeated corruption of the same
    entry stays individually inspectable.  Returns the quarantined
    path, or ``None`` when the entry vanished before the move (another
    process already quarantined it).
    """
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    base = f"{key}_{path.name}"
    target = quarantine_dir / base
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{base}.{suffix}"
    try:
        os.replace(path, target)
    except FileNotFoundError:
        return None
    return target


__all__ = ["atomic_write", "quarantine_entry"]
