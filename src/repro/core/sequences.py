"""Sequence-level SAVAT: measurement and the additive estimate.

Section III ("combination"): sensitive data often selects between whole
*sequences* of instructions, not single ones.  Measuring every sequence
pair is combinatorially hopeless (O(N^4) already for length-2), so the
paper suggests the sum of single-instruction SAVATs as an estimate,
while cautioning that reordering and overlap make it imprecise.

This module provides both sides of that story:

* :func:`measure_sequence_savat` generalizes the alternation kernel so
  each test slot holds an entire event sequence — the "use those entire
  sequences as A/B activity" measurement the paper describes;
* :func:`estimate_sequence_savat` computes the additive estimate from a
  measured pairwise matrix, so the two can be compared (see the
  ``test_ablation_sequences`` benchmark).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.codegen.alternation import (
    LOOP_REGISTER,
    POINTER_REGISTER_A,
    POINTER_REGISTER_B,
    pointer_update_instructions,
)
from repro.codegen.pointers import (
    BASE_ADDRESS_A,
    BASE_ADDRESS_B,
    plan_sweep,
    prime_for_sweep,
)
from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError, MeasurementError
from repro.isa.events import InstructionEvent, get_event
from repro.isa.instructions import Instruction, Opcode, imm, reg
from repro.isa.program import Program
from repro.machines.calibrated import CalibratedMachine
from repro.em.coupling import band_power_from_modes, fourier_coefficient
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE


@dataclass
class SequenceSavatResult:
    """Measured vs estimated SAVAT for one sequence pairing (zJ)."""

    sequence_a: tuple[str, ...]
    sequence_b: tuple[str, ...]
    measured_zj: float
    pairs_per_second: float


def _resolve(sequence: Sequence[InstructionEvent | str]) -> list[InstructionEvent]:
    resolved = [get_event(item) if isinstance(item, str) else item for item in sequence]
    if not resolved:
        raise ConfigurationError("sequence must contain at least one event")
    return resolved


def estimate_sequence_savat(
    matrix: SavatMatrix,
    sequence_a: Sequence[str],
    sequence_b: Sequence[str],
) -> float:
    """Additive estimate: sum of aligned single-instruction SAVATs (zJ).

    Sequences of unequal length are aligned by padding the shorter with
    NOI (a missing instruction *is* the NOI event).  The estimate
    subtracts the matrix floor per aligned pair so that identical
    positions contribute nothing, then adds one floor back (a real
    measurement always pays the floor once).
    """
    list_a = [name.upper() for name in sequence_a]
    list_b = [name.upper() for name in sequence_b]
    length = max(len(list_a), len(list_b))
    list_a += ["NOI"] * (length - len(list_a))
    list_b += ["NOI"] * (length - len(list_b))
    floor = float(np.diag(matrix.symmetrized()).mean())
    total = floor
    for name_a, name_b in zip(list_a, list_b):
        if name_a == name_b:
            continue
        total += max(matrix.cell(name_a, name_b) - floor, 0.0)
    return total


def build_sequence_half(
    events: list[InstructionEvent],
    inst_loop_count: int,
    plan,
    pointer_register: str,
    tag: str,
) -> Program:
    """One alternation half whose test slot holds a whole sequence."""
    loop_label = f"{tag}_loop"
    instructions: list[Instruction] = [
        Instruction(Opcode.MOV, dest=reg(LOOP_REGISTER), src=imm(inst_loop_count)),
    ]
    body = pointer_update_instructions(pointer_register, plan)
    first = body[0]
    instructions.append(
        Instruction(first.opcode, dest=first.dest, src=first.src, label=loop_label)
    )
    instructions.extend(body[1:])
    for event in events:
        test = event.test_instruction(pointer_register)
        if test is not None:
            instructions.append(test)
    instructions.append(Instruction(Opcode.DEC, dest=reg(LOOP_REGISTER)))
    instructions.append(Instruction(Opcode.JNZ, target=loop_label))
    return Program(instructions, name=f"{tag}:seq")


def _sequence_footprint_plan(events: list[InstructionEvent], core, base: int):
    """Sweep plan for a sequence half: sized by its largest-footprint event."""
    ranking = {"none": 0, "l1": 1, "l2": 2, "memory": 3}
    widest = max(events, key=lambda event: ranking[event.footprint.value])
    return plan_sweep(widest, core.hierarchy.l1_geometry, core.hierarchy.l2_geometry, base)


def measure_sequence_savat(
    machine: CalibratedMachine,
    sequence_a: Sequence[InstructionEvent | str],
    sequence_b: Sequence[InstructionEvent | str],
    alternation_frequency_hz: float = 80e3,
    rng: np.random.Generator | None = None,
    loop_noise_fraction: float = 0.05,
) -> SequenceSavatResult:
    """Measure SAVAT between two instruction *sequences* (zJ per pair).

    Uses the same alternation methodology with sequences in the test
    slots.  Within each half all memory events share that half's sweep
    pointer (each iteration advances it once), so sequences mixing
    different footprint classes sweep the widest class — document this
    when designing experiments.
    """
    events_a = _resolve(sequence_a)
    events_b = _resolve(sequence_b)
    core = machine.make_core()

    plan_a = _sequence_footprint_plan(events_a, core, BASE_ADDRESS_A)
    plan_b = _sequence_footprint_plan(events_b, core, BASE_ADDRESS_B)

    # Estimate per-iteration cost with a quick probe run of each half.
    def _probe_cycles(events, plan, pointer_register) -> float:
        probe_core = machine.make_core()
        iterations = 32
        half = build_sequence_half(events, iterations, plan, pointer_register, "probe")
        program = Program(
            list(half.instructions) + [Instruction(Opcode.HALT)], name="probe:seq"
        )
        is_store = any(event.is_store for event in events)
        prime_for_sweep(probe_core.hierarchy, plan, is_write=is_store)
        probe_core.registers[pointer_register] = plan.base
        probe_core.registers["eax"] = 173
        result = probe_core.run(program, warm_hierarchy=True)
        return max(result.cycles - 1, iterations) / iterations

    cpi_a = _probe_cycles(events_a, plan_a, POINTER_REGISTER_A)
    cpi_b = _probe_cycles(events_b, plan_b, POINTER_REGISTER_B)
    period_cycles = core.clock_hz / alternation_frequency_hz
    inst_loop_count = max(round(period_cycles / (cpi_a + cpi_b)), 1)
    if inst_loop_count < 1:
        raise MeasurementError("sequences too slow for the requested frequency")

    half_a = build_sequence_half(events_a, inst_loop_count, plan_a, POINTER_REGISTER_A, "a")
    half_b = build_sequence_half(events_b, inst_loop_count, plan_b, POINTER_REGISTER_B, "b")
    program = Program(
        list(half_a.instructions) + list(half_b.instructions) + [Instruction(Opcode.HALT)],
        name="sequence alternation",
    )


    prime_for_sweep(
        core.hierarchy, plan_a, is_write=any(event.is_store for event in events_a)
    )
    prime_for_sweep(
        core.hierarchy,
        plan_b,
        is_write=any(event.is_store for event in events_b),
        reset=False,
    )
    core.registers[POINTER_REGISTER_A] = plan_a.base
    core.registers[POINTER_REGISTER_B] = plan_b.base
    core.registers["eax"] = 173
    core.run(program, warm_hierarchy=True)  # warm-up period
    result = core.run(program, warm_hierarchy=True)
    trace = result.trace

    waveform = machine.coupling.project_trace(trace)
    coefficients = fourier_coefficient(waveform)
    signal_power = band_power_from_modes(coefficients, REFERENCE_IMPEDANCE)
    achieved_frequency = core.clock_hz / trace.num_cycles
    pairs_per_second = inst_loop_count * achieved_frequency

    loop_factor = 1.0
    if rng is not None and loop_noise_fraction > 0:
        loop_factor = max(1.0 + rng.normal(0.0, loop_noise_fraction), 0.0)
    savat_zj = signal_power * loop_factor / pairs_per_second / ZEPTOJOULE

    return SequenceSavatResult(
        sequence_a=tuple(event.name for event in events_a),
        sequence_b=tuple(event.name for event in events_b),
        measured_zj=savat_zj,
        pairs_per_second=pairs_per_second,
    )
