"""Cross-campaign kernel-trace cache: the two-tier store behind studies.

The expensive part of every campaign cell — the ``prime`` and
``core_run`` phases that produce the switching-activity
:class:`~repro.uarch.activity.ActivityTrace` — is a pure function of
the machine *microarchitecture*, the ordered event pair, and the
:class:`~repro.codegen.frequency.FrequencyPlan`.  Distance, campaign
seed, repetitions, and the measurement method only enter downstream, at
the EM projection and analysis steps.  A multi-distance study therefore
re-derives the identical trace once per distance, and a re-seeded or
``--method full`` re-analysis re-derives it again from zero.

:class:`TraceCache` stores those traces once:

* an **in-process LRU** (bounded; a paper-sized trace is ~3 MB) serves
  repeat requests in the same process at dictionary-lookup cost;
* an optional **shared-memory tier** (POSIX segments under a
  study-owned name prefix, see :mod:`repro.core.shm`) serves a trace
  produced by one pool worker to its siblings without any ``.npz``
  round-trip — no serialization, no filesystem;
* an optional **on-disk tier** (``.npz`` payloads) shares traces across
  processes and survives the process — campaign workers and the study
  runner's persistent pool all read and write the same directory, and
  it persists across studies where the shared-memory tier does not.

Disk entries follow the executor's cache discipline via
:mod:`repro.core.diskcache`: writes are atomic (temp file + fsync +
``os.replace``), and an unreadable or wrong-shaped entry is quarantined
to ``<dir>/quarantine/`` — never silently deleted — and recomputed.

Keys are content hashes over everything that determines the trace:
the trace-cache and simulator schema versions, the active simulation
path (fast or reference — the reference path stays an executable
specification, so the two never share entries), the machine *spec
content* (not just its name), the ordered pair, and every
``FrequencyPlan`` field.  Nothing distance-, seed-, repetition-, or
method-dependent participates, which is exactly what makes the entries
reusable across campaigns.

Environment knobs:

* ``SAVAT_TRACE_CACHE=0`` disables the cache process-wide (it is on by
  default, memory tier only);
* ``SAVAT_TRACE_CACHE_DIR=DIR`` adds the on-disk tier at ``DIR``;
* ``SAVAT_SHM=0`` disables the shared-memory tier (and the campaign
  sample arena) process-wide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.codegen.frequency import FrequencyPlan
from repro.core import shm as shm_plane
from repro.core.diskcache import atomic_write, quarantine_entry
from repro.isa.events import InstructionEvent
from repro.machines.calibrated import CalibratedMachine
from repro.uarch.activity import ActivityTrace
from repro.uarch.fastpath import UARCH_SCHEMA_VERSION, fast_path_enabled

#: Bump whenever the cache payload layout or the key composition
#: changes; old entries then miss instead of replaying stale traces.
TRACE_CACHE_SCHEMA_VERSION = 1

#: Environment variable that disables the trace cache when set falsy.
TRACE_CACHE_ENV = "SAVAT_TRACE_CACHE"

#: Environment variable naming the on-disk tier's directory.
TRACE_CACHE_DIR_ENV = "SAVAT_TRACE_CACHE_DIR"

#: Default bound on the in-process LRU tier.  A paper-sized Core 2 Duo
#: trace is ~3 MB (12 components x ~30k cycles of float64), so the
#: default worst case is ~100 MB per process.
DEFAULT_MEMORY_ENTRIES = 32

_FALSY = {"0", "false", "no", "off"}


def trace_cache_enabled(environ: dict | None = None) -> bool:
    """Whether the trace cache is enabled (default: yes)."""
    environ = os.environ if environ is None else environ
    return environ.get(TRACE_CACHE_ENV, "").strip().lower() not in _FALSY


def _spec_payload(machine: CalibratedMachine) -> dict:
    """The machine spec as a stable, JSON-serializable mapping.

    The full spec *content* is hashed — cache geometry, latencies,
    functional-unit timings, activity quanta — not just the catalog
    name, so an edited spec can never replay a stale trace recorded
    under the same name.
    """
    return dataclasses.asdict(machine.spec)


def _plan_payload(plan: FrequencyPlan) -> dict:
    """Every FrequencyPlan field, as a stable mapping.

    The spec's event objects are identified by name (the ordered pair
    already participates in the key) and the sweeps by their full
    constants, so any plan perturbation changes the key.
    """
    spec = plan.spec
    return {
        "inst_loop_count": int(spec.inst_loop_count),
        "sweep_a": {
            "base": int(spec.sweep_a.base),
            "footprint": int(spec.sweep_a.footprint),
            "offset": int(spec.sweep_a.offset),
        },
        "sweep_b": {
            "base": int(spec.sweep_b.base),
            "footprint": int(spec.sweep_b.footprint),
            "offset": int(spec.sweep_b.offset),
        },
        "target_frequency_hz": float(plan.target_frequency_hz),
        "predicted_frequency_hz": float(plan.predicted_frequency_hz),
        "cycles_per_iteration_a": float(plan.cycles_per_iteration_a),
        "cycles_per_iteration_b": float(plan.cycles_per_iteration_b),
    }


def trace_cache_key(
    machine: CalibratedMachine,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    plan: FrequencyPlan,
    schema_version: int = TRACE_CACHE_SCHEMA_VERSION,
    uarch_version: int = UARCH_SCHEMA_VERSION,
) -> str:
    """Content hash identifying one kernel trace.

    Covers the schema versions, the active simulation path, the machine
    spec content, the ordered pair, and every plan field — and nothing
    else: distance, seed, repetitions, and measurement method do not
    participate, so one trace serves every campaign that shares the
    kernel.
    """
    payload = {
        "schema": int(schema_version),
        "uarch": int(uarch_version),
        "path": "fast" if fast_path_enabled() else "reference",
        "machine": _spec_payload(machine),
        "pair": [event_a.name, event_b.name],
        "plan": _plan_payload(plan),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class TraceCache:
    """Multi-tier (memory LRU + optional shm + optional disk) trace store.

    Parameters
    ----------
    directory:
        On-disk tier directory (``None``: no disk tier).  Multiple
        processes may share it — writes are atomic and corrupt entries
        are quarantined, exactly like the campaign result cache.
    memory_entries:
        Bound on the in-process LRU (``0`` disables the memory tier).
    shm_prefix:
        Segment-name prefix of the shared-memory tier (``None``: no shm
        tier).  Every entry lives in one POSIX segment named
        ``<prefix><key>``; pool workers sharing the prefix serve each
        other traces with no serialization or disk traffic.  The
        process that *owns* the prefix (typically the study runner)
        must call :meth:`unlink_shm` after its pool has drained; see
        :func:`new_shm_prefix`.

    Counter semantics mirror :class:`~repro.core.executor.ResultCache`:
    every :meth:`load` increments exactly one of ``memory_hits``,
    ``shm_hits``, ``disk_hits``, or ``misses``; a quarantined disk
    entry is a miss that also increments ``quarantine_count``, and
    never a hit.  :meth:`counters` snapshots all counters (the
    campaign executor ships per-cell snapshots from workers back to
    the parent as span fragments) and :meth:`reset_counters` zeroes
    them per execution.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        shm_prefix: str | None = None,
    ) -> None:
        self.directory = Path(directory).expanduser() if directory is not None else None
        self.memory_entries = int(memory_entries)
        self.shm_prefix = shm_prefix if shm_prefix else None
        self._memory: OrderedDict[str, tuple[ActivityTrace, int, float]] = OrderedDict()
        self.memory_hits = 0
        self.shm_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantine_count = 0
        self.quarantined_paths: list[Path] = []

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        """File path of one cached trace (disk tier only)."""
        if self.directory is None:
            raise ValueError("trace cache has no disk tier")
        return self.directory / f"trace_{key}.npz"

    def quarantine_dir(self) -> Path:
        """Directory corrupt disk entries are moved to."""
        if self.directory is None:
            raise ValueError("trace cache has no disk tier")
        return self.directory / "quarantine"

    def spec(self) -> dict | None:
        """Picklable construction recipe for worker processes.

        The campaign executor ships this — the cache *path*, never the
        traces themselves — to pool workers, which rebuild their own
        :class:`TraceCache` over the shared disk tier.
        """
        return {
            "directory": str(self.directory) if self.directory is not None else None,
            "memory_entries": self.memory_entries,
            "shm_prefix": self.shm_prefix,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "TraceCache":
        """Rebuild a cache from :meth:`spec` (used by pool workers)."""
        return cls(
            directory=spec.get("directory"),
            memory_entries=spec.get("memory_entries", DEFAULT_MEMORY_ENTRIES),
            shm_prefix=spec.get("shm_prefix"),
        )

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Snapshot of all counters (JSON-ready)."""
        return {
            "memory_hits": self.memory_hits,
            "shm_hits": self.shm_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantine_count,
        }

    def reset_counters(self) -> None:
        """Zero all counters (cached entries are kept)."""
        self.memory_hits = 0
        self.shm_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantine_count = 0
        self.quarantined_paths = []

    @staticmethod
    def counter_delta(after: dict[str, int], before: dict[str, int]) -> dict[str, int]:
        """Per-key difference of two :meth:`counters` snapshots."""
        return {name: after[name] - before[name] for name in after}

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: str) -> tuple[ActivityTrace, int, float] | None:
        """Load ``(trace, inst_loop_count, predicted_frequency_hz)`` or ``None``.

        The two scalars are the retune outcome of the original
        simulation: :func:`produce_cell_trace` reconstructs the final
        plan from them, so a cache hit returns exactly what
        :func:`~repro.core.savat.simulate_alternation_period` returned.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return entry
        if self.shm_prefix is not None:
            entry = self._load_shm(key)
            if entry is not None:
                self._remember(key, entry)
                self.shm_hits += 1
                return entry
        if self.directory is not None:
            entry = self._load_disk(key)
            if entry is not None:
                self._remember(key, entry)
                self._store_shm(key, *entry)
                self.disk_hits += 1
                return entry
        self.misses += 1
        return None

    def _load_disk(self, key: str) -> tuple[ActivityTrace, int, float] | None:
        path = self.entry_path(key)
        try:
            with np.load(path) as data:
                payload = np.asarray(data["data"], dtype=np.float64)
                clock_hz = float(data["clock_hz"])
                inst_loop_count = int(data["inst_loop_count"])
                predicted_hz = float(data["predicted_frequency_hz"])
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — any unreadable entry is quarantined
            self.quarantine(key, path)
            return None
        if (
            payload.ndim != 2
            or not np.all(np.isfinite(payload))
            or clock_hz <= 0
            or inst_loop_count < 1
            or not np.isfinite(predicted_hz)
        ):
            self.quarantine(key, path)
            return None
        try:
            trace = ActivityTrace(data=payload, clock_hz=clock_hz)
        except Exception:  # noqa: BLE001 — wrong component count etc.
            self.quarantine(key, path)
            return None
        return trace, inst_loop_count, predicted_hz

    # ------------------------------------------------------------------
    # Shared-memory tier
    # ------------------------------------------------------------------
    #: Float64 header preceding the flattened trace data in a segment:
    #: (n_components, n_cycles, clock_hz, inst_loop_count, predicted_hz).
    _SHM_HEADER = 5

    def segment_name(self, key: str) -> str:
        """Segment name of one cached trace (shm tier only)."""
        if self.shm_prefix is None:
            raise ValueError("trace cache has no shared-memory tier")
        return f"{self.shm_prefix}{key}"

    def _load_shm(self, key: str) -> tuple[ActivityTrace, int, float] | None:
        segment = shm_plane.attach_segment(self.segment_name(key))
        if segment is None:
            return None
        try:
            entry = self._read_segment(segment)
        finally:
            segment.close()
        if entry is None:
            # Unlike a disk entry there is no artifact worth keeping for
            # a post mortem: unlink the bad segment and fall through to
            # the disk tier, which re-validates (and quarantines) itself.
            shm_plane.unlink_segment(self.segment_name(key))
        return entry

    def _read_segment(self, segment) -> tuple[ActivityTrace, int, float] | None:
        words = segment.size // 8
        if words < self._SHM_HEADER:
            return None
        flat = np.ndarray((words,), dtype=np.float64, buffer=segment.buf)
        try:
            header = np.array(flat[: self._SHM_HEADER], dtype=np.float64)
            if not np.all(np.isfinite(header)):
                return None
            rows, columns = int(header[0]), int(header[1])
            clock_hz = float(header[2])
            inst_loop_count = int(header[3])
            predicted_hz = float(header[4])
            if (
                rows < 1
                or columns < 1
                or words < self._SHM_HEADER + rows * columns
                or clock_hz <= 0
                or inst_loop_count < 1
            ):
                return None
            # Copy out: the entry outlives the mapping (memory LRU).
            payload = np.array(
                flat[self._SHM_HEADER : self._SHM_HEADER + rows * columns],
                dtype=np.float64,
            ).reshape(rows, columns)
            if not np.all(np.isfinite(payload)):
                return None
            trace = ActivityTrace(data=payload, clock_hz=clock_hz)
        except Exception:  # noqa: BLE001 — a bad segment is dropped, not served
            return None
        finally:
            # Release the buffer view before SharedMemory.close().
            del flat
        return trace, inst_loop_count, predicted_hz

    def _store_shm(
        self,
        key: str,
        trace: ActivityTrace,
        inst_loop_count: int,
        predicted_frequency_hz: float,
    ) -> None:
        """Publish one entry into the shm tier (first writer wins)."""
        if self.shm_prefix is None:
            return
        data = np.asarray(trace.data, dtype=np.float64)
        words = self._SHM_HEADER + data.size
        segment = shm_plane.create_segment(self.segment_name(key), words * 8)
        if segment is None:
            return
        flat = np.ndarray((words,), dtype=np.float64, buffer=segment.buf)
        # Data first, header last: a reader racing an in-progress write
        # sees a zero header (rows == 0) and treats the entry as absent.
        flat[self._SHM_HEADER :] = data.ravel()
        flat[2] = float(trace.clock_hz)
        flat[3] = float(int(inst_loop_count))
        flat[4] = float(predicted_frequency_hz)
        flat[1] = float(data.shape[1])
        flat[0] = float(data.shape[0])
        del flat
        segment.close()

    def shm_segments(self) -> list[str]:
        """Live shm-tier segment names under this cache's prefix."""
        if self.shm_prefix is None:
            return []
        return shm_plane.list_segments(self.shm_prefix)

    def unlink_shm(self) -> int:
        """Unlink every shm-tier segment under this cache's prefix.

        Owner teardown only, and only after the worker pool using the
        prefix has drained — a still-running worker could otherwise
        publish a fresh segment after the sweep and leak it.
        """
        if self.shm_prefix is None:
            return 0
        return shm_plane.unlink_segments(self.shm_prefix)

    def quarantine(self, key: str, path: Path) -> Path | None:
        """Move a bad disk entry into the quarantine directory."""
        target = quarantine_entry(self.quarantine_dir(), key, path)
        if target is not None:
            self.quarantine_count += 1
            self.quarantined_paths.append(target)
        return target

    def store(
        self,
        key: str,
        trace: ActivityTrace,
        inst_loop_count: int,
        predicted_frequency_hz: float,
    ) -> None:
        """Persist one trace into every tier (atomically on disk)."""
        entry = (trace, int(inst_loop_count), float(predicted_frequency_hz))
        self._remember(key, entry)
        self._store_shm(key, *entry)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write(
                self.directory,
                self.entry_path(key),
                lambda handle: np.savez(
                    handle,
                    data=trace.data,
                    clock_hz=np.float64(trace.clock_hz),
                    inst_loop_count=np.int64(inst_loop_count),
                    predicted_frequency_hz=np.float64(predicted_frequency_hz),
                ),
            )
        self.stores += 1

    def _remember(self, key: str, entry: tuple[ActivityTrace, int, float]) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def __len__(self) -> int:
        return len(self._memory)


# ----------------------------------------------------------------------
# The trace-production stage (cache-aware half of simulate_cell)
# ----------------------------------------------------------------------
def produce_cell_trace(
    machine: CalibratedMachine,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    plan: FrequencyPlan,
    cache: TraceCache | None = None,
) -> tuple[ActivityTrace, FrequencyPlan]:
    """One cell's steady-state period trace, through the cache.

    This is the cacheable stage the campaign executor's
    :func:`~repro.core.executor.simulate_cell` was split around: it
    produces exactly what
    :func:`~repro.core.savat.simulate_alternation_period` returns —
    the measured :class:`~repro.uarch.activity.ActivityTrace` and the
    (possibly re-tuned) plan — but serves repeats from the cache.  A
    hit skips the ``prime`` and ``core_run`` phases entirely; the final
    plan is reconstructed from the cached retune outcome, because
    re-tuning only ever changes ``spec.inst_loop_count`` and
    ``predicted_frequency_hz``.
    """
    from repro.core.savat import simulate_alternation_period

    if cache is None:
        return simulate_alternation_period(machine, plan)

    key = trace_cache_key(machine, event_a, event_b, plan)
    entry = cache.load(key)
    if entry is not None:
        trace, inst_loop_count, predicted_hz = entry
        final_plan = plan
        if (
            inst_loop_count != plan.spec.inst_loop_count
            or predicted_hz != plan.predicted_frequency_hz
        ):
            final_plan = dataclasses.replace(
                plan,
                spec=dataclasses.replace(plan.spec, inst_loop_count=inst_loop_count),
                predicted_frequency_hz=predicted_hz,
            )
        return trace, final_plan

    trace, final_plan = simulate_alternation_period(machine, plan)
    cache.store(
        key,
        trace,
        final_plan.spec.inst_loop_count,
        final_plan.predicted_frequency_hz,
    )
    return trace, final_plan


# ----------------------------------------------------------------------
# Shared-memory tier naming
# ----------------------------------------------------------------------
def new_shm_prefix() -> str | None:
    """A fresh shm-tier segment prefix, or ``None`` when unavailable.

    The caller that receives the prefix *owns* it: it must call
    :meth:`TraceCache.unlink_shm` (after draining any pool sharing the
    cache) so no ``savat_tc_*`` segment outlives the run.
    """
    if not shm_plane.shm_available():
        return None
    return f"{shm_plane.SEGMENT_PREFIX}tc_{shm_plane.new_token()}_"


# ----------------------------------------------------------------------
# Process-level default cache
# ----------------------------------------------------------------------
_PROCESS_CACHE: TraceCache | None = None
_PROCESS_CACHE_CONFIG: tuple | None = None


def get_process_trace_cache(environ: dict | None = None) -> TraceCache | None:
    """The process-wide default cache, configured from the environment.

    Returns ``None`` when ``SAVAT_TRACE_CACHE`` disables the cache.
    The singleton is rebuilt when the environment configuration changes
    (tests monkeypatch the knobs), but otherwise persists, which is
    what lets a long-lived process — or a study's pool worker — reuse
    traces across campaigns.
    """
    global _PROCESS_CACHE, _PROCESS_CACHE_CONFIG
    environ = os.environ if environ is None else environ
    if not trace_cache_enabled(environ):
        return None
    config = (environ.get(TRACE_CACHE_DIR_ENV) or None,)
    if _PROCESS_CACHE is None or _PROCESS_CACHE_CONFIG != config:
        _PROCESS_CACHE = TraceCache(directory=config[0])
        _PROCESS_CACHE_CONFIG = config
    return _PROCESS_CACHE


def clear_process_trace_cache() -> None:
    """Drop the process-wide default cache (mostly for tests)."""
    global _PROCESS_CACHE, _PROCESS_CACHE_CONFIG
    _PROCESS_CACHE = None
    _PROCESS_CACHE_CONFIG = None


__all__ = [
    "DEFAULT_MEMORY_ENTRIES",
    "TRACE_CACHE_DIR_ENV",
    "TRACE_CACHE_ENV",
    "TRACE_CACHE_SCHEMA_VERSION",
    "TraceCache",
    "clear_process_trace_cache",
    "get_process_trace_cache",
    "new_shm_prefix",
    "produce_cell_trace",
    "trace_cache_enabled",
    "trace_cache_key",
]
