"""Choosing a quiet alternation frequency.

Section III: "we also have the freedom to select a frequency with
relatively little noise — an important consideration for EM emanation
side channels where direct collection ... is subject not only to
measurement error but also to noise from various radio signals."

On the real bench the operator eyeballs the analyzer; here the same
survey is automated: scan candidate frequencies, score each by the
expected interference power its integration band would collect, and
recommend the quietest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.em.environment import NoiseEnvironment
from repro.errors import MeasurementError


@dataclass
class FrequencyRecommendation:
    """Outcome of a quiet-frequency survey."""

    frequency_hz: float
    band_noise_w: float
    surveyed: dict[float, float]

    def __str__(self) -> str:
        return (
            f"recommend {self.frequency_hz / 1e3:.1f} kHz "
            f"({self.band_noise_w:.3e} W expected band noise)"
        )


def survey_band_noise(
    environment: NoiseEnvironment,
    candidates_hz: list[float] | np.ndarray,
    band_half_width_hz: float = 1e3,
) -> dict[float, float]:
    """Expected noise power per candidate band (no randomness)."""
    candidates = np.asarray(candidates_hz, dtype=np.float64)
    if candidates.ndim != 1 or len(candidates) == 0:
        raise MeasurementError("need a non-empty 1-D candidate list")
    if np.any(candidates <= band_half_width_hz):
        raise MeasurementError(
            "candidate frequencies must exceed the band half-width "
            f"({band_half_width_hz} Hz)"
        )
    return {
        float(frequency): environment.band_noise_power(
            float(frequency), band_half_width_hz, rng=None
        )
        for frequency in candidates
    }


def recommend_frequency(
    environment: NoiseEnvironment,
    low_hz: float = 40e3,
    high_hz: float = 200e3,
    step_hz: float = 5e3,
    band_half_width_hz: float = 1e3,
) -> FrequencyRecommendation:
    """Survey ``[low, high]`` and recommend the quietest band.

    Ties break toward the lowest frequency (slower alternation needs a
    larger ``inst_loop_count``, which averages loop jitter better).
    """
    if not 0 < low_hz < high_hz:
        raise MeasurementError(f"invalid survey range [{low_hz}, {high_hz}]")
    if step_hz <= 0:
        raise MeasurementError(f"survey step must be positive, got {step_hz}")
    candidates = np.arange(low_hz, high_hz + step_hz / 2, step_hz)
    surveyed = survey_band_noise(environment, candidates, band_half_width_hz)
    best_frequency = min(surveyed, key=lambda frequency: (surveyed[frequency], frequency))
    return FrequencyRecommendation(
        frequency_hz=best_frequency,
        band_noise_w=surveyed[best_frequency],
        surveyed=surveyed,
    )
