"""Campaign runner: the full N-by-N, 10-repetition measurement of §IV.

One campaign measures every ordered (A, B) pairing of a chosen event set
with a fixed machine, distance, and alternation frequency, repeating
each measurement ``repetitions`` times.  As in the paper — where the ten
repetitions happened "over a period of multiple days to assess how the
measurement is affected by changes in radio signal interference, room
temperature, errors in positioning the antenna, etc." — the variation
between repetitions comes from the environment and the alternation
loop, not the code under test, so the deterministic kernel simulation is
shared across repetitions and only the noise is re-drawn.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.matrix import SavatMatrix
from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    measure_savat,
    simulate_alternation_period,
)
from repro.isa.events import EVENT_ORDER, InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine

#: Repetitions used in the paper's campaigns.
PAPER_REPETITIONS = 10

ProgressCallback = Callable[[str, str, int, int], None]


def run_campaign(
    machine: CalibratedMachine,
    config: MeasurementConfig | None = None,
    events: Sequence[InstructionEvent | str] | None = None,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = 0,
    progress: ProgressCallback | None = None,
) -> SavatMatrix:
    """Measure the full pairwise SAVAT matrix.

    Parameters
    ----------
    machine:
        Calibrated machine (fixes the distance too).
    config:
        Measurement configuration; the paper's defaults if omitted.
    events:
        Event subset (defaults to all eleven, in paper order).
    repetitions:
        Measurements per cell (paper: 10).
    seed:
        Seed for the campaign's noise randomness.
    progress:
        Optional callback ``(event_a, event_b, done, total)`` invoked
        after each cell completes.

    Returns
    -------
    SavatMatrix
        All repetitions of all ordered pairings, in zJ.
    """
    config = config or MeasurementConfig()
    if events is None:
        resolved = [get_event(name) for name in EVENT_ORDER]
    else:
        resolved = [get_event(e) if isinstance(e, str) else e for e in events]
    names = tuple(event.name for event in resolved)
    count = len(resolved)
    rng = np.random.default_rng(seed)
    samples = np.zeros((count, count, repetitions))

    total = count * count
    done = 0
    for i, event_a in enumerate(resolved):
        for j, event_b in enumerate(resolved):
            plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
            trace, plan = simulate_alternation_period(machine, plan)
            for repetition in range(repetitions):
                result = measure_savat(
                    machine,
                    event_a,
                    event_b,
                    config=config,
                    rng=rng,
                    trace=trace,
                    plan=plan,
                )
                samples[i, j, repetition] = result.savat_zj
            done += 1
            if progress is not None:
                progress(event_a.name, event_b.name, done, total)

    return SavatMatrix(
        events=names,
        samples_zj=samples,
        machine=machine.name,
        distance_m=machine.distance_m,
        metadata={
            "alternation_frequency_hz": config.alternation_frequency_hz,
            "band_half_width_hz": config.band_half_width_hz,
            "method": config.method,
            "repetitions": repetitions,
            "seed": seed,
        },
    )


def selected_pairings_means(
    matrix: SavatMatrix, pairings: Sequence[tuple[str, str]]
) -> list[tuple[str, float]]:
    """Mean SAVAT for a list of (A, B) pairings, as chart-ready rows.

    Used for the paper's bar charts (Figures 11/13/15/16).
    """
    rows: list[tuple[str, float]] = []
    for event_a, event_b in pairings:
        rows.append((f"{event_a}/{event_b}", matrix.cell(event_a, event_b)))
    return rows
