"""Campaign runner: the full N-by-N, 10-repetition measurement of §IV.

One campaign measures every ordered (A, B) pairing of a chosen event set
with a fixed machine, distance, and alternation frequency, repeating
each measurement ``repetitions`` times.  As in the paper — where the ten
repetitions happened "over a period of multiple days to assess how the
measurement is affected by changes in radio signal interference, room
temperature, errors in positioning the antenna, etc." — the variation
between repetitions comes from the environment and the alternation
loop, not the code under test, so the deterministic kernel simulation is
shared across repetitions and only the noise is re-drawn.

Cell execution is delegated to :mod:`repro.core.executor`, which fans
the independent cells out across worker processes and caches finished
cells on disk, while a per-cell seed schedule keeps parallel, serial,
and cached runs bit-identical.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.core.executor import (
    DEFAULT_MAX_RETRIES,
    ProgressCallback,
    ResultCache,
    WorkerPool,
    execute_campaign,
)
from repro.core.faults import FaultPlan
from repro.core.trace_cache import TraceCache
from repro.core.matrix import SavatMatrix
from repro.core.savat import MeasurementConfig
from repro.isa.events import EVENT_ORDER, InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine
from repro.obs import CampaignObservability

#: Repetitions used in the paper's campaigns.
PAPER_REPETITIONS = 10


def run_campaign(
    machine: CalibratedMachine,
    config: MeasurementConfig | None = None,
    events: Sequence[InstructionEvent | str] | None = None,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = 0,
    progress: ProgressCallback | None = None,
    workers: int = 0,
    cache_dir: str | os.PathLike | None = None,
    cache: ResultCache | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    cell_timeout_s: float | None = None,
    journal: str | os.PathLike | bool | None = None,
    resume: bool | str | os.PathLike = False,
    fault_plan: FaultPlan | None = None,
    observability: CampaignObservability | None = None,
    trace_cache: TraceCache | bool | None = None,
    pool: WorkerPool | None = None,
    shm: bool | None = None,
    schedule: str = "rowmajor",
) -> SavatMatrix:
    """Measure the full pairwise SAVAT matrix.

    Execution routes through :mod:`repro.core.executor`: cells carry a
    deterministic per-cell seed schedule, so serial and parallel runs
    of the same campaign produce bit-identical samples, and an optional
    on-disk cache lets repeated campaigns skip simulation entirely.

    **Timeout semantics** are identical in serial and pool modes: with
    ``cell_timeout_s`` set, an attempt that overruns the budget counts
    one timeout, its result is discarded, and the cell is retried from
    its original seed-schedule entry (one retry per overrun) until the
    ``max_retries`` budget is exhausted, at which point the campaign
    fails.  The only difference is *when* the overrun is detected:
    worker processes are preempted mid-attempt, while a serial
    in-process attempt cannot be interrupted and is judged after it
    returns.  A cell that overruns and then succeeds therefore produces
    the same ``timeouts``/``retries`` counters, the same journal
    contents, and bit-identical samples in both modes.

    Parameters
    ----------
    machine:
        Calibrated machine (fixes the distance too).
    config:
        Measurement configuration; the paper's defaults if omitted.
    events:
        Event subset (defaults to all eleven, in paper order).
    repetitions:
        Measurements per cell (paper: 10).
    seed:
        Seed for the campaign's noise randomness, expanded into the
        per-cell schedule by
        :func:`repro.core.executor.spawn_cell_seeds`.
    progress:
        Optional callback ``(event_a, event_b, done, total)`` invoked
        after each cell completes.
    workers:
        Worker processes to fan cells out across (``0`` or ``1``:
        serial, same results bit for bit).
    cache_dir:
        Directory for the on-disk result cache (``None``: no caching).
    cache:
        A pre-built :class:`~repro.core.executor.ResultCache`;
        takes precedence over ``cache_dir``.
    max_retries:
        Transient-fault retry budget per cell; a retried cell replays
        its original seed-schedule entry, so retries never change the
        campaign's samples.
    cell_timeout_s:
        Wall-clock budget per cell attempt (preemptive when worker
        processes are in use; see
        :func:`repro.core.executor.execute_campaign`).
    journal:
        Campaign journal path (or ``True`` to keep it inside the
        cache's campaign directory): completed cells are streamed to it
        so an interrupted campaign can be resumed.
    resume:
        ``True`` to restore completed cells from ``journal``, or a
        journal path (shorthand for setting ``journal`` and resuming).
        A journal whose version or campaign key does not match raises
        :class:`~repro.errors.JournalError`.
    fault_plan:
        Deterministic :class:`~repro.core.faults.FaultPlan` to inject
        (testing/debugging only).
    observability:
        Optional :class:`~repro.obs.CampaignObservability` bundle: a
        JSONL run trace, a live progress line, and a Prometheus metrics
        export, all fed by the same registry that generates the
        matrix's ``metadata["execution"]`` entry.
    trace_cache:
        Kernel-trace cache serving the prime/core_run trace-production
        stage (``None``: the process-wide cache configured by
        ``SAVAT_TRACE_CACHE[_DIR]``; ``False``: disabled).  Samples are
        bit-identical with the cache on or off.
    pool:
        Persistent :class:`~repro.core.executor.WorkerPool` to run the
        campaign over (a study shares one pool across its campaigns so
        worker trace LRUs stay warm); overrides ``workers``.
    shm:
        Shared-memory sample plane: ``None`` (default) defers to the
        ``SAVAT_SHM`` environment knob, ``True``/``False`` force it on
        or off.  When on, pooled workers write samples into one shared
        arena instead of pickling them back; samples stay bit-identical
        either way.
    schedule:
        Cell submission order for pooled runs: ``"rowmajor"`` (default)
        or ``"cost"``, which submits the most expensive cells first
        using recorded per-cell timings (falling back to a static
        cost prior).  Scheduling never changes samples — each cell owns
        a fixed seed-schedule entry.

    Returns
    -------
    SavatMatrix
        All repetitions of all ordered pairings, in zJ.  The matrix
        metadata carries an ``"execution"`` entry with cache hit/miss
        counters, worker count, per-cell timings, and the
        fault-tolerance counters (retries, timeouts, quarantined and
        resumed cells).
    """
    config = config or MeasurementConfig()
    if events is None:
        resolved = [get_event(name) for name in EVENT_ORDER]
    else:
        resolved = [get_event(e) if isinstance(e, str) else e for e in events]
    names = tuple(event.name for event in resolved)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if isinstance(resume, (str, os.PathLike)):
        journal, resume = resume, True

    samples, stats = execute_campaign(
        machine,
        resolved,
        config=config,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
        cache=cache,
        progress=progress,
        max_retries=max_retries,
        cell_timeout_s=cell_timeout_s,
        journal=journal,
        resume=bool(resume),
        fault_plan=fault_plan,
        observability=observability,
        trace_cache=trace_cache,
        pool=pool,
        shm=shm,
        schedule=schedule,
    )

    return SavatMatrix(
        events=names,
        samples_zj=samples,
        machine=machine.name,
        distance_m=machine.distance_m,
        metadata={
            "alternation_frequency_hz": config.alternation_frequency_hz,
            "band_half_width_hz": config.band_half_width_hz,
            "method": config.method,
            "repetitions": repetitions,
            "seed": seed,
            "execution": stats.as_metadata(),
        },
    )


def selected_pairings_means(
    matrix: SavatMatrix, pairings: Sequence[tuple[str, str]]
) -> list[tuple[str, float]]:
    """Mean SAVAT for a list of (A, B) pairings, as chart-ready rows.

    Used for the paper's bar charts (Figures 11/13/15/16).
    """
    rows: list[tuple[str, float]] = []
    for event_a, event_b in pairings:
        rows.append((f"{event_a}/{event_b}", matrix.cell(event_a, event_b)))
    return rows
