"""Single-instruction SAVAT (Section II).

The paper defines the single-instruction SAVAT as "the maximum of the
pairwise SAVATs where both events in the pair are generated using the
same instruction" — e.g. the SAVAT of a load instruction is the max over
LDM/LDM, LDM/LDL2, LDM/LDL1, LDL2/LDL1, ... pairings, because those are
the behaviours a single ``mov eax,[esi]`` can exhibit depending on data
(and therefore the signal it can leak when data decides which happens).
"""

from __future__ import annotations

from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError

#: Which paper events each x86 instruction can generate (Figure 5): the
#: same load serves LDM/LDL2/LDL1 depending on where the data lives.
INSTRUCTION_EVENT_GROUPS: dict[str, tuple[str, ...]] = {
    "load (mov eax,[esi])": ("LDM", "LDL2", "LDL1"),
    "store (mov [esi],imm)": ("STM", "STL2", "STL1"),
    "add": ("ADD",),
    "sub": ("SUB",),
    "imul": ("MUL",),
    "idiv": ("DIV",),
    "none": ("NOI",),
}


def single_instruction_savat(
    matrix: SavatMatrix,
    groups: dict[str, tuple[str, ...]] | None = None,
) -> dict[str, float]:
    """Per-instruction SAVAT (zJ): max over same-instruction pairings.

    Parameters
    ----------
    matrix:
        A measured (or reference-wrapped) SAVAT matrix.
    groups:
        Mapping from instruction label to the events it can generate;
        defaults to the paper's Figure 5 grouping.

    Returns
    -------
    dict
        Instruction label -> single-instruction SAVAT in zJ.

    Raises
    ------
    ConfigurationError
        If a group references an event absent from the matrix.
    """
    groups = groups or INSTRUCTION_EVENT_GROUPS
    result: dict[str, float] = {}
    for label, events in groups.items():
        if not events:
            raise ConfigurationError(f"instruction group {label!r} is empty")
        best = 0.0
        for event_a in events:
            for event_b in events:
                best = max(best, matrix.cell(event_a, event_b))
        result[label] = best
    return result


def most_leaky_instructions(
    matrix: SavatMatrix,
    groups: dict[str, tuple[str, ...]] | None = None,
) -> list[tuple[str, float]]:
    """Instructions ranked by single-instruction SAVAT, loudest first.

    This is the ranking a programmer or compiler would consult when
    deciding which data-dependent instructions most urgently need
    constant-behaviour rewrites.
    """
    values = single_instruction_savat(matrix, groups)
    return sorted(values.items(), key=lambda item: item[1], reverse=True)
