"""Instruction clustering with SAVAT as the distance metric.

Section III/VII: pairwise SAVAT measurement is O(N^2) in the number of
instructions, which does not scale to a full ISA; the paper proposes to
"cluster instruction opcodes using SAVAT as the distance metric, then
explore sequences using instruction class representatives".  This module
implements that proposal with hierarchical agglomerative clustering and
recovers the paper's observed four groups (off-chip, L2, arithmetic/L1,
DIV) from the Core 2 Duo matrix.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster import hierarchy as scipy_hierarchy
from scipy.spatial.distance import squareform

from repro.core.matrix import SavatMatrix
from repro.errors import ConfigurationError


def savat_distance_matrix(matrix: SavatMatrix) -> np.ndarray:
    """Turn a SAVAT matrix into a proper distance matrix.

    SAVAT is energy-like (squared-amplitude), so the distance between
    two events is ``sqrt`` of the SAVAT left after subtracting each
    event's own measurement floor — the A/A diagonal, which is error,
    not signal: ``d(A,B)^2 = max(D_AB - (D_AA + D_BB)/2, 0)``.  An event
    is then at distance zero from itself even though its A/A measurement
    reads a nonzero value.
    """
    symmetric = matrix.symmetrized()
    diagonal = np.diag(symmetric)
    self_noise = (diagonal[:, np.newaxis] + diagonal[np.newaxis, :]) / 2.0
    above_floor = np.clip(symmetric - self_noise, 0.0, None)
    np.fill_diagonal(above_floor, 0.0)
    return np.sqrt(above_floor)


def cluster_linkage(matrix: SavatMatrix, method: str = "average") -> np.ndarray:
    """SciPy linkage over the SAVAT-derived distances."""
    distances = savat_distance_matrix(matrix)
    condensed = squareform(distances, checks=False)
    return scipy_hierarchy.linkage(condensed, method=method)


def find_groups(
    matrix: SavatMatrix,
    num_groups: int = 4,
    method: str = "average",
) -> list[frozenset[str]]:
    """Partition the events into ``num_groups`` SAVAT clusters.

    Returns the groups sorted by size (largest first) then name, each a
    frozenset of event names.

    Raises
    ------
    ConfigurationError
        If ``num_groups`` is out of range.
    """
    count = len(matrix.events)
    if not 1 <= num_groups <= count:
        raise ConfigurationError(
            f"num_groups must be in [1, {count}], got {num_groups}"
        )
    linkage = cluster_linkage(matrix, method)
    labels = scipy_hierarchy.fcluster(linkage, t=num_groups, criterion="maxclust")
    groups: dict[int, set[str]] = {}
    for event, label in zip(matrix.events, labels):
        groups.setdefault(int(label), set()).add(event)
    return sorted(
        (frozenset(group) for group in groups.values()),
        key=lambda group: (-len(group), sorted(group)),
    )


def group_representatives(groups: list[frozenset[str]]) -> list[str]:
    """One representative event per cluster (alphabetical tie-break).

    Measuring only representatives turns an O(N^2) campaign into an
    O(K^2) one — the scaling fix the paper proposes for large ISAs.
    """
    return [sorted(group)[0] for group in groups]


def similarity_graph(matrix: SavatMatrix, threshold_zj: float | None = None):
    """A networkx graph whose edges connect hard-to-distinguish events.

    Events are joined when their symmetrized SAVAT is below
    ``threshold_zj`` (default: 2x the diagonal floor) — the connected
    components are exactly the "low intra-group SAVAT" groups of
    Section V-A.
    """
    import networkx as nx

    symmetric = matrix.symmetrized()
    floor = float(np.diag(symmetric).mean())
    if threshold_zj is None:
        threshold_zj = 2.0 * floor
    graph = nx.Graph()
    graph.add_nodes_from(matrix.events)
    count = len(matrix.events)
    for i in range(count):
        for j in range(i + 1, count):
            value = float(symmetric[i, j])
            if value <= threshold_zj:
                graph.add_edge(matrix.events[i], matrix.events[j], savat_zj=value)
    return graph
