"""SAVAT matrices: storage, statistics, and the paper's validity checks.

A :class:`SavatMatrix` holds every repetition of an N-by-N measurement
campaign and knows how to compute the quantities the paper reports:
per-cell means, the std/mean repeatability ratio (~0.05 in the paper),
the diagonal-minimality check that validates the methodology, and the
A/B-vs-B/A asymmetry that estimates instruction-placement error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class SavatMatrix:
    """Results of a pairwise SAVAT campaign.

    Attributes
    ----------
    events:
        Event names in row/column order (rows = A, columns = B).
    samples_zj:
        Array of shape ``(N, N, repetitions)`` in zeptojoules.
    machine:
        Machine catalog name.
    distance_m:
        Antenna distance of the campaign.
    metadata:
        Free-form campaign metadata (frequency, method, seed, ...).
    """

    events: tuple[str, ...]
    samples_zj: np.ndarray
    machine: str
    distance_m: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.events = tuple(self.events)
        samples = np.asarray(self.samples_zj, dtype=np.float64)
        count = len(self.events)
        if samples.ndim == 2:
            samples = samples[:, :, np.newaxis]
        if samples.shape[:2] != (count, count) or samples.ndim != 3:
            raise ConfigurationError(
                f"samples must have shape ({count}, {count}, R), got {samples.shape}"
            )
        if samples.base is not None:
            # A matrix must own its storage: a view could dangle into a
            # shared-memory arena that its campaign unlinks at teardown.
            samples = samples.copy()
        self.samples_zj = samples

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def repetitions(self) -> int:
        """Number of measurement repetitions stored."""
        return self.samples_zj.shape[2]

    def index(self, event: str) -> int:
        """Row/column index of an event name."""
        try:
            return self.events.index(event.upper())
        except ValueError:
            raise ConfigurationError(
                f"event {event!r} not in this matrix; events: {', '.join(self.events)}"
            ) from None

    def mean(self) -> np.ndarray:
        """Per-cell mean over repetitions (the published quantity)."""
        return self.samples_zj.mean(axis=2)

    def std(self) -> np.ndarray:
        """Per-cell standard deviation over repetitions."""
        return self.samples_zj.std(axis=2, ddof=1) if self.repetitions > 1 else np.zeros(
            self.samples_zj.shape[:2]
        )

    def cell(self, event_a: str, event_b: str) -> float:
        """Mean SAVAT (zJ) for one ordered pairing."""
        return float(self.mean()[self.index(event_a), self.index(event_b)])

    def cell_samples(self, event_a: str, event_b: str) -> np.ndarray:
        """All repetition samples (zJ) for one ordered pairing."""
        return self.samples_zj[self.index(event_a), self.index(event_b)]

    # ------------------------------------------------------------------
    # The paper's validity statistics (Section V)
    # ------------------------------------------------------------------
    def std_over_mean(self) -> float:
        """Mean std/mean ratio over all cells — the paper reports ~0.05."""
        mean = self.mean()
        std = self.std()
        valid = mean > 0
        if not np.any(valid) or self.repetitions < 2:
            return 0.0
        return float((std[valid] / mean[valid]).mean())

    def diagonal(self) -> np.ndarray:
        """Mean A/A values — the measurement-error estimate."""
        return np.diag(self.mean())

    def diagonal_minimality(self, tolerance_zj: float = 0.0) -> tuple[int, int]:
        """How often the diagonal is its row's and column's minimum.

        The paper: "each of the diagonal entries in the table is the
        smallest value in its respective row and column (with one
        exception)".  Returns ``(rows_minimal, columns_minimal)``.
        ``tolerance_zj`` forgives near-ties (the paper's own table has a
        few 0.1 zJ display-precision ties).
        """
        mean = self.mean()
        count = len(self.events)
        slack = tolerance_zj + 1e-12
        rows = sum(1 for i in range(count) if mean[i, i] <= mean[i].min() + slack)
        columns = sum(1 for i in range(count) if mean[i, i] <= mean[:, i].min() + slack)
        return rows, columns

    def asymmetry(self) -> float:
        """Mean relative |A/B - B/A| — instruction-placement error."""
        mean = self.mean()
        upper = np.triu_indices(len(self.events), 1)
        denominator = (mean[upper] + mean.T[upper]) / 2.0
        valid = denominator > 0
        if not np.any(valid):
            return 0.0
        numerator = np.abs(mean[upper] - mean.T[upper])
        return float((numerator[valid] / denominator[valid]).mean())

    def symmetrized(self) -> np.ndarray:
        """(M + M.T)/2 of the means."""
        mean = self.mean()
        return (mean + mean.T) / 2.0

    # ------------------------------------------------------------------
    # Comparison against a reference (for EXPERIMENTS.md)
    # ------------------------------------------------------------------
    def shape_agreement(self, reference: np.ndarray) -> dict[str, float]:
        """Shape-fidelity statistics versus a reference matrix (zJ).

        Returns Pearson and Spearman correlations over the off-diagonal
        cells plus the mean relative error — the three numbers
        EXPERIMENTS.md reports per matrix.
        """
        from scipy import stats

        reference = np.asarray(reference, dtype=np.float64)
        mean = self.mean()
        if reference.shape != mean.shape:
            raise ConfigurationError(
                f"reference shape {reference.shape} does not match matrix {mean.shape}"
            )
        upper = np.triu_indices(len(self.events), 1)
        ours = np.concatenate([mean[upper], mean.T[upper]])
        theirs = np.concatenate([reference[upper], reference.T[upper]])
        pearson = float(np.corrcoef(ours, theirs)[0, 1])
        spearman = float(stats.spearmanr(ours, theirs).statistic)
        valid = theirs > 0
        relative_error = float(
            (np.abs(ours[valid] - theirs[valid]) / theirs[valid]).mean()
        )
        return {
            "pearson": pearson,
            "spearman": spearman,
            "mean_relative_error": relative_error,
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the full campaign (all repetitions) to JSON."""
        return json.dumps(
            {
                "events": list(self.events),
                "machine": self.machine,
                "distance_m": self.distance_m,
                "metadata": self.metadata,
                "samples_zj": self.samples_zj.tolist(),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "SavatMatrix":
        """Rebuild a campaign from :meth:`to_json` output."""
        payload = json.loads(text)
        return cls(
            events=tuple(payload["events"]),
            samples_zj=np.asarray(payload["samples_zj"], dtype=np.float64),
            machine=payload["machine"],
            distance_m=float(payload["distance_m"]),
            metadata=payload.get("metadata", {}),
        )

    def to_csv(self) -> str:
        """Mean matrix as CSV text (header row/column of event names)."""
        mean = self.mean()
        lines = ["," + ",".join(self.events)]
        for i, name in enumerate(self.events):
            lines.append(name + "," + ",".join(f"{value:.3f}" for value in mean[i]))
        return "\n".join(lines)
