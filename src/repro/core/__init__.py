"""The SAVAT metric: pairwise measurement, campaigns, analysis."""

from repro.core.campaign import PAPER_REPETITIONS, run_campaign, selected_pairings_means
from repro.core.executor import (
    CampaignJournal,
    CampaignStats,
    ResultCache,
    WorkerPool,
    campaign_cache_key,
    execute_campaign,
    spawn_cell_seeds,
)
from repro.core.faults import CellFault, FaultInjectedError, FaultPlan
from repro.core.clustering import (
    cluster_linkage,
    find_groups,
    group_representatives,
    savat_distance_matrix,
    similarity_graph,
)
from repro.core.frequency_selection import (
    FrequencyRecommendation,
    recommend_frequency,
    survey_band_noise,
)
from repro.core.matrix import SavatMatrix
from repro.core.microarch_events import (
    MicroarchSavatResult,
    measure_microarch_savat,
)
from repro.core.naive import (
    NaiveComparison,
    compare_methodologies,
    naive_measurement,
    noiseless_subtraction_energy,
)
from repro.core.savat import (
    MeasurementConfig,
    SavatResult,
    clear_cpi_cache,
    measure_savat,
    measure_savat_samples,
    prime_alternation_steady_state,
    simulate_alternation_period,
)
from repro.core.study import StudyResult, run_study
from repro.core.trace_cache import (
    TraceCache,
    get_process_trace_cache,
    produce_cell_trace,
    trace_cache_key,
)
from repro.core.sequences import (
    SequenceSavatResult,
    estimate_sequence_savat,
    measure_sequence_savat,
)
from repro.core.single_instruction import (
    INSTRUCTION_EVENT_GROUPS,
    most_leaky_instructions,
    single_instruction_savat,
)

__all__ = [
    "INSTRUCTION_EVENT_GROUPS",
    "CampaignJournal",
    "CampaignStats",
    "CellFault",
    "FaultInjectedError",
    "FaultPlan",
    "FrequencyRecommendation",
    "MeasurementConfig",
    "ResultCache",
    "campaign_cache_key",
    "execute_campaign",
    "spawn_cell_seeds",
    "MicroarchSavatResult",
    "measure_microarch_savat",
    "NaiveComparison",
    "PAPER_REPETITIONS",
    "SavatMatrix",
    "SavatResult",
    "SequenceSavatResult",
    "StudyResult",
    "TraceCache",
    "WorkerPool",
    "clear_cpi_cache",
    "cluster_linkage",
    "compare_methodologies",
    "estimate_sequence_savat",
    "find_groups",
    "get_process_trace_cache",
    "group_representatives",
    "measure_savat",
    "measure_savat_samples",
    "measure_sequence_savat",
    "most_leaky_instructions",
    "naive_measurement",
    "prime_alternation_steady_state",
    "produce_cell_trace",
    "recommend_frequency",
    "survey_band_noise",
    "run_campaign",
    "run_study",
    "trace_cache_key",
    "savat_distance_matrix",
    "selected_pairings_means",
    "similarity_graph",
    "simulate_alternation_period",
    "single_instruction_savat",
    "noiseless_subtraction_energy",
]
