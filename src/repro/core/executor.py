"""Campaign execution engine: parallel fan-out, determinism, fault tolerance.

The paper's case study is a large measurement fan-out — 11x11 ordered
pairs x 10 repetitions x 3 machines x 3 distances — and every cell is
independent of every other, so the engine here fans the cells of one
campaign out across worker processes while keeping the results
**bit-identical** to a serial run.

Determinism comes from a per-cell seed schedule: the campaign seed
expands through ``np.random.SeedSequence(seed).spawn(count * count)``
and cell ``(i, j)`` always draws its noise from child ``i * count + j``,
no matter which worker simulates it or in what order.  Serial and
parallel execution therefore consume exactly the same random streams —
and so does a **retried** cell, because a retry replays the cell's
original seed-schedule entry, making a campaign with N transient faults
bit-identical to a fault-free run.

A campaign that runs unattended for hours must survive partial failure,
so the executor layers four recovery mechanisms over the fan-out:

* **Per-cell retry** — a worker exception consumes one of the cell's
  ``max_retries`` attempts and the cell is re-dispatched with its
  original seed; only exhausting the budget (or a non-retryable
  configuration error) aborts the campaign.
* **Per-cell wall-clock timeouts** — with ``cell_timeout_s`` set and
  worker processes in use, a cell that exceeds its budget is abandoned
  (the hung worker's slot is written off until it comes back) and
  retried on a fresh worker.  Serial in-process runs cannot preempt a
  hung cell, so there the budget is only recorded post-hoc.
* **Cache quarantine** — a corrupted, truncated, or wrong-shaped cache
  entry is moved to ``<cache_dir>/quarantine/`` (never silently
  deleted) and the cell is recomputed.
* **Campaign journaling** — every completed cell is streamed to an
  append-only JSONL journal, so an interrupted campaign can be resumed
  from the last completed cell instead of from zero, including after a
  fatal error (completed cells are journaled before the re-raise).

Fault injection for all of the above lives in
:mod:`repro.core.faults`: a :class:`~repro.core.faults.FaultPlan`
deterministically raises, hangs, or corrupts at chosen cells, which is
how the recovery paths are tested end to end.

The engine also maintains an on-disk result cache.  Each cell's
repetition samples are stored as an ``.npz`` file under a directory
named by a content hash of everything that determines the cell's value
(machine name and distance, the full :class:`~repro.core.savat.MeasurementConfig`,
the ordered event list, the repetition count, the campaign seed, and
the cell index).  Re-running a campaign the benchmarks have already
measured loads every cell from disk and performs zero simulations;
hit/miss counters, per-cell timings, and the fault-tolerance counters
are reported through :class:`CampaignStats` and the returned matrix
metadata.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.codegen.frequency import FrequencyPlan
from repro.core.faults import CORRUPT_PAYLOAD, CellFault, FaultPlan
from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    measure_savat,
    record_phase_seconds,
    simulate_alternation_period,
)
from repro.errors import CellExecutionError, ConfigurationError, JournalError
from repro.isa.events import InstructionEvent
from repro.machines.calibrated import CalibratedMachine

#: Bump whenever the cache layout or the seeding discipline changes;
#: old entries then miss instead of replaying stale numbers.
CACHE_SCHEMA_VERSION = 1

#: Bump whenever the journal line format changes; a resume against a
#: journal written by another version is rejected, never reinterpreted.
JOURNAL_VERSION = 1

#: Default per-cell retry budget for transient worker faults.
DEFAULT_MAX_RETRIES = 2

ProgressCallback = Callable[[str, str, int, int], None]


# ----------------------------------------------------------------------
# Deterministic seed schedule
# ----------------------------------------------------------------------
def spawn_cell_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """Per-cell seed schedule for a ``count x count`` campaign.

    Cell ``(i, j)`` owns entry ``i * count + j``.  The schedule is a
    pure function of ``(seed, count)``, so serial and parallel runs —
    and reruns on other machines — draw identical noise streams per
    cell regardless of execution order.
    """
    return np.random.SeedSequence(seed).spawn(count * count)


def cell_seed(seed: int, count: int, i: int, j: int) -> np.random.SeedSequence:
    """The seed-schedule entry owned by cell ``(i, j)``."""
    if not (0 <= i < count and 0 <= j < count):
        raise ConfigurationError(
            f"cell ({i}, {j}) outside a {count}x{count} campaign"
        )
    return spawn_cell_seeds(seed, count)[i * count + j]


# ----------------------------------------------------------------------
# Execution statistics
# ----------------------------------------------------------------------
@dataclass
class CampaignStats:
    """Counters and timings from one campaign execution.

    Attributes
    ----------
    cache_hits / cache_misses:
        Cells loaded from the on-disk cache vs cells that had to be
        simulated because the cache was cold or disabled-but-counted.
        Both stay zero when no cache is configured.
    cells_simulated:
        Cells that actually ran the kernel simulation (always equals
        ``cache_misses`` when a cache is in use and nothing is resumed).
    workers:
        Worker processes the fan-out used (1 means serial).
    wall_seconds:
        Wall-clock duration of the whole campaign execution.
    retries:
        Cell attempts that were re-dispatched after a transient worker
        fault or timeout; each retry replays the cell's original seed.
    timeouts:
        Cell attempts that exceeded the ``cell_timeout_s`` budget.
    quarantined:
        Corrupted or truncated cache entries moved to the cache's
        quarantine directory (and recomputed) during this execution.
    resumed:
        Cells restored from the campaign journal instead of being
        simulated or loaded from the cache.
    faults_injected:
        Faults fired by an injected :class:`~repro.core.faults.FaultPlan`,
        keyed by kind; empty for production runs.
    cell_seconds:
        Per-cell simulation time keyed by ``"A/B"`` (cache hits record
        their load time, effectively ~0).
    cell_phase_seconds:
        Per-cell pipeline breakdown keyed by ``"A/B"``: seconds spent
        in the ``prime`` / ``core_run`` / ``synthesize`` / ``analyze``
        phases (see :func:`repro.core.savat.record_phase_seconds`).
        Cache hits record no phases.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    cells_simulated: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    resumed: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)
    cell_seconds: dict[str, float] = field(default_factory=dict)
    cell_phase_seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def record_cell(
        self,
        event_a: str,
        event_b: str,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        """Record one finished cell's timing (and optional phase split)."""
        self.cell_seconds[f"{event_a}/{event_b}"] = float(elapsed_s)
        if phase_seconds:
            self.cell_phase_seconds[f"{event_a}/{event_b}"] = {
                name: float(seconds) for name, seconds in phase_seconds.items()
            }

    def record_fault(self, kind: str) -> None:
        """Count one injected fault firing."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    def phase_seconds(self) -> dict[str, float]:
        """Campaign-wide totals of the per-cell phase breakdown."""
        totals: dict[str, float] = {}
        for phases in self.cell_phase_seconds.values():
            for name, seconds in phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def as_metadata(self) -> dict:
        """JSON-ready summary stored in ``SavatMatrix.metadata``."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells_simulated": self.cells_simulated,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "resumed": self.resumed,
            "faults_injected": dict(self.faults_injected),
            "cell_seconds": dict(self.cell_seconds),
            "cell_phase_seconds": {
                pair: dict(phases)
                for pair, phases in self.cell_phase_seconds.items()
            },
            "phase_seconds": self.phase_seconds(),
        }


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
def _config_payload(config: MeasurementConfig) -> dict:
    """The measurement config as a stable, JSON-serializable mapping."""
    return dataclasses.asdict(config)


def campaign_cache_key(
    machine_name: str,
    distance_m: float,
    config: MeasurementConfig,
    event_names: Sequence[str],
    repetitions: int,
    seed: int,
) -> str:
    """Content hash identifying one campaign's results on disk.

    Any change to the machine, distance, measurement configuration,
    ordered event list, repetition count, or seed changes the key, so
    stale entries can never be mistaken for current ones.  The same key
    identifies the campaign's journal, so a resume against results from
    a different campaign is rejected instead of replayed.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "machine": machine_name,
        "distance_m": float(distance_m),
        "config": _config_payload(config),
        "events": list(event_names),
        "repetitions": int(repetitions),
        "seed": int(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _atomic_write(directory: Path, target: Path, writer: Callable) -> None:
    """Write ``target`` via a same-directory temp file and ``os.replace``.

    ``writer`` receives the open binary/text handle.  The handle is
    flushed and fsynced before the rename, so a worker killed mid-write
    can never leave a truncated file under the target name — the worst
    case is an orphaned ``*.tmp`` file.
    """
    descriptor, temp_name = tempfile.mkstemp(
        dir=directory, prefix=target.stem + "_", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class ResultCache:
    """Per-cell campaign results persisted under a cache directory.

    Layout: ``<cache_dir>/<campaign_key>/cell_<i>_<j>.npz`` holding the
    cell's repetition samples, plus a human-readable ``manifest.json``
    describing the campaign the key hashes.  Writes go through a
    temporary file, ``fsync``, and :func:`os.replace`, so concurrent
    workers (or a worker killed mid-write) never leave a truncated
    entry under a live name.

    Unreadable, truncated, or wrong-shaped entries are **quarantined**:
    moved to ``<cache_dir>/quarantine/<campaign_key>_<name>`` for post
    mortem inspection — never silently deleted — and the cell is
    re-simulated.  Quarantine moves are counted on ``quarantine_count``
    and listed in ``quarantined_paths``.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.quarantine_count = 0
        self.quarantined_paths: list[Path] = []

    def campaign_dir(self, key: str) -> Path:
        """Directory holding one campaign's cells."""
        return self.cache_dir / key

    def cell_path(self, key: str, i: int, j: int) -> Path:
        """File path of one cell's samples."""
        return self.campaign_dir(key) / f"cell_{i:03d}_{j:03d}.npz"

    def quarantine_dir(self) -> Path:
        """Directory corrupt entries are moved to (shared by campaigns)."""
        return self.cache_dir / "quarantine"

    def quarantine(self, key: str, path: Path) -> Path | None:
        """Move a bad cache entry into the quarantine directory.

        The entry keeps its campaign key as a filename prefix, and an
        existing quarantined file of the same name is never overwritten
        (a numeric suffix is appended instead), so repeated corruption
        of the same cell stays individually inspectable.
        """
        quarantine_dir = self.quarantine_dir()
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        base = f"{key}_{path.name}"
        target = quarantine_dir / base
        suffix = 0
        while target.exists():
            suffix += 1
            target = quarantine_dir / f"{base}.{suffix}"
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        self.quarantine_count += 1
        self.quarantined_paths.append(target)
        return target

    def load_cell(self, key: str, i: int, j: int, repetitions: int) -> np.ndarray | None:
        """Load one cell's samples, or ``None`` on a miss.

        A corrupted, truncated, or wrong-shaped file counts as a miss:
        the entry is quarantined and the caller re-simulates the cell.
        """
        path = self.cell_path(key, i, j)
        try:
            with np.load(path) as data:
                samples = np.asarray(data["samples_zj"], dtype=np.float64)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — any unreadable entry is a miss
            self.quarantine(key, path)
            return None
        if samples.shape != (repetitions,) or not np.all(np.isfinite(samples)):
            self.quarantine(key, path)
            return None
        return samples

    def store_cell(self, key: str, i: int, j: int, samples: np.ndarray) -> None:
        """Atomically persist one cell's samples."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        payload = np.asarray(samples, dtype=np.float64)
        _atomic_write(
            directory,
            self.cell_path(key, i, j),
            lambda handle: np.savez(handle, samples_zj=payload),
        )

    def write_manifest(self, key: str, payload: dict) -> None:
        """Record what a campaign key means, for humans debugging the cache."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "manifest.json"
        if path.exists():
            return
        _atomic_write(
            directory,
            path,
            lambda handle: handle.write(
                json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
            ),
        )


# ----------------------------------------------------------------------
# Campaign journal (checkpoint / resume)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _JournalEntry:
    """One completed cell restored from a journal."""

    samples: np.ndarray
    elapsed_s: float
    phase_seconds: dict[str, float]


class CampaignJournal:
    """Append-only JSONL checkpoint of a campaign's completed cells.

    The first line is a header binding the journal to one campaign (via
    :data:`JOURNAL_VERSION` and the campaign's content-hash key); every
    further line records one completed cell's samples at full float64
    precision (``repr`` round-trip, so a resumed cell is bit-identical
    to the original).  Cells are flushed and fsynced as they complete,
    so a campaign killed at any instant loses at most the cell that was
    in flight — a torn trailing line is tolerated and recomputed.

    A resume against a journal whose version or campaign key does not
    match is rejected with :class:`~repro.errors.JournalError` rather
    than replayed.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path).expanduser()
        self._handle = None

    # ------------------------------------------------------------------
    def start(self, header: dict, resume: bool) -> dict[tuple[int, int], _JournalEntry]:
        """Open the journal and return already-completed cells.

        With ``resume`` false (or no journal file yet), a fresh journal
        is written with the given header and no cells are restored.
        With ``resume`` true, the existing journal is validated against
        the header and its completed cells are returned; new cells are
        appended after them.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        entries: dict[tuple[int, int], _JournalEntry] = {}
        if resume and self.path.exists():
            entries = self._load(header)
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._append_line({"kind": "header", **header})
        return entries

    def _load(self, header: dict) -> dict[tuple[int, int], _JournalEntry]:
        repetitions = int(header["repetitions"])
        entries: dict[tuple[int, int], _JournalEntry] = {}
        with open(self.path, encoding="utf-8") as handle:
            first = handle.readline()
            try:
                recorded = json.loads(first)
            except json.JSONDecodeError as error:
                raise JournalError(
                    f"journal {self.path} has an unreadable header; refusing "
                    "to resume (delete or point --journal elsewhere)"
                ) from error
            if recorded.get("kind") != "header":
                raise JournalError(
                    f"journal {self.path} does not start with a header line"
                )
            if recorded.get("journal_version") != header["journal_version"]:
                raise JournalError(
                    f"journal {self.path} has version "
                    f"{recorded.get('journal_version')!r} but this executor "
                    f"writes version {header['journal_version']}; refusing "
                    "to reinterpret it"
                )
            if recorded.get("campaign_key") != header["campaign_key"]:
                raise JournalError(
                    f"journal {self.path} belongs to a different campaign "
                    f"(key {recorded.get('campaign_key')!r}, expected "
                    f"{header['campaign_key']!r}); machine, distance, config, "
                    "events, repetitions, and seed must all match to resume"
                )
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a killed campaign: the
                    # in-flight cell is simply recomputed.
                    continue
                if record.get("kind") != "cell":
                    continue
                try:
                    i, j = int(record["i"]), int(record["j"])
                    samples = np.asarray(record["samples_zj"], dtype=np.float64)
                except (KeyError, TypeError, ValueError):
                    continue
                if samples.shape != (repetitions,) or not np.all(np.isfinite(samples)):
                    continue
                entries[(i, j)] = _JournalEntry(
                    samples=samples,
                    elapsed_s=float(record.get("elapsed_s", 0.0)),
                    phase_seconds={
                        name: float(seconds)
                        for name, seconds in (record.get("phase_seconds") or {}).items()
                    },
                )
        return entries

    # ------------------------------------------------------------------
    def append_cell(
        self,
        i: int,
        j: int,
        samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None,
    ) -> None:
        """Stream one completed cell to disk (flushed and fsynced)."""
        self._append_line(
            {
                "kind": "cell",
                "i": int(i),
                "j": int(j),
                "samples_zj": [float(value) for value in np.asarray(samples)],
                "elapsed_s": float(elapsed_s),
                "phase_seconds": {
                    name: float(seconds)
                    for name, seconds in (phase_seconds or {}).items()
                },
            }
        )

    def _append_line(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError("journal is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Cell simulation (shared by the serial path and the worker processes)
# ----------------------------------------------------------------------
def simulate_cell(
    machine: CalibratedMachine,
    config: MeasurementConfig,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    repetitions: int,
    seed_sequence: np.random.SeedSequence,
    plan: FrequencyPlan | None = None,
    phase_seconds: dict[str, float] | None = None,
) -> np.ndarray:
    """Simulate one (A, B) cell: plan, trace, and all repetitions.

    As in the paper's multi-day repeats, the deterministic kernel
    simulation is shared across repetitions and only the environment
    noise is re-drawn — from this cell's private seed-schedule stream.

    ``plan`` lets the campaign executor pre-compute the frequency plan
    in the parent process (amortizing the per-event CPI probe runs over
    every cell) instead of each worker re-probing from a cold cache;
    the plan is a pure function of machine, pair, and frequency, so the
    results are identical either way.

    ``phase_seconds`` (when given) accumulates the cell's pipeline
    breakdown — prime / core_run / synthesize / analyze seconds.
    """
    rng = np.random.default_rng(seed_sequence)
    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    sink = phase_seconds if phase_seconds is not None else {}
    with record_phase_seconds(sink):
        trace, plan = simulate_alternation_period(machine, plan)
        samples = np.empty(repetitions, dtype=np.float64)
        for repetition in range(repetitions):
            samples[repetition] = measure_savat(
                machine,
                event_a,
                event_b,
                config=config,
                rng=rng,
                trace=trace,
                plan=plan,
            ).savat_zj
    return samples


_WORKER_STATE: dict = {}


def _init_worker(
    machine: CalibratedMachine, config: MeasurementConfig, repetitions: int
) -> None:
    """Stash the per-process campaign context (runs once per worker)."""
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["config"] = config
    _WORKER_STATE["repetitions"] = repetitions


def _cell_task(
    i: int,
    j: int,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    seed_sequence: np.random.SeedSequence,
    plan: FrequencyPlan,
    fault: CellFault | None,
) -> tuple[int, int, np.ndarray, float, dict[str, float]]:
    """Simulate one cell inside a worker process.

    The cell ships its pre-computed frequency plan from the parent, so
    workers never re-run the per-event CPI probes.  ``fault`` (set only
    by an injected :class:`~repro.core.faults.FaultPlan`) raises or
    hangs before the simulation starts; the reported elapsed time
    covers the simulation only, since the parent measures timeout
    budgets against its own clock.
    """
    machine = _WORKER_STATE["machine"]
    config = _WORKER_STATE["config"]
    repetitions = _WORKER_STATE["repetitions"]
    if fault is not None:
        fault.apply()
    started = time.perf_counter()
    phases: dict[str, float] = {}
    samples = simulate_cell(
        machine, config, event_a, event_b, repetitions, seed_sequence,
        plan=plan, phase_seconds=phases,
    )
    return i, j, samples, time.perf_counter() - started, phases


def _is_retryable(error: BaseException) -> bool:
    """Whether a cell failure may be absorbed by the retry budget.

    Configuration mistakes would fail identically on every attempt and
    a broken process pool cannot run further attempts at all, so both
    abort immediately; any other ``Exception`` is treated as transient.
    """
    if isinstance(error, (ConfigurationError, BrokenProcessPool)):
        return False
    return isinstance(error, Exception)


@dataclass(frozen=True)
class _PendingCell:
    """One cold cell awaiting simulation."""

    i: int
    j: int
    event_a: InstructionEvent
    event_b: InstructionEvent
    seed_sequence: np.random.SeedSequence
    plan: FrequencyPlan

    @property
    def index(self) -> tuple[int, int]:
        return (self.i, self.j)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def execute_campaign(
    machine: CalibratedMachine,
    events: Sequence[InstructionEvent],
    config: MeasurementConfig | None = None,
    repetitions: int = 10,
    seed: int = 0,
    workers: int = 0,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    cell_timeout_s: float | None = None,
    journal: str | os.PathLike | bool | None = None,
    resume: bool = False,
    fault_plan: FaultPlan | None = None,
) -> tuple[np.ndarray, CampaignStats]:
    """Measure every ordered (A, B) cell of a campaign, possibly in parallel.

    Parameters
    ----------
    machine:
        Calibrated machine (fixes the distance too).
    events:
        Resolved event objects, in matrix order.
    config:
        Measurement configuration; the paper's defaults if omitted.
    repetitions:
        Measurements per cell.
    seed:
        Campaign seed, expanded into the per-cell schedule by
        :func:`spawn_cell_seeds`.
    workers:
        Worker processes; ``0`` or ``1`` runs serially in-process.
        Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional ``(event_a, event_b, done, total)`` callback invoked as
        each cell completes (cache hits and resumed cells included).
    max_retries:
        Transient-fault retry budget per cell.  A retried cell replays
        its original seed-schedule entry, so retries never change the
        campaign's samples.
    cell_timeout_s:
        Wall-clock budget per cell attempt.  Enforced preemptively when
        worker processes are in use (the hung attempt is abandoned and
        the cell retried); a serial in-process run cannot preempt a
        cell, so there an overrun is only counted in the stats.
    journal:
        Path of the campaign journal to stream completed cells to, or
        ``True`` to place ``journal.jsonl`` inside the cache's campaign
        directory (requires ``cache``).  ``None`` disables journaling.
    resume:
        Restore completed cells from the journal instead of recomputing
        them.  The journal's version and campaign key must match, else
        :class:`~repro.errors.JournalError` is raised; a missing journal
        file simply starts a fresh campaign.
    fault_plan:
        Deterministic :class:`~repro.core.faults.FaultPlan` to inject
        (testing/debugging only).

    Returns
    -------
    tuple
        ``(samples, stats)`` — the ``(N, N, repetitions)`` sample array
        in zJ and the execution counters/timings.

    Raises
    ------
    CellExecutionError
        A cell failed on every attempt (or every worker slot was lost
        to hung cells).  All cells completed before the failure have
        already been streamed to the journal, so a ``resume`` run
        restarts from them.
    """
    config = config or MeasurementConfig()
    resolved = list(events)
    count = len(resolved)
    if count == 0:
        raise ConfigurationError("campaign needs at least one event")
    if repetitions < 1:
        raise ConfigurationError("repetitions must be at least 1")
    if max_retries < 0:
        raise ConfigurationError("max_retries must be non-negative")
    if cell_timeout_s is not None and cell_timeout_s <= 0:
        raise ConfigurationError("cell_timeout_s must be positive")
    names = [event.name for event in resolved]

    effective_workers = max(int(workers), 1)
    stats = CampaignStats(workers=effective_workers)
    samples = np.zeros((count, count, repetitions))
    seeds = spawn_cell_seeds(seed, count)
    started = time.perf_counter()
    total = count * count
    done = 0

    def finish(
        i: int,
        j: int,
        cell_samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        nonlocal done
        samples[i, j] = cell_samples
        stats.record_cell(names[i], names[j], elapsed_s, phase_seconds)
        done += 1
        if progress is not None:
            progress(names[i], names[j], done, total)

    # The key identifies the campaign both on disk (cache layout) and in
    # the journal header, so it is computed even for cache-less runs.
    key = campaign_cache_key(
        machine.name, machine.distance_m, config, names, repetitions, seed
    )
    quarantined_before = cache.quarantine_count if cache is not None else 0
    if cache is not None:
        cache.write_manifest(
            key,
            {
                "schema": CACHE_SCHEMA_VERSION,
                "machine": machine.name,
                "distance_m": machine.distance_m,
                "config": _config_payload(config),
                "events": names,
                "repetitions": repetitions,
                "seed": seed,
            },
        )

    campaign_journal: CampaignJournal | None = None
    journaled: dict[tuple[int, int], _JournalEntry] = {}
    if journal is True:
        if cache is None:
            raise ConfigurationError(
                "journal=True places the journal inside the cache's campaign "
                "directory and therefore needs a cache; pass an explicit "
                "journal path instead"
            )
        journal = cache.campaign_dir(key) / "journal.jsonl"
    if journal:
        campaign_journal = CampaignJournal(journal)
        journaled = campaign_journal.start(
            {
                "journal_version": JOURNAL_VERSION,
                "campaign_key": key,
                "machine": machine.name,
                "distance_m": machine.distance_m,
                "events": names,
                "repetitions": repetitions,
                "seed": seed,
            },
            resume=resume,
        )

    def checkpoint(
        i: int,
        j: int,
        cell_samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None,
    ) -> None:
        """Persist one freshly computed (or cache-loaded) cell."""
        if campaign_journal is not None:
            campaign_journal.append_cell(
                i, j, cell_samples, elapsed_s, phase_seconds
            )

    try:
        # Resolve journal and cache hits first, so the fan-out only
        # sees the cold cells.
        pending: list[_PendingCell] = []
        for i in range(count):
            for j in range(count):
                entry = journaled.get((i, j))
                if entry is not None:
                    stats.resumed += 1
                    finish(i, j, entry.samples, entry.elapsed_s, entry.phase_seconds)
                    continue
                if cache is not None and fault_plan is not None:
                    corrupt = fault_plan.corrupt_fault(i, j)
                    if corrupt is not None:
                        # Overwrite (or create) the entry with garbage so
                        # the load below must quarantine and recompute.
                        path = cache.cell_path(key, i, j)
                        path.parent.mkdir(parents=True, exist_ok=True)
                        path.write_bytes(CORRUPT_PAYLOAD)
                        stats.record_fault(corrupt.kind)
                load_started = time.perf_counter()
                cached = (
                    cache.load_cell(key, i, j, repetitions)
                    if cache is not None
                    else None
                )
                if cached is not None:
                    stats.cache_hits += 1
                    elapsed = time.perf_counter() - load_started
                    checkpoint(i, j, cached, elapsed, None)
                    finish(i, j, cached, elapsed)
                else:
                    if cache is not None:
                        stats.cache_misses += 1
                    # Plan in the parent: the per-event CPI probes behind
                    # _plan_pair are cached per (machine, event), so every
                    # pending cell after the first reuses them, and workers
                    # receive finished plans instead of each re-probing
                    # from a cold cache.
                    plan = _plan_pair(
                        machine,
                        resolved[i],
                        resolved[j],
                        config.alternation_frequency_hz,
                    )
                    pending.append(
                        _PendingCell(
                            i, j, resolved[i], resolved[j],
                            seeds[i * count + j], plan,
                        )
                    )

        def complete_cell(
            cell: _PendingCell,
            cell_samples: np.ndarray,
            elapsed: float,
            phases: dict[str, float],
        ) -> None:
            stats.cells_simulated += 1
            if cache is not None:
                cache.store_cell(key, cell.i, cell.j, cell_samples)
            checkpoint(cell.i, cell.j, cell_samples, elapsed, phases)
            finish(cell.i, cell.j, cell_samples, elapsed, phases)

        def dispatch_fault(cell: _PendingCell, attempt: int) -> CellFault | None:
            if fault_plan is None:
                return None
            fault = fault_plan.worker_fault(cell.i, cell.j, attempt)
            if fault is not None:
                stats.record_fault(fault.kind)
            return fault

        if effective_workers <= 1 or len(pending) <= 1:
            _run_serial(
                pending, machine, config, repetitions, stats,
                max_retries, cell_timeout_s, names,
                dispatch_fault, complete_cell,
            )
        elif pending:
            _run_pool(
                pending, machine, config, repetitions, stats,
                effective_workers, max_retries, cell_timeout_s, names,
                dispatch_fault, complete_cell,
            )
    finally:
        if campaign_journal is not None:
            campaign_journal.close()

    if cache is not None:
        stats.quarantined = cache.quarantine_count - quarantined_before
    stats.wall_seconds = time.perf_counter() - started
    return samples, stats


def _run_serial(
    pending: Sequence[_PendingCell],
    machine: CalibratedMachine,
    config: MeasurementConfig,
    repetitions: int,
    stats: CampaignStats,
    max_retries: int,
    cell_timeout_s: float | None,
    names: Sequence[str],
    dispatch_fault: Callable[[_PendingCell, int], CellFault | None],
    complete_cell: Callable,
) -> None:
    """Simulate the cold cells in-process, with the retry loop.

    An in-process cell cannot be preempted, so an injected hang simply
    runs long and a ``cell_timeout_s`` overrun is counted in the stats
    without killing the attempt.
    """
    for cell in pending:
        attempt = 0
        while True:
            fault = dispatch_fault(cell, attempt)
            cell_started = time.perf_counter()
            phases: dict[str, float] = {}
            try:
                if fault is not None:
                    fault.apply()
                cell_samples = simulate_cell(
                    machine, config, cell.event_a, cell.event_b,
                    repetitions, cell.seed_sequence,
                    plan=cell.plan, phase_seconds=phases,
                )
            except Exception as error:  # noqa: BLE001 — classified below
                if _is_retryable(error) and attempt < max_retries:
                    stats.retries += 1
                    attempt += 1
                    continue
                pair = f"{names[cell.i]}/{names[cell.j]}"
                raise CellExecutionError(
                    f"cell {pair} failed on all {attempt + 1} attempt(s): "
                    f"{error} (completed cells are journaled; rerun with "
                    "resume to continue)",
                    i=cell.i, j=cell.j, pair=pair, attempts=attempt + 1,
                ) from error
            elapsed = time.perf_counter() - cell_started
            if cell_timeout_s is not None and elapsed > cell_timeout_s:
                stats.timeouts += 1
            complete_cell(cell, cell_samples, elapsed, phases)
            break


def _run_pool(
    pending: Sequence[_PendingCell],
    machine: CalibratedMachine,
    config: MeasurementConfig,
    repetitions: int,
    stats: CampaignStats,
    effective_workers: int,
    max_retries: int,
    cell_timeout_s: float | None,
    names: Sequence[str],
    dispatch_fault: Callable[[_PendingCell, int], CellFault | None],
    complete_cell: Callable,
) -> None:
    """Fan the cold cells out across worker processes.

    Scheduling keeps at most one outstanding task per worker slot, so
    every submitted cell is actually running and its wall-clock budget
    can be measured from submission.  A cell that exceeds the budget is
    abandoned — its worker slot is written off until the worker comes
    back — and the cell is retried on a fresh slot.  Results from
    abandoned attempts are discarded even if they eventually arrive; the
    retry recomputes the identical samples from the cell's original
    seed-schedule entry.
    """
    pool_workers = min(effective_workers, len(pending))
    pool = ProcessPoolExecutor(
        max_workers=pool_workers,
        initializer=_init_worker,
        initargs=(machine, config, repetitions),
    )
    queue: deque[tuple[_PendingCell, int]] = deque(
        (cell, 0) for cell in pending
    )
    outstanding: dict = {}  # future -> (cell, submitted_monotonic, attempt)
    abandoned: set = set()
    slots = pool_workers
    clean_shutdown = False

    def fail(cell: _PendingCell, attempts: int, message: str) -> CellExecutionError:
        pair = f"{names[cell.i]}/{names[cell.j]}"
        return CellExecutionError(
            f"cell {pair} {message} (completed cells are journaled; rerun "
            "with resume to continue)",
            i=cell.i, j=cell.j, pair=pair, attempts=attempts,
        )

    try:
        while queue or outstanding:
            # Reclaim slots whose abandoned (hung) attempts finished.
            for future in [f for f in abandoned if f.done()]:
                abandoned.discard(future)
                slots += 1
            while queue and len(outstanding) < slots:
                cell, attempt = queue.popleft()
                fault = dispatch_fault(cell, attempt)
                future = pool.submit(
                    _cell_task,
                    cell.i, cell.j, cell.event_a, cell.event_b,
                    cell.seed_sequence, cell.plan, fault,
                )
                outstanding[future] = (cell, time.monotonic(), attempt)
            if not outstanding:
                # Cells remain but every worker slot is hung.
                cell, attempt = queue[0]
                raise fail(
                    cell,
                    attempt,
                    f"cannot run: all {pool_workers} worker slot(s) are "
                    f"lost to hung cells and {len(queue)} cell(s) remain",
                )
            wait_timeout = None
            if cell_timeout_s is not None:
                now = time.monotonic()
                next_deadline = min(
                    submitted + cell_timeout_s
                    for _, submitted, _ in outstanding.values()
                )
                wait_timeout = max(0.0, next_deadline - now)
            completed, _ = wait(
                set(outstanding), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            # Process successes before failures so every finished cell
            # reaches the journal even when a failure aborts the run.
            for future in sorted(completed, key=lambda f: f.exception() is not None):
                cell, _submitted, attempt = outstanding.pop(future)
                error = future.exception()
                if error is None:
                    i, j, cell_samples, elapsed, phases = future.result()
                    complete_cell(cell, cell_samples, elapsed, phases)
                elif _is_retryable(error) and attempt < max_retries:
                    stats.retries += 1
                    queue.append((cell, attempt + 1))
                else:
                    raise fail(
                        cell, attempt + 1,
                        f"failed on all {attempt + 1} attempt(s): {error}",
                    ) from error
            if cell_timeout_s is not None:
                now = time.monotonic()
                for future, (cell, submitted, attempt) in list(outstanding.items()):
                    if now - submitted < cell_timeout_s or future.done():
                        continue
                    del outstanding[future]
                    stats.timeouts += 1
                    if not future.cancel():
                        # Already running in a worker: write the slot off
                        # until the (possibly hung) attempt returns.
                        abandoned.add(future)
                        slots -= 1
                    if attempt < max_retries:
                        stats.retries += 1
                        queue.append((cell, attempt + 1))
                    else:
                        raise fail(
                            cell, attempt + 1,
                            f"exceeded the {cell_timeout_s:g} s budget on "
                            f"all {attempt + 1} attempt(s)",
                        )
        clean_shutdown = not abandoned
    finally:
        # Never block campaign teardown on a hung worker: if any attempt
        # was abandoned (or the run failed), drop the pool without
        # waiting for it.
        pool.shutdown(wait=clean_shutdown, cancel_futures=True)


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_RETRIES",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "CampaignStats",
    "ResultCache",
    "campaign_cache_key",
    "cell_seed",
    "execute_campaign",
    "simulate_cell",
    "spawn_cell_seeds",
]
