"""Campaign execution engine: parallel fan-out, deterministic seeds, caching.

The paper's case study is a large measurement fan-out — 11x11 ordered
pairs x 10 repetitions x 3 machines x 3 distances — and every cell is
independent of every other, so the engine here fans the cells of one
campaign out across worker processes (chunked by matrix row) while
keeping the results **bit-identical** to a serial run.

Determinism comes from a per-cell seed schedule: the campaign seed
expands through ``np.random.SeedSequence(seed).spawn(count * count)``
and cell ``(i, j)`` always draws its noise from child ``i * count + j``,
no matter which worker simulates it or in what order.  Serial and
parallel execution therefore consume exactly the same random streams.

The engine also maintains an on-disk result cache.  Each cell's
repetition samples are stored as an ``.npz`` file under a directory
named by a content hash of everything that determines the cell's value
(machine name and distance, the full :class:`~repro.core.savat.MeasurementConfig`,
the ordered event list, the repetition count, the campaign seed, and
the cell index).  Re-running a campaign the benchmarks have already
measured loads every cell from disk and performs zero simulations;
hit/miss counters and per-cell timings are reported through
:class:`CampaignStats` and the returned matrix metadata.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.codegen.frequency import FrequencyPlan
from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    measure_savat,
    record_phase_seconds,
    simulate_alternation_period,
)
from repro.errors import ConfigurationError
from repro.isa.events import InstructionEvent
from repro.machines.calibrated import CalibratedMachine

#: Bump whenever the cache layout or the seeding discipline changes;
#: old entries then miss instead of replaying stale numbers.
CACHE_SCHEMA_VERSION = 1

ProgressCallback = Callable[[str, str, int, int], None]


# ----------------------------------------------------------------------
# Deterministic seed schedule
# ----------------------------------------------------------------------
def spawn_cell_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """Per-cell seed schedule for a ``count x count`` campaign.

    Cell ``(i, j)`` owns entry ``i * count + j``.  The schedule is a
    pure function of ``(seed, count)``, so serial and parallel runs —
    and reruns on other machines — draw identical noise streams per
    cell regardless of execution order.
    """
    return np.random.SeedSequence(seed).spawn(count * count)


def cell_seed(seed: int, count: int, i: int, j: int) -> np.random.SeedSequence:
    """The seed-schedule entry owned by cell ``(i, j)``."""
    if not (0 <= i < count and 0 <= j < count):
        raise ConfigurationError(
            f"cell ({i}, {j}) outside a {count}x{count} campaign"
        )
    return spawn_cell_seeds(seed, count)[i * count + j]


# ----------------------------------------------------------------------
# Execution statistics
# ----------------------------------------------------------------------
@dataclass
class CampaignStats:
    """Counters and timings from one campaign execution.

    Attributes
    ----------
    cache_hits / cache_misses:
        Cells loaded from the on-disk cache vs cells that had to be
        simulated because the cache was cold or disabled-but-counted.
        Both stay zero when no cache is configured.
    cells_simulated:
        Cells that actually ran the kernel simulation (always equals
        ``cache_misses`` when a cache is in use).
    workers:
        Worker processes the fan-out used (1 means serial).
    wall_seconds:
        Wall-clock duration of the whole campaign execution.
    cell_seconds:
        Per-cell simulation time keyed by ``"A/B"`` (cache hits record
        their load time, effectively ~0).
    cell_phase_seconds:
        Per-cell pipeline breakdown keyed by ``"A/B"``: seconds spent
        in the ``prime`` / ``core_run`` / ``synthesize`` / ``analyze``
        phases (see :func:`repro.core.savat.record_phase_seconds`).
        Cache hits record no phases.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    cells_simulated: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    cell_seconds: dict[str, float] = field(default_factory=dict)
    cell_phase_seconds: dict[str, dict[str, float]] = field(default_factory=dict)

    def record_cell(
        self,
        event_a: str,
        event_b: str,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        """Record one finished cell's timing (and optional phase split)."""
        self.cell_seconds[f"{event_a}/{event_b}"] = float(elapsed_s)
        if phase_seconds:
            self.cell_phase_seconds[f"{event_a}/{event_b}"] = {
                name: float(seconds) for name, seconds in phase_seconds.items()
            }

    def phase_seconds(self) -> dict[str, float]:
        """Campaign-wide totals of the per-cell phase breakdown."""
        totals: dict[str, float] = {}
        for phases in self.cell_phase_seconds.values():
            for name, seconds in phases.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def as_metadata(self) -> dict:
        """JSON-ready summary stored in ``SavatMatrix.metadata``."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells_simulated": self.cells_simulated,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": dict(self.cell_seconds),
            "cell_phase_seconds": {
                pair: dict(phases)
                for pair, phases in self.cell_phase_seconds.items()
            },
            "phase_seconds": self.phase_seconds(),
        }


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
def _config_payload(config: MeasurementConfig) -> dict:
    """The measurement config as a stable, JSON-serializable mapping."""
    return dataclasses.asdict(config)


def campaign_cache_key(
    machine_name: str,
    distance_m: float,
    config: MeasurementConfig,
    event_names: Sequence[str],
    repetitions: int,
    seed: int,
) -> str:
    """Content hash identifying one campaign's results on disk.

    Any change to the machine, distance, measurement configuration,
    ordered event list, repetition count, or seed changes the key, so
    stale entries can never be mistaken for current ones.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "machine": machine_name,
        "distance_m": float(distance_m),
        "config": _config_payload(config),
        "events": list(event_names),
        "repetitions": int(repetitions),
        "seed": int(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Per-cell campaign results persisted under a cache directory.

    Layout: ``<cache_dir>/<campaign_key>/cell_<i>_<j>.npz`` holding the
    cell's repetition samples, plus a human-readable ``manifest.json``
    describing the campaign the key hashes.  Writes go through a
    temporary file and :func:`os.replace`, so concurrent workers (or
    concurrent campaigns) never observe half-written entries; unreadable
    or wrong-shaped entries are discarded and re-simulated.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir).expanduser()

    def campaign_dir(self, key: str) -> Path:
        """Directory holding one campaign's cells."""
        return self.cache_dir / key

    def cell_path(self, key: str, i: int, j: int) -> Path:
        """File path of one cell's samples."""
        return self.campaign_dir(key) / f"cell_{i:03d}_{j:03d}.npz"

    def load_cell(self, key: str, i: int, j: int, repetitions: int) -> np.ndarray | None:
        """Load one cell's samples, or ``None`` on a miss.

        A corrupted, truncated, or wrong-shaped file counts as a miss:
        the entry is deleted and the caller re-simulates the cell.
        """
        path = self.cell_path(key, i, j)
        try:
            with np.load(path) as data:
                samples = np.asarray(data["samples_zj"], dtype=np.float64)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 — any unreadable entry is a miss
            path.unlink(missing_ok=True)
            return None
        if samples.shape != (repetitions,) or not np.all(np.isfinite(samples)):
            path.unlink(missing_ok=True)
            return None
        return samples

    def store_cell(self, key: str, i: int, j: int, samples: np.ndarray) -> None:
        """Atomically persist one cell's samples."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=directory, prefix=f"cell_{i:03d}_{j:03d}_", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez(handle, samples_zj=np.asarray(samples, dtype=np.float64))
            os.replace(temp_name, self.cell_path(key, i, j))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def write_manifest(self, key: str, payload: dict) -> None:
        """Record what a campaign key means, for humans debugging the cache."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "manifest.json"
        if path.exists():
            return
        descriptor, temp_name = tempfile.mkstemp(
            dir=directory, prefix="manifest_", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Cell simulation (shared by the serial path and the worker processes)
# ----------------------------------------------------------------------
def simulate_cell(
    machine: CalibratedMachine,
    config: MeasurementConfig,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    repetitions: int,
    seed_sequence: np.random.SeedSequence,
    plan: FrequencyPlan | None = None,
    phase_seconds: dict[str, float] | None = None,
) -> np.ndarray:
    """Simulate one (A, B) cell: plan, trace, and all repetitions.

    As in the paper's multi-day repeats, the deterministic kernel
    simulation is shared across repetitions and only the environment
    noise is re-drawn — from this cell's private seed-schedule stream.

    ``plan`` lets the campaign executor pre-compute the frequency plan
    in the parent process (amortizing the per-event CPI probe runs over
    every cell) instead of each worker re-probing from a cold cache;
    the plan is a pure function of machine, pair, and frequency, so the
    results are identical either way.

    ``phase_seconds`` (when given) accumulates the cell's pipeline
    breakdown — prime / core_run / synthesize / analyze seconds.
    """
    rng = np.random.default_rng(seed_sequence)
    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    sink = phase_seconds if phase_seconds is not None else {}
    with record_phase_seconds(sink):
        trace, plan = simulate_alternation_period(machine, plan)
        samples = np.empty(repetitions, dtype=np.float64)
        for repetition in range(repetitions):
            samples[repetition] = measure_savat(
                machine,
                event_a,
                event_b,
                config=config,
                rng=rng,
                trace=trace,
                plan=plan,
            ).savat_zj
    return samples


_WORKER_STATE: dict = {}


def _init_worker(
    machine: CalibratedMachine, config: MeasurementConfig, repetitions: int
) -> None:
    """Stash the per-process campaign context (runs once per worker)."""
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["config"] = config
    _WORKER_STATE["repetitions"] = repetitions


def _row_task(
    row: int,
    cells: list[
        tuple[
            int,
            InstructionEvent,
            InstructionEvent,
            np.random.SeedSequence,
            FrequencyPlan,
        ]
    ],
) -> tuple[int, list[tuple[int, np.ndarray, float, dict[str, float]]]]:
    """Simulate one row's pending cells inside a worker process.

    Each cell ships its pre-computed frequency plan from the parent, so
    workers never re-run the per-event CPI probes.
    """
    machine = _WORKER_STATE["machine"]
    config = _WORKER_STATE["config"]
    repetitions = _WORKER_STATE["repetitions"]
    results: list[tuple[int, np.ndarray, float, dict[str, float]]] = []
    for j, event_a, event_b, seed_sequence, plan in cells:
        started = time.perf_counter()
        phases: dict[str, float] = {}
        samples = simulate_cell(
            machine, config, event_a, event_b, repetitions, seed_sequence,
            plan=plan, phase_seconds=phases,
        )
        results.append((j, samples, time.perf_counter() - started, phases))
    return row, results


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def execute_campaign(
    machine: CalibratedMachine,
    events: Sequence[InstructionEvent],
    config: MeasurementConfig | None = None,
    repetitions: int = 10,
    seed: int = 0,
    workers: int = 0,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> tuple[np.ndarray, CampaignStats]:
    """Measure every ordered (A, B) cell of a campaign, possibly in parallel.

    Parameters
    ----------
    machine:
        Calibrated machine (fixes the distance too).
    events:
        Resolved event objects, in matrix order.
    config:
        Measurement configuration; the paper's defaults if omitted.
    repetitions:
        Measurements per cell.
    seed:
        Campaign seed, expanded into the per-cell schedule by
        :func:`spawn_cell_seeds`.
    workers:
        Worker processes; ``0`` or ``1`` runs serially in-process.
        Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional ``(event_a, event_b, done, total)`` callback invoked as
        each cell completes (cache hits included).

    Returns
    -------
    tuple
        ``(samples, stats)`` — the ``(N, N, repetitions)`` sample array
        in zJ and the execution counters/timings.
    """
    config = config or MeasurementConfig()
    resolved = list(events)
    count = len(resolved)
    if count == 0:
        raise ConfigurationError("campaign needs at least one event")
    if repetitions < 1:
        raise ConfigurationError("repetitions must be at least 1")
    names = [event.name for event in resolved]

    effective_workers = max(int(workers), 1)
    stats = CampaignStats(workers=effective_workers)
    samples = np.zeros((count, count, repetitions))
    seeds = spawn_cell_seeds(seed, count)
    started = time.perf_counter()
    total = count * count
    done = 0

    def finish(
        i: int,
        j: int,
        cell_samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        nonlocal done
        samples[i, j] = cell_samples
        stats.record_cell(names[i], names[j], elapsed_s, phase_seconds)
        done += 1
        if progress is not None:
            progress(names[i], names[j], done, total)

    key: str | None = None
    if cache is not None:
        key = campaign_cache_key(
            machine.name, machine.distance_m, config, names, repetitions, seed
        )
        cache.write_manifest(
            key,
            {
                "schema": CACHE_SCHEMA_VERSION,
                "machine": machine.name,
                "distance_m": machine.distance_m,
                "config": _config_payload(config),
                "events": names,
                "repetitions": repetitions,
                "seed": seed,
            },
        )

    # Resolve cache hits first so the fan-out only sees the cold cells.
    pending: dict[int, list] = {}
    for i in range(count):
        for j in range(count):
            load_started = time.perf_counter()
            cached = cache.load_cell(key, i, j, repetitions) if cache is not None else None
            if cached is not None:
                stats.cache_hits += 1
                finish(i, j, cached, time.perf_counter() - load_started)
            else:
                if cache is not None:
                    stats.cache_misses += 1
                # Plan in the parent: the per-event CPI probes behind
                # _plan_pair are cached per (machine, event), so every
                # pending cell after the first reuses them, and workers
                # receive finished plans instead of each re-probing from
                # a cold cache.
                plan = _plan_pair(
                    machine, resolved[i], resolved[j], config.alternation_frequency_hz
                )
                pending.setdefault(i, []).append(
                    (j, resolved[i], resolved[j], seeds[i * count + j], plan)
                )

    rows = sorted(pending.items())
    if effective_workers <= 1 or len(rows) <= 1:
        for i, cells in rows:
            for j, event_a, event_b, seed_sequence, plan in cells:
                cell_started = time.perf_counter()
                phases: dict[str, float] = {}
                cell_samples = simulate_cell(
                    machine, config, event_a, event_b, repetitions, seed_sequence,
                    plan=plan, phase_seconds=phases,
                )
                elapsed = time.perf_counter() - cell_started
                stats.cells_simulated += 1
                if cache is not None:
                    cache.store_cell(key, i, j, cell_samples)
                finish(i, j, cell_samples, elapsed, phases)
    else:
        with ProcessPoolExecutor(
            max_workers=min(effective_workers, len(rows)),
            initializer=_init_worker,
            initargs=(machine, config, repetitions),
        ) as pool:
            futures = [pool.submit(_row_task, i, cells) for i, cells in rows]
            for future in as_completed(futures):
                i, row_results = future.result()
                for j, cell_samples, elapsed, phases in row_results:
                    stats.cells_simulated += 1
                    if cache is not None:
                        cache.store_cell(key, i, j, cell_samples)
                    finish(i, j, cell_samples, elapsed, phases)

    stats.wall_seconds = time.perf_counter() - started
    return samples, stats


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CampaignStats",
    "ResultCache",
    "campaign_cache_key",
    "cell_seed",
    "execute_campaign",
    "simulate_cell",
    "spawn_cell_seeds",
]
