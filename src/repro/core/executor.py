"""Campaign execution engine: parallel fan-out, determinism, fault tolerance.

The paper's case study is a large measurement fan-out — 11x11 ordered
pairs x 10 repetitions x 3 machines x 3 distances — and every cell is
independent of every other, so the engine here fans the cells of one
campaign out across worker processes while keeping the results
**bit-identical** to a serial run.

Determinism comes from a per-cell seed schedule: the campaign seed
expands through ``np.random.SeedSequence(seed).spawn(count * count)``
and cell ``(i, j)`` always draws its noise from child ``i * count + j``,
no matter which worker simulates it or in what order.  Serial and
parallel execution therefore consume exactly the same random streams —
and so does a **retried** cell, because a retry replays the cell's
original seed-schedule entry, making a campaign with N transient faults
bit-identical to a fault-free run.

A campaign that runs unattended for hours must survive partial failure,
so the executor layers four recovery mechanisms over the fan-out:

* **Per-cell retry** — a worker exception consumes one of the cell's
  ``max_retries`` attempts and the cell is re-dispatched with its
  original seed; only exhausting the budget (or a non-retryable
  configuration error) aborts the campaign.
* **Per-cell wall-clock timeouts** — with ``cell_timeout_s`` set, an
  attempt that exceeds its budget counts as a timeout, its result is
  discarded, and the cell is retried from its original seed (or the
  campaign fails once the budget is exhausted).  Worker processes are
  preempted — the hung attempt is abandoned and its slot written off
  until the worker comes back — while a serial in-process attempt
  cannot be interrupted and is only judged after it returns; the
  counters, journal contents, and final samples are identical in both
  modes.
* **Cache quarantine** — a corrupted, truncated, or wrong-shaped cache
  entry is moved to ``<cache_dir>/quarantine/`` (never silently
  deleted) and the cell is recomputed.
* **Campaign journaling** — every completed cell is streamed to an
  append-only JSONL journal, so an interrupted campaign can be resumed
  from the last completed cell instead of from zero, including after a
  fatal error (completed cells are journaled before the re-raise).

Fault injection for all of the above lives in
:mod:`repro.core.faults`: a :class:`~repro.core.faults.FaultPlan`
deterministically raises, hangs, or corrupts at chosen cells, which is
how the recovery paths are tested end to end.

The engine also maintains an on-disk result cache.  Each cell's
repetition samples are stored as an ``.npz`` file under a directory
named by a content hash of everything that determines the cell's value
(machine name and distance, the full :class:`~repro.core.savat.MeasurementConfig`,
the ordered event list, the repetition count, the campaign seed, and
the cell index).  Re-running a campaign the benchmarks have already
measured loads every cell from disk and performs zero simulations;
hit/miss counters, per-cell timings, and the fault-tolerance counters
are reported through :class:`CampaignStats` and the returned matrix
metadata.

Below the per-campaign result cache sits the **cross-campaign trace
cache** (:mod:`repro.core.trace_cache`): the expensive ``prime`` +
``core_run`` trace production inside :func:`simulate_cell` is keyed by
(machine spec, ordered pair, frequency plan) — not by distance, seed,
repetitions, or method — so campaigns that share kernels (a distance
study, a re-seeded rerun, a ``--method full`` re-analysis) skip the
simulation and only redo the cheap measurement stage.  Pool workers
receive the cache's *spec* (its disk path and LRU bound, never trace
payloads) and keep a warm per-process LRU; with a
:class:`WorkerPool` shared across campaigns the LRU survives from one
campaign to the next, which is what :func:`repro.core.study.run_study`
builds on.  Per-cell counter deltas travel back in the span fragments
and surface as ``savat_trace_cache_*`` metrics and the
``execution["trace_cache"]`` metadata.

All instrumentation flows through :mod:`repro.obs`: the counters live
in a :class:`~repro.obs.metrics.MetricsRegistry` (``CampaignStats`` is
a typed view over it), every cache/journal/fault/timeout event and
every simulation attempt is reported to a
:class:`~repro.obs.CampaignObservability` bundle (JSONL trace, live
progress line, Prometheus export), and workers stay trace-silent —
they return span fragments alongside their results and the parent
process merges them, so the trace file needs no cross-process locking.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.codegen.frequency import FrequencyPlan
from repro.core.diskcache import atomic_write as _atomic_write
from repro.core.diskcache import quarantine_entry
from repro.core.faults import CORRUPT_PAYLOAD, CellFault, FaultPlan
from repro.core.savat import (
    MeasurementConfig,
    _plan_pair,
    estimate_cell_cost,
    measure_savat_samples,
    record_phase_seconds,
)
from repro.core.shm import SampleArena, resolve_shm
from repro.core.trace_cache import (
    TraceCache,
    get_process_trace_cache,
    produce_cell_trace,
)
from repro.errors import CellExecutionError, ConfigurationError, JournalError
from repro.isa.events import InstructionEvent
from repro.machines.calibrated import CalibratedMachine
from repro.obs import CampaignObservability
from repro.obs.metrics import MetricsRegistry
from repro.uarch.fastpath import fast_path_enabled

#: Bump whenever the cache layout or the seeding discipline changes;
#: old entries then miss instead of replaying stale numbers.
CACHE_SCHEMA_VERSION = 1

#: Bump whenever the journal line format changes; a resume against a
#: journal written by another version is rejected, never reinterpreted.
JOURNAL_VERSION = 1

#: Default per-cell retry budget for transient worker faults.
DEFAULT_MAX_RETRIES = 2

#: Cell-submission orders the executor supports.  ``"rowmajor"`` is the
#: historical (i, j) order; ``"cost"`` submits the cells expected to
#: run longest first, shrinking the pool's tail latency.  Samples are
#: bit-identical across schedules: every cell replays its own
#: seed-schedule entry regardless of submission order.
SCHEDULES = ("rowmajor", "cost")

ProgressCallback = Callable[[str, str, int, int], None]


def _validate_workers(workers: int) -> int:
    """Validate a ``workers`` count (``0`` and ``1`` both mean serial).

    A bad value used to surface as a pool traceback deep in
    ``concurrent.futures`` (or silently run serial, for negatives);
    rejecting it here gives the caller one actionable line instead.
    """
    if isinstance(workers, bool) or not isinstance(workers, (int, np.integer)):
        raise ConfigurationError(
            f"workers must be a non-negative integer (0 means serial); "
            f"got {workers!r}"
        )
    if workers < 0:
        raise ConfigurationError(
            f"workers must be a non-negative integer (0 means serial); "
            f"got {workers}"
        )
    return int(workers)


def _validate_schedule(schedule: str) -> str:
    """Validate a ``schedule`` name against :data:`SCHEDULES`."""
    if schedule not in SCHEDULES:
        raise ConfigurationError(
            f"unknown schedule {schedule!r}; options: {SCHEDULES}"
        )
    return schedule


# ----------------------------------------------------------------------
# Deterministic seed schedule
# ----------------------------------------------------------------------
def spawn_cell_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """Per-cell seed schedule for a ``count x count`` campaign.

    Cell ``(i, j)`` owns entry ``i * count + j``.  The schedule is a
    pure function of ``(seed, count)``, so serial and parallel runs —
    and reruns on other machines — draw identical noise streams per
    cell regardless of execution order.
    """
    return np.random.SeedSequence(seed).spawn(count * count)


def cell_seed(seed: int, count: int, i: int, j: int) -> np.random.SeedSequence:
    """The seed-schedule entry owned by cell ``(i, j)``."""
    if not (0 <= i < count and 0 <= j < count):
        raise ConfigurationError(
            f"cell ({i}, {j}) outside a {count}x{count} campaign"
        )
    return spawn_cell_seeds(seed, count)[i * count + j]


# ----------------------------------------------------------------------
# Execution statistics (a view over the metrics registry)
# ----------------------------------------------------------------------
class CampaignStats:
    """Counters and timings from one campaign execution.

    Every number lives in a
    :class:`~repro.obs.metrics.MetricsRegistry` — the same registry the
    ``--metrics-out`` Prometheus export and the JSONL trace run
    alongside — and this class is a typed view over it: the attribute
    properties read registry values, the ``record_*`` methods increment
    them, and :meth:`as_metadata` renders the registry into the exact
    ``matrix.metadata["execution"]`` mapping previous releases produced
    from loose instance counters.  There is therefore a single source
    of truth; the metadata and the metrics export cannot drift apart.

    Readable properties
    -------------------
    cache_hits / cache_misses:
        Cells loaded from the on-disk cache vs cells that had to be
        simulated because the cache was cold or disabled-but-counted.
        Both stay zero when no cache is configured.
    cells_simulated:
        Cells that actually ran the kernel simulation (always equals
        ``cache_misses`` when a cache is in use and nothing is resumed).
    workers:
        Worker processes the fan-out used (1 means serial).
    wall_seconds:
        Wall-clock duration of the whole campaign execution.
    retries:
        Cell attempts that were re-dispatched after a transient worker
        fault or timeout; each retry replays the cell's original seed.
    timeouts:
        Cell attempts that exceeded the ``cell_timeout_s`` budget.
    quarantined:
        Corrupted or truncated cache entries moved to the cache's
        quarantine directory (and recomputed) during this execution.
    resumed:
        Cells restored from the campaign journal instead of being
        simulated or loaded from the cache.
    trace_cache:
        Kernel-trace cache traffic this campaign caused —
        ``memory_hits`` / ``disk_hits`` / ``misses`` / ``stores`` /
        ``quarantined`` (see :mod:`repro.core.trace_cache`); all zero
        when the trace cache is disabled.
    faults_injected:
        Faults fired by an injected :class:`~repro.core.faults.FaultPlan`,
        keyed by kind; empty for production runs.
    cell_seconds:
        Per-cell simulation time keyed by ``"A/B"`` (cache hits record
        their load time, effectively ~0).
    cell_phase_seconds:
        Per-cell pipeline breakdown keyed by ``"A/B"``: seconds spent
        in the ``prime`` / ``core_run`` / ``synthesize`` / ``analyze``
        phases (see :func:`repro.core.savat.record_phase_seconds`).
        Cache hits record no phases.
    """

    def __init__(
        self, workers: int = 1, registry: MetricsRegistry | None = None
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._cache_hits = r.counter(
            "savat_cache_hits_total", "Cells served from the on-disk cache."
        )
        self._cache_misses = r.counter(
            "savat_cache_misses_total",
            "Cells absent from (or quarantined out of) the cache.",
        )
        self._cells_simulated = r.counter(
            "savat_cells_simulated_total", "Cells that ran the kernel simulation."
        )
        self._retries = r.counter(
            "savat_cell_retries_total",
            "Cell attempts re-dispatched after a fault or timeout.",
        )
        self._timeouts = r.counter(
            "savat_cell_timeouts_total",
            "Cell attempts that exceeded the wall-clock budget.",
        )
        self._quarantined = r.counter(
            "savat_cache_quarantined_total",
            "Corrupt cache entries moved to quarantine this execution.",
        )
        self._trace_hits = r.counter(
            "savat_trace_cache_hits_total",
            "Kernel traces served from the cross-campaign trace cache, "
            "by tier.",
            labelnames=("tier",),
        )
        # Materialize every tier up front so the Prometheus export (and
        # repro.obs.check's exact comparison) sees 0 samples even for a
        # campaign that never hit a given tier.
        self._trace_hits.labels(tier="memory")
        self._trace_hits.labels(tier="shm")
        self._trace_hits.labels(tier="disk")
        self._trace_misses = r.counter(
            "savat_trace_cache_misses_total",
            "Kernel traces the trace cache could not serve.",
        )
        self._trace_stores = r.counter(
            "savat_trace_cache_stores_total",
            "Kernel traces newly stored into the trace cache.",
        )
        self._trace_quarantined = r.counter(
            "savat_trace_cache_quarantined_total",
            "Corrupt trace-cache entries moved to quarantine.",
        )
        self._resumed = r.counter(
            "savat_cells_resumed_total",
            "Cells restored from the campaign journal.",
        )
        self._faults = r.counter(
            "savat_faults_injected_total",
            "Injected faults fired, by kind (testing only).",
            labelnames=("kind",),
        )
        self._worker_cells = r.counter(
            "savat_cells_by_worker_total",
            "Cells simulated per worker process.",
            labelnames=("worker",),
        )
        self._workers = r.gauge(
            "savat_workers", "Worker processes used by the fan-out."
        )
        self._workers.set(workers)
        self._wall = r.gauge(
            "savat_wall_seconds", "Wall-clock duration of the campaign."
        )
        self._fast_path = r.gauge(
            "savat_fast_path_enabled",
            "Whether the vectorized fast path is active (1) or the scalar "
            "reference path (0).",
        )
        self._fast_path.set(1.0 if fast_path_enabled() else 0.0)
        self._cell_seconds = r.gauge(
            "savat_cell_seconds",
            "Wall-clock seconds of each completed cell.",
            labelnames=("pair",),
        )
        self._cell_phase = r.gauge(
            "savat_cell_phase_seconds",
            "Per-cell pipeline phase breakdown in seconds.",
            labelnames=("pair", "phase"),
        )
        self._phase_totals = r.counter(
            "savat_phase_seconds_total",
            "Campaign-wide seconds per pipeline phase.",
            labelnames=("phase",),
        )
        self._durations = r.histogram(
            "savat_cell_duration_seconds",
            "Distribution of per-cell simulation wall times.",
        )
        self._ipc_sample_bytes = r.counter(
            "savat_ipc_sample_bytes_total",
            "Sample payload bytes pickled across the worker boundary "
            "(zero-copy cells travel through the shared-memory arena "
            "instead).",
        )
        self._ipc_saved = r.counter(
            "savat_ipc_bytes_saved_total",
            "Sample and strip bytes that crossed through the "
            "shared-memory arena instead of being pickled.",
        )
        self._shm_enabled = r.gauge(
            "savat_shm_enabled",
            "Whether the shared-memory data plane was active (1) for "
            "this campaign.",
        )
        self._shm_segments = r.gauge(
            "savat_shm_segments",
            "Shared-memory segments the campaign's data plane used "
            "(sample arena plus trace-cache shm entries).",
        )
        self._sched_tail = r.gauge(
            "savat_sched_tail_seconds",
            "Pool drain tail: seconds between the last cell submission "
            "and the last completion.",
        )
        #: Submission order used for this campaign's cold cells.
        self.schedule_policy = "rowmajor"

    # -- readable counter/gauge views ----------------------------------
    @property
    def cache_hits(self) -> int:
        """Cells served from the on-disk cache."""
        return int(self._cache_hits.value())

    @property
    def cache_misses(self) -> int:
        """Cells absent from (or quarantined out of) the cache."""
        return int(self._cache_misses.value())

    @property
    def cells_simulated(self) -> int:
        """Cells that ran the kernel simulation."""
        return int(self._cells_simulated.value())

    @property
    def retries(self) -> int:
        """Cell attempts re-dispatched after a fault or timeout."""
        return int(self._retries.value())

    @property
    def timeouts(self) -> int:
        """Cell attempts that exceeded the wall-clock budget."""
        return int(self._timeouts.value())

    @property
    def quarantined(self) -> int:
        """Corrupt cache entries quarantined during this execution."""
        return int(self._quarantined.value())

    @property
    def resumed(self) -> int:
        """Cells restored from the campaign journal."""
        return int(self._resumed.value())

    @property
    def trace_cache(self) -> dict[str, int]:
        """Trace-cache traffic this campaign caused, by counter name."""
        return {
            "memory_hits": int(self._trace_hits.labels(tier="memory").get()),
            "shm_hits": int(self._trace_hits.labels(tier="shm").get()),
            "disk_hits": int(self._trace_hits.labels(tier="disk").get()),
            "misses": int(self._trace_misses.value()),
            "stores": int(self._trace_stores.value()),
            "quarantined": int(self._trace_quarantined.value()),
        }

    @property
    def workers(self) -> int:
        """Worker processes the fan-out used (1 means serial)."""
        return int(self._workers.value())

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration of the whole campaign execution."""
        return self._wall.value()

    @wall_seconds.setter
    def wall_seconds(self, seconds: float) -> None:
        self._wall.set(float(seconds))

    @property
    def ipc_sample_bytes(self) -> int:
        """Sample payload bytes pickled across the worker boundary."""
        return int(self._ipc_sample_bytes.value())

    @property
    def ipc_bytes_saved(self) -> int:
        """Sample/strip bytes that traveled via shared memory instead."""
        return int(self._ipc_saved.value())

    @property
    def shm_enabled(self) -> bool:
        """Whether the shared-memory data plane was active."""
        return bool(self._shm_enabled.value())

    @property
    def shm_segments(self) -> int:
        """Shared-memory segments the campaign's data plane used."""
        return int(self._shm_segments.value())

    @property
    def sched_tail_seconds(self) -> float:
        """Seconds between the last submission and the last completion."""
        return float(self._sched_tail.value())

    @property
    def faults_injected(self) -> dict[str, int]:
        """Injected fault firings by kind (insertion-ordered)."""
        return {
            labels["kind"]: int(child.get())
            for labels, child in self._faults.series()
        }

    @property
    def cell_seconds(self) -> dict[str, float]:
        """Per-cell wall seconds keyed by ``"A/B"`` (completion order)."""
        return {
            labels["pair"]: child.get()
            for labels, child in self._cell_seconds.series()
        }

    @property
    def cell_phase_seconds(self) -> dict[str, dict[str, float]]:
        """Per-cell phase breakdown keyed by ``"A/B"`` then phase name."""
        nested: dict[str, dict[str, float]] = {}
        for labels, child in self._cell_phase.series():
            nested.setdefault(labels["pair"], {})[labels["phase"]] = child.get()
        return nested

    # -- mutators used by the executor ---------------------------------
    def record_cache_hit(self) -> None:
        """Count one cell served from the cache."""
        self._cache_hits.inc()

    def record_cache_miss(self) -> None:
        """Count one cell the cache could not serve."""
        self._cache_misses.inc()

    def record_simulated(self, worker_pid: int | None = None) -> None:
        """Count one simulated cell (attributed to a worker when known)."""
        self._cells_simulated.inc()
        if worker_pid is not None:
            self._worker_cells.labels(worker=str(worker_pid)).inc()

    def record_retry(self) -> None:
        """Count one re-dispatched cell attempt."""
        self._retries.inc()

    def record_timeout(self) -> None:
        """Count one attempt that exceeded the wall-clock budget."""
        self._timeouts.inc()

    def record_quarantined(self, count: int = 1) -> None:
        """Count cache entries moved to quarantine."""
        self._quarantined.inc(count)

    def record_trace_cache(self, delta: dict[str, int]) -> None:
        """Merge one cell's trace-cache counter delta.

        ``delta`` is a :meth:`repro.core.trace_cache.TraceCache.counters`
        difference — taken around the cell either in-process (serial) or
        inside the worker and shipped back in the span fragment.
        """
        if delta.get("memory_hits"):
            self._trace_hits.labels(tier="memory").inc(delta["memory_hits"])
        if delta.get("shm_hits"):
            self._trace_hits.labels(tier="shm").inc(delta["shm_hits"])
        if delta.get("disk_hits"):
            self._trace_hits.labels(tier="disk").inc(delta["disk_hits"])
        if delta.get("misses"):
            self._trace_misses.inc(delta["misses"])
        if delta.get("stores"):
            self._trace_stores.inc(delta["stores"])
        if delta.get("quarantined"):
            self._trace_quarantined.inc(delta["quarantined"])

    def record_ipc(self, sample_bytes: int = 0, saved_bytes: int = 0) -> None:
        """Account one result's transport: pickled vs shared-memory bytes."""
        if sample_bytes:
            self._ipc_sample_bytes.inc(sample_bytes)
        if saved_bytes:
            self._ipc_saved.inc(saved_bytes)

    def record_shm(self, enabled: bool, segments: int = 0) -> None:
        """Record the data plane's state for this campaign."""
        self._shm_enabled.set(1.0 if enabled else 0.0)
        self._shm_segments.set(int(segments))

    def record_sched_tail(self, seconds: float) -> None:
        """Record the pool drain tail of this campaign's fan-out."""
        self._sched_tail.set(float(seconds))

    def record_resumed(self) -> None:
        """Count one cell restored from the journal."""
        self._resumed.inc()

    def record_fault(self, kind: str) -> None:
        """Count one injected fault firing."""
        self._faults.labels(kind=kind).inc()

    def record_cell(
        self,
        event_a: str,
        event_b: str,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        """Record one finished cell's timing (and optional phase split)."""
        pair = f"{event_a}/{event_b}"
        self._cell_seconds.labels(pair=pair).set(float(elapsed_s))
        self._durations.observe(float(elapsed_s))
        if phase_seconds:
            for name, seconds in phase_seconds.items():
                self._cell_phase.labels(pair=pair, phase=name).set(float(seconds))
                self._phase_totals.labels(phase=name).inc(float(seconds))

    def phase_seconds(self) -> dict[str, float]:
        """Campaign-wide totals of the per-cell phase breakdown."""
        return {
            labels["phase"]: child.get()
            for labels, child in self._phase_totals.series()
        }

    def as_metadata(self) -> dict:
        """JSON-ready summary stored in ``SavatMatrix.metadata``.

        Generated entirely from the metrics registry, preserving the
        exact key set and value types earlier releases produced.
        """
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells_simulated": self.cells_simulated,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "resumed": self.resumed,
            "trace_cache": dict(self.trace_cache),
            "ipc": {
                "sample_bytes": self.ipc_sample_bytes,
                "bytes_saved": self.ipc_bytes_saved,
            },
            "shm": {
                "enabled": self.shm_enabled,
                "segments": self.shm_segments,
            },
            "scheduling": {
                "policy": self.schedule_policy,
                "tail_seconds": self.sched_tail_seconds,
            },
            "faults_injected": dict(self.faults_injected),
            "cell_seconds": dict(self.cell_seconds),
            "cell_phase_seconds": {
                pair: dict(phases)
                for pair, phases in self.cell_phase_seconds.items()
            },
            "phase_seconds": self.phase_seconds(),
        }


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
def _config_payload(config: MeasurementConfig) -> dict:
    """The measurement config as a stable, JSON-serializable mapping."""
    return dataclasses.asdict(config)


def campaign_cache_key(
    machine_name: str,
    distance_m: float,
    config: MeasurementConfig,
    event_names: Sequence[str],
    repetitions: int,
    seed: int,
) -> str:
    """Content hash identifying one campaign's results on disk.

    Any change to the machine, distance, measurement configuration,
    ordered event list, repetition count, or seed changes the key, so
    stale entries can never be mistaken for current ones.  The same key
    identifies the campaign's journal, so a resume against results from
    a different campaign is rejected instead of replayed.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "machine": machine_name,
        "distance_m": float(distance_m),
        "config": _config_payload(config),
        "events": list(event_names),
        "repetitions": int(repetitions),
        "seed": int(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Per-cell campaign results persisted under a cache directory.

    Layout: ``<cache_dir>/<campaign_key>/cell_<i>_<j>.npz`` holding the
    cell's repetition samples, plus a human-readable ``manifest.json``
    describing the campaign the key hashes.  Writes go through a
    temporary file, ``fsync``, and :func:`os.replace`, so concurrent
    workers (or a worker killed mid-write) never leave a truncated
    entry under a live name.

    Unreadable, truncated, or wrong-shaped entries are **quarantined**:
    moved to ``<cache_dir>/quarantine/<campaign_key>_<name>`` for post
    mortem inspection — never silently deleted — and the cell is
    re-simulated.  Quarantine moves are counted on ``quarantine_count``
    and listed in ``quarantined_paths``.

    Counter semantics (pinned by the executor-cache tests): every
    :meth:`load_cell` call increments exactly one of ``hits`` or
    ``misses``.  A quarantined entry is a **miss** — it increments
    ``quarantine_count`` and ``misses`` exactly once each and never
    ``hits`` — identically in serial and pool campaigns (the cache is
    only ever consulted by the parent process).
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.hits = 0
        self.misses = 0
        self.quarantine_count = 0
        self.quarantined_paths: list[Path] = []

    def begin_execution(self) -> None:
        """Zero the per-execution counters (cached entries are kept).

        :func:`execute_campaign` calls this on entry, so a cache object
        shared across the campaigns of a study reports each campaign's
        own hits/misses/quarantines instead of double-counting the
        previous campaigns' traffic into the next campaign's metadata.
        """
        self.hits = 0
        self.misses = 0
        self.quarantine_count = 0
        self.quarantined_paths = []

    def campaign_dir(self, key: str) -> Path:
        """Directory holding one campaign's cells."""
        return self.cache_dir / key

    def cell_path(self, key: str, i: int, j: int) -> Path:
        """File path of one cell's samples."""
        return self.campaign_dir(key) / f"cell_{i:03d}_{j:03d}.npz"

    def quarantine_dir(self) -> Path:
        """Directory corrupt entries are moved to (shared by campaigns)."""
        return self.cache_dir / "quarantine"

    def quarantine(self, key: str, path: Path) -> Path | None:
        """Move a bad cache entry into the quarantine directory.

        The entry keeps its campaign key as a filename prefix, and an
        existing quarantined file of the same name is never overwritten
        (a numeric suffix is appended instead), so repeated corruption
        of the same cell stays individually inspectable.
        """
        target = quarantine_entry(self.quarantine_dir(), key, path)
        if target is None:
            return None
        self.quarantine_count += 1
        self.quarantined_paths.append(target)
        return target

    def load_cell(self, key: str, i: int, j: int, repetitions: int) -> np.ndarray | None:
        """Load one cell's samples, or ``None`` on a miss.

        A corrupted, truncated, or wrong-shaped file counts as a miss:
        the entry is quarantined and the caller re-simulates the cell.
        Each call increments exactly one of ``hits``/``misses``; a
        quarantined entry therefore counts one ``misses`` and one
        ``quarantine_count`` increment, and never touches ``hits``.
        """
        path = self.cell_path(key, i, j)
        try:
            with np.load(path) as data:
                samples = np.asarray(data["samples_zj"], dtype=np.float64)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 — any unreadable entry is a miss
            self.quarantine(key, path)
            self.misses += 1
            return None
        if samples.shape != (repetitions,) or not np.all(np.isfinite(samples)):
            self.quarantine(key, path)
            self.misses += 1
            return None
        self.hits += 1
        return samples

    def store_cell(self, key: str, i: int, j: int, samples: np.ndarray) -> None:
        """Atomically persist one cell's samples."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        payload = np.asarray(samples, dtype=np.float64)
        _atomic_write(
            directory,
            self.cell_path(key, i, j),
            lambda handle: np.savez(handle, samples_zj=payload),
        )

    def write_manifest(self, key: str, payload: dict) -> None:
        """Record what a campaign key means, for humans debugging the cache."""
        directory = self.campaign_dir(key)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "manifest.json"
        if path.exists():
            return
        _atomic_write(
            directory,
            path,
            lambda handle: handle.write(
                json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
            ),
        )

    # -- recorded per-pair costs (cost-aware scheduling) ----------------
    def costs_path(self) -> Path:
        """Per-pair seconds recorded across campaigns (advisory data).

        Deliberately keyed by pair at the cache root, not under one
        campaign key: a campaign at a new distance or seed shares no
        result cells with its predecessors but runs the same kernels,
        so their recorded costs are exactly what its scheduler needs.
        """
        return self.cache_dir / "costs.json"

    def load_cost_history(self) -> dict[str, float]:
        """Recorded per-pair simulation seconds (empty when absent).

        Corrupt or implausible entries are dropped rather than trusted:
        the history only orders cell submission, so the worst a bad
        file could do — and is not allowed to — is crash a campaign.
        """
        try:
            payload = json.loads(self.costs_path().read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        history: dict[str, float] = {}
        for pair, seconds in payload.items():
            try:
                value = float(seconds)
            except (TypeError, ValueError):
                continue
            if np.isfinite(value) and value > 0:
                history[str(pair)] = value
        return history

    def store_cost_history(self, cell_seconds: dict[str, float]) -> None:
        """Merge freshly measured per-pair seconds into the history.

        Repeat observations are averaged into the previous estimate, so
        the history tracks the machine it runs on without being whipped
        around by one noisy campaign.
        """
        history = self.load_cost_history()
        for pair, seconds in cell_seconds.items():
            value = float(seconds)
            if not np.isfinite(value) or value <= 0:
                continue
            previous = history.get(pair)
            history[pair] = (
                value if previous is None else 0.5 * (previous + value)
            )
        if not history:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.cache_dir,
            self.costs_path(),
            lambda handle: handle.write(
                json.dumps(history, indent=2, sort_keys=True).encode("utf-8")
            ),
        )


# ----------------------------------------------------------------------
# Campaign journal (checkpoint / resume)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _JournalEntry:
    """One completed cell restored from a journal."""

    samples: np.ndarray
    elapsed_s: float
    phase_seconds: dict[str, float]


class CampaignJournal:
    """Append-only JSONL checkpoint of a campaign's completed cells.

    The first line is a header binding the journal to one campaign (via
    :data:`JOURNAL_VERSION` and the campaign's content-hash key); every
    further line records one completed cell's samples at full float64
    precision (``repr`` round-trip, so a resumed cell is bit-identical
    to the original).  Cells are flushed and fsynced as they complete,
    so a campaign killed at any instant loses at most the cell that was
    in flight — a torn trailing line is tolerated and recomputed.

    A resume against a journal whose version or campaign key does not
    match is rejected with :class:`~repro.errors.JournalError` rather
    than replayed.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path).expanduser()
        self._handle = None

    # ------------------------------------------------------------------
    def start(self, header: dict, resume: bool) -> dict[tuple[int, int], _JournalEntry]:
        """Open the journal and return already-completed cells.

        With ``resume`` false (or no journal file yet), a fresh journal
        is written with the given header and no cells are restored.
        With ``resume`` true, the existing journal is validated against
        the header and its completed cells are returned; new cells are
        appended after them.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        entries: dict[tuple[int, int], _JournalEntry] = {}
        if resume and self.path.exists():
            entries = self._load(header)
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._append_line({"kind": "header", **header})
        return entries

    def _load(self, header: dict) -> dict[tuple[int, int], _JournalEntry]:
        repetitions = int(header["repetitions"])
        entries: dict[tuple[int, int], _JournalEntry] = {}
        with open(self.path, encoding="utf-8") as handle:
            first = handle.readline()
            try:
                recorded = json.loads(first)
            except json.JSONDecodeError as error:
                raise JournalError(
                    f"journal {self.path} has an unreadable header; refusing "
                    "to resume (delete or point --journal elsewhere)"
                ) from error
            if recorded.get("kind") != "header":
                raise JournalError(
                    f"journal {self.path} does not start with a header line"
                )
            if recorded.get("journal_version") != header["journal_version"]:
                raise JournalError(
                    f"journal {self.path} has version "
                    f"{recorded.get('journal_version')!r} but this executor "
                    f"writes version {header['journal_version']}; refusing "
                    "to reinterpret it"
                )
            if recorded.get("campaign_key") != header["campaign_key"]:
                raise JournalError(
                    f"journal {self.path} belongs to a different campaign "
                    f"(key {recorded.get('campaign_key')!r}, expected "
                    f"{header['campaign_key']!r}); machine, distance, config, "
                    "events, repetitions, and seed must all match to resume"
                )
            for line in handle:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a killed campaign: the
                    # in-flight cell is simply recomputed.
                    continue
                if record.get("kind") != "cell":
                    continue
                try:
                    i, j = int(record["i"]), int(record["j"])
                    samples = np.asarray(record["samples_zj"], dtype=np.float64)
                except (KeyError, TypeError, ValueError):
                    continue
                if samples.shape != (repetitions,) or not np.all(np.isfinite(samples)):
                    continue
                entries[(i, j)] = _JournalEntry(
                    samples=samples,
                    elapsed_s=float(record.get("elapsed_s", 0.0)),
                    phase_seconds={
                        name: float(seconds)
                        for name, seconds in (record.get("phase_seconds") or {}).items()
                    },
                )
        return entries

    # ------------------------------------------------------------------
    def append_cell(
        self,
        i: int,
        j: int,
        samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None,
    ) -> None:
        """Stream one completed cell to disk (flushed and fsynced)."""
        self._append_line(
            {
                "kind": "cell",
                "i": int(i),
                "j": int(j),
                "samples_zj": [float(value) for value in np.asarray(samples)],
                "elapsed_s": float(elapsed_s),
                "phase_seconds": {
                    name: float(seconds)
                    for name, seconds in (phase_seconds or {}).items()
                },
            }
        )

    def _append_line(self, record: dict) -> None:
        if self._handle is None:
            raise JournalError("journal is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Cell simulation (shared by the serial path and the worker processes)
# ----------------------------------------------------------------------
def simulate_cell(
    machine: CalibratedMachine,
    config: MeasurementConfig,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    repetitions: int,
    seed_sequence: np.random.SeedSequence,
    plan: FrequencyPlan | None = None,
    phase_seconds: dict[str, float] | None = None,
    trace_cache: TraceCache | None = None,
) -> np.ndarray:
    """Simulate one (A, B) cell: plan, trace, and all repetitions.

    As in the paper's multi-day repeats, the deterministic kernel
    simulation is shared across repetitions and only the environment
    noise is re-drawn — from this cell's private seed-schedule stream.

    The cell splits into two stages.  **Trace production** (the
    ``prime`` + ``core_run`` phases) is a pure function of the machine
    spec, the pair, and the plan, and routes through
    :func:`repro.core.trace_cache.produce_cell_trace`: with a
    ``trace_cache``, a repeat of the same kernel skips both phases and
    serves the identical trace from the cache.  **Measurement** (the
    ``synthesize`` / ``analyze`` phases) depends on distance, seed,
    repetitions, and method, and always runs — which is why samples are
    bit-identical with the cache on or off.

    ``plan`` lets the campaign executor pre-compute the frequency plan
    in the parent process (amortizing the per-event CPI probe runs over
    every cell) instead of each worker re-probing from a cold cache;
    the plan is a pure function of machine, pair, and frequency, so the
    results are identical either way.

    ``phase_seconds`` (when given) accumulates the cell's pipeline
    breakdown — prime / core_run / synthesize / analyze seconds.  On a
    trace-cache hit the prime/core_run phases never run, so they are
    simply absent.
    """
    rng = np.random.default_rng(seed_sequence)
    if plan is None:
        plan = _plan_pair(machine, event_a, event_b, config.alternation_frequency_hz)
    sink = phase_seconds if phase_seconds is not None else {}
    with record_phase_seconds(sink):
        trace, plan = produce_cell_trace(
            machine, event_a, event_b, plan, cache=trace_cache
        )
        samples = measure_savat_samples(
            machine,
            event_a,
            event_b,
            config=config,
            rng=rng,
            trace=trace,
            plan=plan,
            repetitions=repetitions,
        )
    return samples


#: The worker's persistent trace cache (module-level, so it survives
#: across every campaign executed over the same pool) and the spec it
#: was built from.
_WORKER_TRACE_CACHE: TraceCache | None = None
_WORKER_TRACE_CACHE_SPEC: dict | None = None


def _worker_trace_cache(spec: dict | None) -> TraceCache | None:
    """The per-process trace cache matching ``spec`` (memoized).

    The parent ships the cache *spec* — its disk-tier path and LRU
    bound, never trace payloads — and each worker rebuilds its own
    :class:`~repro.core.trace_cache.TraceCache` over the shared disk
    tier.  The cache is keyed by the spec, so a long-lived pool keeps
    its warm LRU across campaigns that share a cache and transparently
    rebuilds when a campaign arrives with a different one.
    """
    global _WORKER_TRACE_CACHE, _WORKER_TRACE_CACHE_SPEC
    if spec is None:
        return None
    if _WORKER_TRACE_CACHE is None or _WORKER_TRACE_CACHE_SPEC != spec:
        _WORKER_TRACE_CACHE = TraceCache.from_spec(spec)
        _WORKER_TRACE_CACHE_SPEC = dict(spec)
    return _WORKER_TRACE_CACHE


def _init_worker(trace_cache_spec: dict | None = None) -> None:
    """Build the worker's persistent trace cache (runs once per worker)."""
    _worker_trace_cache(trace_cache_spec)


#: The worker's attachment to the current campaign's sample arena,
#: memoized by spec exactly like the trace cache: a long-lived pool
#: maps each campaign's arena once per worker, not once per cell.
_WORKER_ARENA: SampleArena | None = None
_WORKER_ARENA_SPEC: dict | None = None


def _worker_arena(spec: dict | None) -> SampleArena | None:
    """The worker's mapping of the arena named by ``spec`` (memoized)."""
    global _WORKER_ARENA, _WORKER_ARENA_SPEC
    if spec is None:
        return None
    if _WORKER_ARENA is None or _WORKER_ARENA_SPEC != spec:
        if _WORKER_ARENA is not None:
            _WORKER_ARENA.close()
            _WORKER_ARENA = None
        _WORKER_ARENA = SampleArena.attach(spec)
        _WORKER_ARENA_SPEC = dict(spec)
    return _WORKER_ARENA


def _cell_task(
    i: int,
    j: int,
    machine: CalibratedMachine,
    config: MeasurementConfig,
    repetitions: int,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    seed_sequence: np.random.SeedSequence,
    plan: FrequencyPlan,
    fault: CellFault | None,
    trace_cache_spec: dict | None,
    arena_spec: dict | None = None,
) -> tuple[int, int, np.ndarray | None, float, dict[str, float], dict]:
    """Simulate one cell inside a worker process.

    The cell ships its campaign context (machine, config, repetitions)
    and its pre-computed frequency plan from the parent — the pickles
    are small, and carrying them per task (rather than in a pool
    initializer) is what lets one persistent :class:`WorkerPool` serve
    campaigns with different machines and configs back to back.
    ``fault`` (set only by an injected
    :class:`~repro.core.faults.FaultPlan`) raises or hangs before the
    simulation starts; the reported elapsed time covers the simulation
    only, since the parent measures timeout budgets against its own
    clock.

    With ``arena_spec`` set, the cell's samples and its phase/elapsed
    strip entry are written into the campaign's shared-memory
    :class:`~repro.core.shm.SampleArena` slice instead of being
    returned — the samples element of the tuple is ``None`` and the
    result pickle carries only scalars.  The parent reads the slice
    back out of the arena, so the payload never crosses the process
    boundary by value.

    The sixth tuple element is the cell's **trace span fragment**
    (worker pid, worker-side elapsed seconds, per-phase seconds, and
    the cell's trace-cache counter delta): workers never write to the
    trace file themselves — the parent merges the fragment into the
    cell's ``span_end`` record, keeping the trace single-writer under
    the process pool.
    """
    cache = _worker_trace_cache(trace_cache_spec)
    if fault is not None:
        fault.apply()
    started = time.perf_counter()
    phases: dict[str, float] = {}
    before = cache.counters() if cache is not None else None
    samples = simulate_cell(
        machine, config, event_a, event_b, repetitions, seed_sequence,
        plan=plan, phase_seconds=phases, trace_cache=cache,
    )
    elapsed = time.perf_counter() - started
    fragment = {
        "worker_pid": os.getpid(),
        "elapsed_s": elapsed,
        "phase_seconds": dict(phases),
    }
    if cache is not None:
        fragment["trace_cache"] = TraceCache.counter_delta(
            cache.counters(), before
        )
    arena = _worker_arena(arena_spec)
    if arena is not None:
        # Samples, phases, and elapsed all travel through the arena
        # slice; the result pickle keeps only the scalars the strip
        # cannot carry (pid, counter deltas, the arena marker).
        arena.write_cell(i, j, samples, phases, elapsed)
        del fragment["elapsed_s"]
        del fragment["phase_seconds"]
        fragment["arena"] = True
        return i, j, None, 0.0, {}, fragment
    return i, j, samples, elapsed, phases, fragment


def _is_retryable(error: BaseException) -> bool:
    """Whether a cell failure may be absorbed by the retry budget.

    Configuration mistakes would fail identically on every attempt and
    a broken process pool cannot run further attempts at all, so both
    abort immediately; any other ``Exception`` is treated as transient.
    """
    if isinstance(error, (ConfigurationError, BrokenProcessPool)):
        return False
    return isinstance(error, Exception)


@dataclass(frozen=True)
class _PendingCell:
    """One cold cell awaiting simulation."""

    i: int
    j: int
    event_a: InstructionEvent
    event_b: InstructionEvent
    seed_sequence: np.random.SeedSequence
    plan: FrequencyPlan

    @property
    def index(self) -> tuple[int, int]:
        return (self.i, self.j)


def _order_by_cost(
    pending: Sequence[_PendingCell],
    names: Sequence[str],
    repetitions: int,
    method: str,
    history: dict[str, float],
) -> list[_PendingCell]:
    """Order cold cells longest-expected-first (stable within ties).

    Expected cost per cell is its recorded per-pair seconds from the
    result cache's cross-campaign history when available, else the
    static prior of :func:`repro.core.savat.estimate_cell_cost` — the
    prior is rescaled into seconds through the pairs present in both,
    so recorded and estimated cells sort on one axis.  Longest-first
    submission keeps the expensive cells off the pool's tail: the final
    stragglers are the cheapest cells instead of the dearest ones.

    Ordering is pure scheduling: every cell's samples replay its own
    seed-schedule entry, so any order produces bit-identical results.
    """
    priors = {
        cell.index: estimate_cell_cost(cell.plan, repetitions, method)
        for cell in pending
    }
    ratios = [
        history[f"{names[cell.i]}/{names[cell.j]}"] / priors[cell.index]
        for cell in pending
        if f"{names[cell.i]}/{names[cell.j]}" in history
        and priors[cell.index] > 0
    ]
    scale = sum(ratios) / len(ratios) if ratios else 1.0
    expected = {
        cell.index: history.get(
            f"{names[cell.i]}/{names[cell.j]}",
            priors[cell.index] * scale,
        )
        for cell in pending
    }
    # sorted() is stable, so equal-cost cells keep row-major order.
    return sorted(pending, key=lambda cell: -expected[cell.index])


class WorkerPool:
    """A persistent worker pool that outlives individual campaigns.

    :func:`execute_campaign` normally creates and destroys its own
    process pool, which also destroys every worker's warm in-process
    trace LRU.  A ``WorkerPool`` inverts that ownership: the caller
    (typically :func:`repro.core.study.run_study`) builds the pool
    once, passes it to each campaign via ``execute_campaign(pool=...)``,
    and the same worker processes — with their
    :mod:`repro.core.trace_cache` LRUs still warm — serve every
    campaign's cold cells.  Workers are initialized with the trace
    cache's *spec* (its disk path and LRU bound); trace payloads never
    cross the process boundary.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self, workers: int, trace_cache: TraceCache | None = None
    ) -> None:
        self.workers = max(_validate_workers(workers), 1)
        self.trace_cache_spec = (
            trace_cache.spec() if trace_cache is not None else None
        )
        self._outstanding: set = set()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.trace_cache_spec,),
        )

    def submit(self, fn, /, *args):
        """Submit one task to the pool (``ProcessPoolExecutor.submit``)."""
        future = self._pool.submit(fn, *args)
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        return future

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no submitted task is still running.

        Campaigns normally consume every future they submit, but a
        campaign aborted by :class:`~repro.errors.CellExecutionError`
        (or an abandoned, timed-out attempt) can leave tasks running in
        the pool's workers.  Shared state those workers write — the
        trace cache's shm segments, its disk tier — must only be torn
        down after they finish, so the study runner drains the pool
        before unlinking anything.  Returns ``False`` when a timeout
        expired with tasks still running.
        """
        pending = set(self._outstanding)
        if not pending:
            return True
        done, not_done = wait(pending, timeout=timeout)
        return not not_done

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the pool down (idempotent)."""
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def execute_campaign(
    machine: CalibratedMachine,
    events: Sequence[InstructionEvent],
    config: MeasurementConfig | None = None,
    repetitions: int = 10,
    seed: int = 0,
    workers: int = 0,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    cell_timeout_s: float | None = None,
    journal: str | os.PathLike | bool | None = None,
    resume: bool = False,
    fault_plan: FaultPlan | None = None,
    observability: CampaignObservability | None = None,
    trace_cache: TraceCache | bool | None = None,
    pool: WorkerPool | None = None,
    shm: bool | None = None,
    schedule: str = "rowmajor",
) -> tuple[np.ndarray, CampaignStats]:
    """Measure every ordered (A, B) cell of a campaign, possibly in parallel.

    Parameters
    ----------
    machine:
        Calibrated machine (fixes the distance too).
    events:
        Resolved event objects, in matrix order.
    config:
        Measurement configuration; the paper's defaults if omitted.
    repetitions:
        Measurements per cell.
    seed:
        Campaign seed, expanded into the per-cell schedule by
        :func:`spawn_cell_seeds`.
    workers:
        Worker processes; ``0`` or ``1`` runs serially in-process.
        Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    progress:
        Optional ``(event_a, event_b, done, total)`` callback invoked as
        each cell completes (cache hits and resumed cells included).
    max_retries:
        Transient-fault retry budget per cell.  A retried cell replays
        its original seed-schedule entry, so retries never change the
        campaign's samples.
    cell_timeout_s:
        Wall-clock budget per cell attempt.  An overrunning attempt
        counts as a timeout, its result is discarded, and the cell is
        retried from its original seed (consuming the retry budget) or
        the campaign fails.  Worker processes are preempted — the hung
        attempt is abandoned and its slot written off; a serial
        in-process attempt is only judged after it returns.  Counters,
        journal contents, and samples are identical in both modes.
    journal:
        Path of the campaign journal to stream completed cells to, or
        ``True`` to place ``journal.jsonl`` inside the cache's campaign
        directory (requires ``cache``).  ``None`` disables journaling.
    resume:
        Restore completed cells from the journal instead of recomputing
        them.  The journal's version and campaign key must match, else
        :class:`~repro.errors.JournalError` is raised; a missing journal
        file simply starts a fresh campaign.
    fault_plan:
        Deterministic :class:`~repro.core.faults.FaultPlan` to inject
        (testing/debugging only).
    observability:
        :class:`~repro.obs.CampaignObservability` bundle receiving
        every execution event (trace spans, cache/journal/fault events,
        live progress) and owning the metrics registry the returned
        :class:`CampaignStats` records into.  A registry-only bundle
        (no trace, no progress, no metrics file) is created when
        omitted.
    trace_cache:
        Kernel-trace cache (:class:`~repro.core.trace_cache.TraceCache`)
        serving the prime/core_run trace-production stage.  ``None``
        (the default) uses the process-wide cache configured by
        ``SAVAT_TRACE_CACHE`` / ``SAVAT_TRACE_CACHE_DIR``; ``False``
        disables trace caching for this campaign.  Samples are
        bit-identical with the cache on or off.
    pool:
        A persistent :class:`WorkerPool` to fan cells out over instead
        of creating (and tearing down) a private pool.  The pool's
        workers keep their warm trace LRUs across campaigns; the
        caller owns the pool's lifetime.  When given, it overrides
        ``workers``.
    shm:
        Whether pooled cells return their samples through a zero-copy
        :class:`~repro.core.shm.SampleArena` instead of pickling them
        (``None``: on where available unless ``SAVAT_SHM=0``; ``True``
        still degrades to the pickle path on platforms without POSIX
        shared memory).  Serial campaigns never need the arena.
        Samples are bit-identical either way.
    schedule:
        Cold-cell submission order — ``"rowmajor"`` (historical) or
        ``"cost"`` (longest-expected-first, from recorded per-pair
        seconds when a ``cache`` has them, else the static prior of
        :func:`repro.core.savat.estimate_cell_cost`).  Samples are
        bit-identical across schedules because every cell replays its
        own seed-schedule entry.

    Returns
    -------
    tuple
        ``(samples, stats)`` — the ``(N, N, repetitions)`` sample array
        in zJ and the execution counters/timings.

    Raises
    ------
    CellExecutionError
        A cell failed on every attempt (or every worker slot was lost
        to hung cells).  All cells completed before the failure have
        already been streamed to the journal, so a ``resume`` run
        restarts from them.
    """
    config = config or MeasurementConfig()
    resolved = list(events)
    count = len(resolved)
    if count == 0:
        raise ConfigurationError("campaign needs at least one event")
    if repetitions < 1:
        raise ConfigurationError("repetitions must be at least 1")
    if max_retries < 0:
        raise ConfigurationError("max_retries must be non-negative")
    if cell_timeout_s is not None and cell_timeout_s <= 0:
        raise ConfigurationError("cell_timeout_s must be positive")
    workers = _validate_workers(workers)
    schedule = _validate_schedule(schedule)
    use_shm = resolve_shm(shm)
    names = [event.name for event in resolved]

    if trace_cache is False:
        resolved_trace_cache: TraceCache | None = None
    elif trace_cache is None or trace_cache is True:
        resolved_trace_cache = get_process_trace_cache()
    else:
        resolved_trace_cache = trace_cache

    effective_workers = (
        pool.workers if pool is not None else max(workers, 1)
    )
    obs = observability if observability is not None else CampaignObservability()
    stats = CampaignStats(workers=effective_workers, registry=obs.metrics)
    stats.schedule_policy = schedule
    if cache is not None:
        cache.begin_execution()
    samples = np.zeros((count, count, repetitions))
    seeds = spawn_cell_seeds(seed, count)
    started = time.perf_counter()
    total = count * count
    done = 0

    def finish(
        i: int,
        j: int,
        cell_samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None = None,
    ) -> None:
        nonlocal done
        samples[i, j] = cell_samples
        stats.record_cell(names[i], names[j], elapsed_s, phase_seconds)
        done += 1
        obs.cell_completed(f"{names[i]}/{names[j]}", elapsed_s, done, total)
        if progress is not None:
            progress(names[i], names[j], done, total)

    # The key identifies the campaign both on disk (cache layout) and in
    # the journal header, so it is computed even for cache-less runs.
    key = campaign_cache_key(
        machine.name, machine.distance_m, config, names, repetitions, seed
    )
    if cache is not None:
        cache.write_manifest(
            key,
            {
                "schema": CACHE_SCHEMA_VERSION,
                "machine": machine.name,
                "distance_m": machine.distance_m,
                "config": _config_payload(config),
                "events": names,
                "repetitions": repetitions,
                "seed": seed,
            },
        )

    obs.campaign_start(
        total_cells=total,
        campaign_key=key,
        machine=machine.name,
        distance_m=machine.distance_m,
        events=names,
        repetitions=repetitions,
        seed=seed,
        workers=effective_workers,
    )

    campaign_journal: CampaignJournal | None = None

    def checkpoint(
        i: int,
        j: int,
        cell_samples: np.ndarray,
        elapsed_s: float,
        phase_seconds: dict[str, float] | None,
    ) -> None:
        """Persist one freshly computed (or cache-loaded) cell."""
        if campaign_journal is not None:
            campaign_journal.append_cell(
                i, j, cell_samples, elapsed_s, phase_seconds
            )

    status = "failed"
    try:
        journaled: dict[tuple[int, int], _JournalEntry] = {}
        if journal is True:
            if cache is None:
                raise ConfigurationError(
                    "journal=True places the journal inside the cache's "
                    "campaign directory and therefore needs a cache; pass "
                    "an explicit journal path instead"
                )
            journal = cache.campaign_dir(key) / "journal.jsonl"
        if journal:
            campaign_journal = CampaignJournal(journal)
            journaled = campaign_journal.start(
                {
                    "journal_version": JOURNAL_VERSION,
                    "campaign_key": key,
                    "machine": machine.name,
                    "distance_m": machine.distance_m,
                    "events": names,
                    "repetitions": repetitions,
                    "seed": seed,
                },
                resume=resume,
            )

        # Resolve journal and cache hits first, so the fan-out only
        # sees the cold cells.
        pending: list[_PendingCell] = []
        for i in range(count):
            for j in range(count):
                entry = journaled.get((i, j))
                if entry is not None:
                    stats.record_resumed()
                    obs.journal_resume(i, j)
                    finish(i, j, entry.samples, entry.elapsed_s, entry.phase_seconds)
                    continue
                if cache is not None and fault_plan is not None:
                    corrupt = fault_plan.corrupt_fault(i, j)
                    if corrupt is not None:
                        # Overwrite (or create) the entry with garbage so
                        # the load below must quarantine and recompute.
                        path = cache.cell_path(key, i, j)
                        path.parent.mkdir(parents=True, exist_ok=True)
                        path.write_bytes(CORRUPT_PAYLOAD)
                        stats.record_fault(corrupt.kind)
                        obs.fault_injected(**corrupt.trace_fields())
                load_started = time.perf_counter()
                quarantined_before = (
                    cache.quarantine_count if cache is not None else 0
                )
                cached = (
                    cache.load_cell(key, i, j, repetitions)
                    if cache is not None
                    else None
                )
                if cache is not None:
                    newly_quarantined = cache.quarantine_count - quarantined_before
                    if newly_quarantined:
                        stats.record_quarantined(newly_quarantined)
                        obs.cache_quarantine(i, j)
                if cached is not None:
                    stats.record_cache_hit()
                    obs.cache_hit(i, j)
                    elapsed = time.perf_counter() - load_started
                    checkpoint(i, j, cached, elapsed, None)
                    finish(i, j, cached, elapsed)
                else:
                    if cache is not None:
                        stats.record_cache_miss()
                        obs.cache_miss(i, j)
                    # Plan in the parent: the per-event CPI probes behind
                    # _plan_pair are cached per (machine, event), so every
                    # pending cell after the first reuses them, and workers
                    # receive finished plans instead of each re-probing
                    # from a cold cache.
                    plan = _plan_pair(
                        machine,
                        resolved[i],
                        resolved[j],
                        config.alternation_frequency_hz,
                    )
                    pending.append(
                        _PendingCell(
                            i, j, resolved[i], resolved[j],
                            seeds[i * count + j], plan,
                        )
                    )

        simulated_seconds: dict[str, float] = {}

        def complete_cell(
            cell: _PendingCell,
            cell_samples: np.ndarray,
            elapsed: float,
            phases: dict[str, float],
            fragment: dict | None = None,
        ) -> None:
            worker_pid = fragment.get("worker_pid") if fragment else None
            stats.record_simulated(worker_pid)
            simulated_seconds[f"{names[cell.i]}/{names[cell.j]}"] = elapsed
            trace_delta = (fragment or {}).get("trace_cache")
            if trace_delta:
                stats.record_trace_cache(trace_delta)
                obs.trace_cache(cell.i, cell.j, trace_delta)
            if cache is not None:
                cache.store_cell(key, cell.i, cell.j, cell_samples)
            checkpoint(cell.i, cell.j, cell_samples, elapsed, phases)
            finish(cell.i, cell.j, cell_samples, elapsed, phases)

        def dispatch_fault(cell: _PendingCell, attempt: int) -> CellFault | None:
            if fault_plan is None:
                return None
            fault = fault_plan.worker_fault(cell.i, cell.j, attempt)
            if fault is not None:
                stats.record_fault(fault.kind)
                obs.fault_injected(attempt=attempt, **fault.trace_fields())
            return fault

        if schedule == "cost" and len(pending) > 1:
            history = (
                cache.load_cost_history() if cache is not None else {}
            )
            pending = _order_by_cost(
                pending, names, repetitions, config.method, history
            )

        serial = pool is None and (effective_workers <= 1 or len(pending) <= 1)
        if serial:
            _run_serial(
                pending, machine, config, repetitions, stats,
                max_retries, cell_timeout_s, names,
                dispatch_fault, complete_cell, obs,
                trace_cache=resolved_trace_cache,
            )
        elif pending:
            _run_pool(
                pending, machine, config, repetitions, stats,
                effective_workers, max_retries, cell_timeout_s, names,
                dispatch_fault, complete_cell, obs,
                trace_cache=resolved_trace_cache, pool=pool,
                use_shm=use_shm, count=count,
            )
        trace_shm_segments = (
            len(resolved_trace_cache.shm_segments())
            if resolved_trace_cache is not None
            and resolved_trace_cache.shm_prefix is not None
            else 0
        )
        arena_used = use_shm and not serial and bool(pending)
        stats.record_shm(
            enabled=arena_used or trace_shm_segments > 0,
            segments=trace_shm_segments + (1 if arena_used else 0),
        )
        if cache is not None and simulated_seconds:
            cache.store_cost_history(simulated_seconds)
        status = "ok"
    finally:
        if campaign_journal is not None:
            campaign_journal.close()
        stats.wall_seconds = time.perf_counter() - started
        obs.campaign_end(status=status, wall_seconds=stats.wall_seconds)

    return samples, stats


def _run_serial(
    pending: Sequence[_PendingCell],
    machine: CalibratedMachine,
    config: MeasurementConfig,
    repetitions: int,
    stats: CampaignStats,
    max_retries: int,
    cell_timeout_s: float | None,
    names: Sequence[str],
    dispatch_fault: Callable[[_PendingCell, int], CellFault | None],
    complete_cell: Callable,
    obs: CampaignObservability,
    trace_cache: TraceCache | None = None,
) -> None:
    """Simulate the cold cells in-process, with the retry loop.

    Timeout semantics match the pool path: an in-process attempt cannot
    be preempted, so an injected hang runs until it returns, but an
    attempt that comes back over budget counts as a timeout, its result
    is **discarded**, and the cell is retried from its original seed —
    or, with the retry budget exhausted, the campaign fails with the
    same "exceeded the budget on all attempts" error the pool raises.
    Counters, journal contents, and samples are identical across modes.
    """
    for cell in pending:
        pair = f"{names[cell.i]}/{names[cell.j]}"
        attempt = 0
        while True:
            fault = dispatch_fault(cell, attempt)
            obs.cell_start(cell.i, cell.j, attempt, pair)
            cell_started = time.perf_counter()
            phases: dict[str, float] = {}
            before = trace_cache.counters() if trace_cache is not None else None
            try:
                if fault is not None:
                    fault.apply()
                cell_samples = simulate_cell(
                    machine, config, cell.event_a, cell.event_b,
                    repetitions, cell.seed_sequence,
                    plan=cell.plan, phase_seconds=phases,
                    trace_cache=trace_cache,
                )
            except Exception as error:  # noqa: BLE001 — classified below
                obs.cell_end(
                    cell.i, cell.j, attempt, status="error",
                    elapsed_s=time.perf_counter() - cell_started,
                    error=str(error),
                )
                if _is_retryable(error) and attempt < max_retries:
                    stats.record_retry()
                    obs.cell_retry(cell.i, cell.j, attempt + 1, reason="error")
                    attempt += 1
                    continue
                raise CellExecutionError(
                    f"cell {pair} failed on all {attempt + 1} attempt(s): "
                    f"{error} (completed cells are journaled; rerun with "
                    "resume to continue)",
                    i=cell.i, j=cell.j, pair=pair, attempts=attempt + 1,
                ) from error
            elapsed = time.perf_counter() - cell_started
            if cell_timeout_s is not None and elapsed > cell_timeout_s:
                # Over budget: discard the result and retry, exactly as
                # the pool path abandons a hung attempt.  The retry
                # replays the cell's original seed, so a campaign that
                # overruns and then succeeds stays bit-identical.
                stats.record_timeout()
                obs.cell_timeout(cell.i, cell.j, attempt, cell_timeout_s)
                obs.cell_end(
                    cell.i, cell.j, attempt, status="timeout",
                    elapsed_s=elapsed,
                )
                if attempt < max_retries:
                    stats.record_retry()
                    obs.cell_retry(cell.i, cell.j, attempt + 1, reason="timeout")
                    attempt += 1
                    continue
                raise CellExecutionError(
                    f"cell {pair} exceeded the {cell_timeout_s:g} s budget "
                    f"on all {attempt + 1} attempt(s) (completed cells are "
                    "journaled; rerun with resume to continue)",
                    i=cell.i, j=cell.j, pair=pair, attempts=attempt + 1,
                )
            fragment = {
                "worker_pid": os.getpid(),
                "elapsed_s": elapsed,
                "phase_seconds": dict(phases),
            }
            if trace_cache is not None:
                fragment["trace_cache"] = TraceCache.counter_delta(
                    trace_cache.counters(), before
                )
            obs.cell_end(
                cell.i, cell.j, attempt, status="ok",
                elapsed_s=elapsed, fragment=fragment,
            )
            complete_cell(cell, cell_samples, elapsed, phases, fragment)
            break


def _run_pool(
    pending: Sequence[_PendingCell],
    machine: CalibratedMachine,
    config: MeasurementConfig,
    repetitions: int,
    stats: CampaignStats,
    effective_workers: int,
    max_retries: int,
    cell_timeout_s: float | None,
    names: Sequence[str],
    dispatch_fault: Callable[[_PendingCell, int], CellFault | None],
    complete_cell: Callable,
    obs: CampaignObservability,
    trace_cache: TraceCache | None = None,
    pool: WorkerPool | None = None,
    use_shm: bool = False,
    count: int = 0,
) -> None:
    """Fan the cold cells out across worker processes.

    Scheduling keeps at most one outstanding task per worker slot, so
    every submitted cell is actually running and its wall-clock budget
    can be measured from submission.  A cell that exceeds the budget is
    abandoned — its worker slot is written off until the worker comes
    back — and the cell is retried on a fresh slot.  Results from
    abandoned attempts are discarded even if they eventually arrive; the
    retry recomputes the identical samples from the cell's original
    seed-schedule entry.

    With ``use_shm``, first attempts write their samples and
    phase/elapsed strip into a campaign-wide
    :class:`~repro.core.shm.SampleArena` and return only scalars; the
    parent copies each completed slice out on arrival.  Retried
    attempts fall back to the pickle path so a timed-out zombie of the
    original attempt can never write over a slot the parent still
    reads, and the arena is unlinked in the ``finally`` below on every
    exit — fault, timeout, and :class:`~repro.errors.CellExecutionError`
    paths included — so no ``/dev/shm`` segment outlives the campaign
    (POSIX keeps a zombie's mapping valid after the unlink, so even a
    hung writer cannot crash or leak).

    With an external :class:`WorkerPool`, its (already running) workers
    are used as-is and the pool is left alive on exit — the caller owns
    its lifetime, which is what keeps worker trace LRUs warm between
    the campaigns of a study.
    """
    trace_cache_spec = trace_cache.spec() if trace_cache is not None else None
    if pool is not None:
        pool_workers = pool.workers
        submit = pool.submit
        owned_pool: ProcessPoolExecutor | None = None
    else:
        pool_workers = min(effective_workers, len(pending))
        owned_pool = ProcessPoolExecutor(
            max_workers=pool_workers,
            initializer=_init_worker,
            initargs=(trace_cache_spec,),
        )
        submit = owned_pool.submit
    arena = SampleArena.create(count, repetitions) if use_shm else None
    arena_spec = arena.spec() if arena is not None else None
    queue: deque[tuple[_PendingCell, int]] = deque(
        (cell, 0) for cell in pending
    )
    outstanding: dict = {}  # future -> (cell, submitted_monotonic, attempt)
    abandoned: set = set()
    slots = pool_workers
    clean_shutdown = False
    drain_started: float | None = None

    def fail(cell: _PendingCell, attempts: int, message: str) -> CellExecutionError:
        pair = f"{names[cell.i]}/{names[cell.j]}"
        return CellExecutionError(
            f"cell {pair} {message} (completed cells are journaled; rerun "
            "with resume to continue)",
            i=cell.i, j=cell.j, pair=pair, attempts=attempts,
        )

    try:
        while queue or outstanding:
            # Reclaim slots whose abandoned (hung) attempts finished.
            for future in [f for f in abandoned if f.done()]:
                abandoned.discard(future)
                slots += 1
            while queue and len(outstanding) < slots:
                cell, attempt = queue.popleft()
                fault = dispatch_fault(cell, attempt)
                obs.cell_start(
                    cell.i, cell.j, attempt,
                    f"{names[cell.i]}/{names[cell.j]}",
                )
                future = submit(
                    _cell_task,
                    cell.i, cell.j, machine, config, repetitions,
                    cell.event_a, cell.event_b,
                    cell.seed_sequence, cell.plan, fault,
                    trace_cache_spec,
                    # Retries keep their samples out of the arena: a
                    # timed-out zombie of attempt 0 may still write the
                    # cell's slot, so only a slot whose single attempt-0
                    # writer completed cleanly is ever read back.
                    arena_spec if attempt == 0 else None,
                )
                outstanding[future] = (cell, time.monotonic(), attempt)
            if queue:
                # A retry was queued after the drain began: the fan-out
                # is submitting again, so the tail clock restarts.
                drain_started = None
            elif drain_started is None:
                # Every cell is submitted; the fan-out is now draining
                # stragglers.  Cost-aware scheduling exists to shrink
                # this tail.
                drain_started = time.monotonic()
            if not outstanding:
                # Cells remain but every worker slot is hung.
                cell, attempt = queue[0]
                raise fail(
                    cell,
                    attempt,
                    f"cannot run: all {pool_workers} worker slot(s) are "
                    f"lost to hung cells and {len(queue)} cell(s) remain",
                )
            wait_timeout = None
            if cell_timeout_s is not None:
                now = time.monotonic()
                next_deadline = min(
                    submitted + cell_timeout_s
                    for _, submitted, _ in outstanding.values()
                )
                wait_timeout = max(0.0, next_deadline - now)
            completed, _ = wait(
                set(outstanding), timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            # Process successes before failures so every finished cell
            # reaches the journal even when a failure aborts the run.
            for future in sorted(completed, key=lambda f: f.exception() is not None):
                cell, _submitted, attempt = outstanding.pop(future)
                error = future.exception()
                if error is None:
                    i, j, cell_samples, elapsed, phases, fragment = future.result()
                    if fragment.get("arena") and arena is not None:
                        # Zero-copy result: the pickle carried only
                        # scalars; samples, phases, and elapsed come
                        # out of the cell's arena slice and strip.
                        cell_samples = arena.read_cell(i, j)
                        phases, elapsed = arena.read_strip(i, j)
                        fragment["phase_seconds"] = dict(phases)
                        fragment["elapsed_s"] = elapsed
                        stats.record_ipc(saved_bytes=arena.cell_nbytes)
                    else:
                        stats.record_ipc(sample_bytes=cell_samples.nbytes)
                    obs.cell_end(
                        cell.i, cell.j, attempt, status="ok",
                        elapsed_s=elapsed, fragment=fragment,
                    )
                    complete_cell(cell, cell_samples, elapsed, phases, fragment)
                elif _is_retryable(error) and attempt < max_retries:
                    obs.cell_end(
                        cell.i, cell.j, attempt, status="error",
                        error=str(error),
                    )
                    stats.record_retry()
                    obs.cell_retry(cell.i, cell.j, attempt + 1, reason="error")
                    queue.append((cell, attempt + 1))
                else:
                    obs.cell_end(
                        cell.i, cell.j, attempt, status="error",
                        error=str(error),
                    )
                    raise fail(
                        cell, attempt + 1,
                        f"failed on all {attempt + 1} attempt(s): {error}",
                    ) from error
            if cell_timeout_s is not None:
                now = time.monotonic()
                for future, (cell, submitted, attempt) in list(outstanding.items()):
                    if now - submitted < cell_timeout_s or future.done():
                        continue
                    del outstanding[future]
                    stats.record_timeout()
                    obs.cell_timeout(cell.i, cell.j, attempt, cell_timeout_s)
                    obs.cell_end(
                        cell.i, cell.j, attempt, status="timeout",
                        elapsed_s=now - submitted,
                    )
                    if not future.cancel():
                        # Already running in a worker: write the slot off
                        # until the (possibly hung) attempt returns.
                        abandoned.add(future)
                        slots -= 1
                    if attempt < max_retries:
                        stats.record_retry()
                        obs.cell_retry(cell.i, cell.j, attempt + 1, reason="timeout")
                        queue.append((cell, attempt + 1))
                    else:
                        raise fail(
                            cell, attempt + 1,
                            f"exceeded the {cell_timeout_s:g} s budget on "
                            f"all {attempt + 1} attempt(s)",
                        )
        clean_shutdown = not abandoned
        if drain_started is not None:
            stats.record_sched_tail(time.monotonic() - drain_started)
    finally:
        # Never block campaign teardown on a hung worker: if any attempt
        # was abandoned (or the run failed), drop the pool without
        # waiting for it.  An external WorkerPool is the caller's to
        # shut down — its workers (and their warm trace LRUs) survive
        # this campaign.
        if owned_pool is not None:
            owned_pool.shutdown(wait=clean_shutdown, cancel_futures=True)
        if arena is not None:
            # Unconditional, on every exit path: the arena name must
            # never outlive the campaign.  Unlinking with writers still
            # live is safe — POSIX keeps their mappings valid, and no
            # slot they can still touch is ever read again.
            arena.unlink()


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_RETRIES",
    "JOURNAL_VERSION",
    "SCHEDULES",
    "CampaignJournal",
    "CampaignStats",
    "ResultCache",
    "WorkerPool",
    "campaign_cache_key",
    "cell_seed",
    "execute_campaign",
    "simulate_cell",
    "spawn_cell_seeds",
]
