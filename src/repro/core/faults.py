"""Deterministic fault injection for campaign executions.

A long measurement campaign — the paper's 11x11 pairs x 10 repetitions
x 3 machines x 3 distances — has to survive the failure modes any
unattended fan-out eventually meets: a worker that dies with an
exception, a worker that hangs past any reasonable budget, and an
on-disk cache entry that a killed process left corrupted.  Testing that
the executor really recovers from all three requires *causing* all
three on demand, reproducibly, at chosen cells.

That is what a :class:`FaultPlan` does.  It is a declarative list of
:class:`CellFault` entries — *raise at cell (0, 1)*, *hang 2 s at cell
(1, 2)*, *corrupt the cache entry of cell (2, 0)* — that the executor
consults at well-defined points:

* ``raise`` and ``hang`` faults fire inside the worker (or the serial
  loop) just before the cell simulates, on attempts ``0 .. count-1``;
  because the executor re-seeds a retried cell from its original
  seed-schedule entry, a campaign with N transient faults is still
  bit-identical to a fault-free run.
* ``corrupt`` faults overwrite the cell's on-disk cache entry with
  garbage just before the executor tries to load it, exercising the
  quarantine-and-recompute path.

Plans are constructed programmatically (the test suites) or parsed from
a compact spec string (the ``savat campaign --inject-faults`` debug
flag and the ``SAVAT_INJECT_FAULTS`` environment variable)::

    raise@0,1;hang@1,2:2.5;corrupt@2,0;raise@3,3x2

``kind@i,j`` names the cell, an optional ``:seconds`` sets the hang
duration, and an optional ``xN`` makes the fault fire on the first N
attempts instead of just the first.
"""

from __future__ import annotations

import os
import re
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError, ReproError

#: Environment variable the CLI and test harness read fault specs from.
FAULT_PLAN_ENVIRONMENT_VARIABLE = "SAVAT_INJECT_FAULTS"

#: Fault kinds a plan may contain.
FAULT_KINDS = ("raise", "hang", "corrupt")

#: Hang duration used when a ``hang`` fault omits ``:seconds``.
DEFAULT_HANG_SECONDS = 30.0

#: Bytes written over a cache entry by a ``corrupt`` fault.  Not a valid
#: ``.npz`` payload, so the loader must quarantine it.
CORRUPT_PAYLOAD = b"savat-fault-injection: deliberately corrupted entry\n"

_SPEC_PATTERN = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<i>\d+),(?P<j>\d+)"
    r"(?::(?P<seconds>\d+(?:\.\d+)?))?"
    r"(?:x(?P<count>\d+))?$"
)


class FaultInjectedError(ReproError):
    """Raised by an injected ``raise`` fault.

    A deliberately transient error: the executor's retry loop treats it
    like any other worker exception, so an injected raise with
    ``count <= max_retries`` is absorbed and the campaign completes.
    """


@dataclass(frozen=True)
class CellFault:
    """One injected fault at one campaign cell.

    Attributes
    ----------
    kind:
        ``"raise"``, ``"hang"``, or ``"corrupt"``.
    i / j:
        The target cell's row and column in the campaign matrix.
    count:
        How many consecutive attempts the fault fires on (``raise`` and
        ``hang`` faults; a ``corrupt`` fault fires once per execution).
    seconds:
        Sleep duration for ``hang`` faults; ignored otherwise.
    """

    kind: str
    i: int
    j: int
    count: int = 1
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.i < 0 or self.j < 0:
            raise ConfigurationError(
                f"fault cell ({self.i}, {self.j}) must be non-negative"
            )
        if self.count < 1:
            raise ConfigurationError("fault count must be at least 1")
        if self.seconds < 0:
            raise ConfigurationError("hang seconds must be non-negative")

    def fires_on(self, attempt: int) -> bool:
        """Whether this fault fires on the given zero-based attempt."""
        return attempt < self.count

    def to_spec(self) -> str:
        """The compact one-fault spec (inverse of the parser)."""
        spec = f"{self.kind}@{self.i},{self.j}"
        if self.kind == "hang" and self.seconds != DEFAULT_HANG_SECONDS:
            spec += f":{self.seconds:g}"
        if self.count != 1:
            spec += f"x{self.count}"
        return spec

    def trace_fields(self) -> dict:
        """The fault's identity as flat trace-record fields.

        Returned as ``{"fault_kind": ..., "i": ..., "j": ...}`` plus
        ``"seconds"`` for hang faults, matching the field names the
        observability layer writes into ``fault_injected`` trace events
        (see :meth:`repro.obs.CampaignObservability.fault_injected`).
        """
        fields: dict = {"fault_kind": self.kind, "i": self.i, "j": self.j}
        if self.kind == "hang":
            fields["seconds"] = self.seconds
        return fields

    def apply(self) -> None:
        """Fire a worker-side fault: raise or sleep.

        ``corrupt`` faults are applied by the executor at cache-load
        time, not by workers, so applying one here is a logic error.
        """
        if self.kind == "raise":
            raise FaultInjectedError(
                f"injected worker exception at cell ({self.i}, {self.j})"
            )
        if self.kind == "hang":
            time.sleep(self.seconds)
            return
        raise ConfigurationError(
            f"{self.kind!r} faults are applied by the executor, not workers"
        )


class FaultPlan:
    """A deterministic schedule of faults to inject into one campaign.

    The plan is consulted by cell and attempt, so it is a pure function
    of its spec: the same plan against the same campaign injects the
    same faults in the same places, every run.
    """

    def __init__(self, faults: Iterable[CellFault] = ()) -> None:
        self.faults: tuple[CellFault, ...] = tuple(faults)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``;``-separated fault spec string.

        Each entry is ``kind@i,j``, optionally ``:seconds`` (hang
        duration) and/or ``xN`` (fire on the first N attempts)::

            FaultPlan.from_spec("raise@0,1;hang@1,2:2.5;corrupt@2,0x1")
        """
        faults: list[CellFault] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            match = _SPEC_PATTERN.match(entry)
            if match is None:
                raise ConfigurationError(
                    f"malformed fault spec entry {entry!r}; expected "
                    "kind@i,j[:seconds][xN] with kind one of "
                    f"{'/'.join(FAULT_KINDS)}"
                )
            kind = match.group("kind")
            seconds = match.group("seconds")
            if seconds is not None and kind != "hang":
                raise ConfigurationError(
                    f"fault spec entry {entry!r}: only hang faults take "
                    "a :seconds duration"
                )
            faults.append(
                CellFault(
                    kind=kind,
                    i=int(match.group("i")),
                    j=int(match.group("j")),
                    seconds=(
                        float(seconds) if seconds is not None
                        else DEFAULT_HANG_SECONDS
                    ),
                    count=int(match.group("count") or 1),
                )
            )
        return cls(faults)

    @classmethod
    def from_environment(cls, environ: dict | None = None) -> "FaultPlan | None":
        """The plan configured via ``SAVAT_INJECT_FAULTS``, if any."""
        spec = (environ if environ is not None else os.environ).get(
            FAULT_PLAN_ENVIRONMENT_VARIABLE
        )
        if not spec:
            return None
        return cls.from_spec(spec)

    def to_spec(self) -> str:
        """The compact spec string (round-trips through the parser)."""
        return ";".join(fault.to_spec() for fault in self.faults)

    # ------------------------------------------------------------------
    # Lookup (used by the executor)
    # ------------------------------------------------------------------
    def worker_fault(self, i: int, j: int, attempt: int) -> CellFault | None:
        """The raise/hang fault firing at cell ``(i, j)`` on ``attempt``."""
        for fault in self.faults:
            if (
                fault.kind in ("raise", "hang")
                and fault.i == i
                and fault.j == j
                and fault.fires_on(attempt)
            ):
                return fault
        return None

    def corrupt_fault(self, i: int, j: int) -> CellFault | None:
        """The cache-corruption fault targeting cell ``(i, j)``, if any."""
        for fault in self.faults:
            if fault.kind == "corrupt" and fault.i == i and fault.j == j:
                return fault
        return None

    def counts_by_kind(self) -> dict[str, int]:
        """Number of planned faults per kind (not per attempt)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for fault in self.faults:
            counts[fault.kind] += 1
        return {kind: count for kind, count in counts.items() if count}

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[CellFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"


__all__ = [
    "CORRUPT_PAYLOAD",
    "DEFAULT_HANG_SECONDS",
    "FAULT_KINDS",
    "FAULT_PLAN_ENVIRONMENT_VARIABLE",
    "CellFault",
    "FaultInjectedError",
    "FaultPlan",
]
