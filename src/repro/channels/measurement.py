"""Multi-channel SAVAT measurement.

Points the paper's alternation methodology at any
:class:`~repro.channels.base.ChannelModel`: the same Figure-4 kernel and
the same cycle-level simulation, with the channel's pickup weights,
low-pass, and noise in place of the EM chain.  The result is the
cross-channel "which channel is most dangerous" comparison the paper's
Section VII asks for.

Channel SAVATs are *not* calibrated against published data (the paper
measured only EM); the power/acoustic weights are physically-motivated
defaults, so cross-channel comparisons are qualitative: relative
structure within a channel is meaningful, absolute levels across
channels depend on the chosen scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.base import ChannelModel
from repro.codegen.frequency import FrequencyPlan
from repro.core.savat import _plan_pair, simulate_alternation_period
from repro.em.coupling import band_power_from_modes, fourier_coefficient
from repro.errors import MeasurementError
from repro.isa.events import InstructionEvent, get_event
from repro.machines.calibrated import CalibratedMachine
from repro.units import REFERENCE_IMPEDANCE, ZEPTOJOULE


@dataclass
class ChannelSavatResult:
    """One pairwise SAVAT measurement through a non-EM channel."""

    channel: str
    event_a: str
    event_b: str
    savat_zj: float
    signal_band_power_w: float
    pairs_per_second: float
    alternation_frequency_hz: float
    lowpass_attenuation: float

    def __str__(self) -> str:
        return (
            f"SAVAT[{self.channel}]({self.event_a}/{self.event_b}) = "
            f"{self.savat_zj:.3g} zJ at {self.alternation_frequency_hz / 1e3:.1f} kHz"
        )


def measure_channel_savat(
    machine: CalibratedMachine,
    channel: ChannelModel,
    event_a: InstructionEvent | str,
    event_b: InstructionEvent | str,
    alternation_frequency_hz: float | None = None,
    rng: np.random.Generator | None = None,
    loop_noise_fraction: float = 0.05,
) -> ChannelSavatResult:
    """Pairwise SAVAT of (A, B) through an arbitrary side channel.

    Parameters
    ----------
    machine:
        The simulated machine (its EM calibration is unused here; only
        the microarchitecture matters).
    channel:
        The channel model (e.g. :func:`repro.channels.wall_power_channel`).
    alternation_frequency_hz:
        Defaults to the channel's recommended frequency — a power meter
        behind the PSU needs a far slower alternation than an RF
        antenna, and the methodology's software-tunable frequency is
        exactly what makes that possible.
    """
    if isinstance(event_a, str):
        event_a = get_event(event_a)
    if isinstance(event_b, str):
        event_b = get_event(event_b)
    frequency = alternation_frequency_hz or channel.recommended_frequency_hz
    if frequency <= 0:
        raise MeasurementError(f"alternation frequency must be positive, got {frequency}")

    # SAVAT is alternation-frequency-independent apart from the
    # channel's low-pass factor (both band power and pair rate scale
    # out the period length), so slow channels are simulated at a
    # cycle-budget-friendly frequency and rescaled by the low-pass
    # response ratio — see the module docstring.
    max_period_cycles = 3e5
    simulation_frequency = max(frequency, machine.spec.clock_hz / max_period_cycles)

    plan: FrequencyPlan = _plan_pair(machine, event_a, event_b, simulation_frequency)
    trace, plan = simulate_alternation_period(machine, plan)

    waveform = channel.project_trace(trace)
    coefficients = fourier_coefficient(waveform)
    signal_power = band_power_from_modes(coefficients, REFERENCE_IMPEDANCE)

    simulated_frequency = 1.0 / trace.duration_s
    rescale = channel.attenuation_at(frequency) / channel.attenuation_at(
        simulated_frequency
    )
    signal_power *= rescale**2

    achieved_frequency = frequency * simulated_frequency / simulation_frequency
    pairs_per_second = plan.spec.inst_loop_count * simulated_frequency

    # Noise: the channel instrument's residual after noise correction.
    band_half_width = max(frequency * 0.0125, 10.0)
    expected = channel.environment.band_noise_power(frequency, band_half_width, rng=None)
    drawn = channel.environment.band_noise_power(frequency, band_half_width, rng=rng)
    residual = drawn - expected

    loop_factor = 1.0
    if rng is not None and loop_noise_fraction > 0:
        loop_factor = max(1.0 + rng.normal(0.0, loop_noise_fraction), 0.0)

    total = max(signal_power * loop_factor + residual, 0.0)
    return ChannelSavatResult(
        channel=channel.name,
        event_a=event_a.name,
        event_b=event_b.name,
        savat_zj=total / pairs_per_second / ZEPTOJOULE,
        signal_band_power_w=signal_power,
        pairs_per_second=pairs_per_second,
        alternation_frequency_hz=achieved_frequency,
        lowpass_attenuation=channel.attenuation_at(achieved_frequency),
    )


def channel_comparison(
    machine: CalibratedMachine,
    channels: list[ChannelModel],
    pairings: list[tuple[str, str]],
    rng: np.random.Generator | None = None,
) -> dict[str, dict[str, float]]:
    """Per-channel SAVAT for a list of pairings (Section VII's table).

    Returns ``{channel name: {"A/B": savat_zj, ...}, ...}``.  Within a
    channel, compare cells freely; across channels, compare only the
    *structure* (each channel's weights carry an arbitrary scale).
    """
    table: dict[str, dict[str, float]] = {}
    for channel in channels:
        row: dict[str, float] = {}
        for event_a, event_b in pairings:
            result = measure_channel_savat(machine, channel, event_a, event_b, rng=rng)
            row[f"{event_a}/{event_b}"] = result.savat_zj
        table[channel.name] = row
    return table


def distinguishability_profile(table: dict[str, dict[str, float]]) -> dict[str, dict[str, float]]:
    """Normalize a channel-comparison table per channel.

    Each channel's row is divided by its own maximum so the *shape* of
    what each channel can distinguish is directly comparable even though
    absolute scales are not.
    """
    normalized: dict[str, dict[str, float]] = {}
    for channel, row in table.items():
        peak = max(row.values()) or 1.0
        normalized[channel] = {pair: value / peak for pair, value in row.items()}
    return normalized
