"""Generic side-channel model for multi-channel SAVAT.

Section VII: "Another direction for future research is to measure SAVAT
for multiple side channels to help inform decisions about which ones are
the most dangerous for a particular class of processors or systems",
and Section I already anticipates that the methodology transfers
"especially [to] acoustic and power-consumption side channels where
instruments are readily available to measure the power of the periodic
signals created by our methodology."

A :class:`ChannelModel` is everything the measurement pipeline needs to
point the Figure-4 methodology at a different physical channel:

* per-mode, per-component **pickup weights** (how strongly each
  microarchitectural component's switching activity drives the
  channel's sensor) — one mode for channels with no spatial structure
  (a power meter integrates everything into one current), several for
  field-like channels;
* a first-order **low-pass corner**: the PSU's bulk capacitance hides
  fast power transients from a wall-socket meter, a microphone's
  mechanics roll off ultrasound.  The alternation frequency must be
  chosen *below* the corner — exactly the kind of practical constraint
  the paper's software-tunable frequency was designed to accommodate;
* a **noise environment** for the channel's instrument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.em.environment import NoiseEnvironment
from repro.errors import ConfigurationError
from repro.uarch.activity import ActivityTrace
from repro.uarch.components import NUM_COMPONENTS


@dataclass(frozen=True)
class ChannelModel:
    """One physical side channel's sensing model.

    Attributes
    ----------
    name:
        Channel name for reports (``"EM"``, ``"power"``, ``"acoustic"``).
    weights:
        Array ``(num_modes, NUM_COMPONENTS)`` mapping per-cycle component
        activity to the instrument-input signal (volt-equivalent units).
    environment:
        Instrument/ambient noise for this channel.
    lowpass_hz:
        First-order low-pass corner between the emitter and the
        instrument, or ``None`` for a flat channel.
    recommended_frequency_hz:
        Alternation frequency that suits the channel's passband.
    """

    name: str
    weights: np.ndarray
    environment: NoiseEnvironment
    lowpass_hz: float | None = None
    recommended_frequency_hz: float = 80e3

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[1] != NUM_COMPONENTS:
            raise ConfigurationError(
                f"channel weights must have shape (M, {NUM_COMPONENTS}), "
                f"got {weights.shape}"
            )
        if self.lowpass_hz is not None and self.lowpass_hz <= 0:
            raise ConfigurationError(f"low-pass corner must be positive, got {self.lowpass_hz}")
        if self.recommended_frequency_hz <= 0:
            raise ConfigurationError("recommended frequency must be positive")
        object.__setattr__(self, "weights", weights)

    @property
    def num_modes(self) -> int:
        """Number of sensing modes."""
        return self.weights.shape[0]

    def attenuation_at(self, frequency_hz: float) -> float:
        """Amplitude attenuation of the low-pass at ``frequency_hz``."""
        if self.lowpass_hz is None:
            return 1.0
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        ratio = frequency_hz / self.lowpass_hz
        return float(1.0 / np.sqrt(1.0 + ratio * ratio))

    def project_trace(self, trace: ActivityTrace) -> np.ndarray:
        """Instrument-input waveform for one alternation period.

        Applies the pickup weights and, if configured, the first-order
        low-pass filter.  The trace is one period of a free-running
        loop, so the filter must start in its *periodic* steady state —
        a zero (or arbitrary) initial state would inject a settling
        transient whose fundamental component can dwarf the real A/B
        difference.  Because the filter is linear, the steady-state
        initial condition has a closed form: the final state from a
        zero-state pass, divided by ``1 - decay`` where ``decay`` is the
        pole raised to the period length.
        """
        waveform = trace.project(self.weights)
        if self.lowpass_hz is None:
            return waveform
        from scipy.signal import lfilter

        alpha = min(2.0 * np.pi * self.lowpass_hz / trace.clock_hz, 1.0)
        numerator = [alpha]
        denominator = [1.0, alpha - 1.0]
        num_modes, period = waveform.shape
        zero_state = np.zeros((num_modes, 1))
        _first_pass, state_after = lfilter(
            numerator, denominator, waveform, axis=1, zi=zero_state
        )
        pole = 1.0 - alpha
        # decay = pole**period underflows to 0 for short time constants,
        # which is exactly the "already settled" case.
        with np.errstate(under="ignore"):
            decay = pole**period
        steady_state = state_after / (1.0 - decay)
        filtered, _final = lfilter(
            numerator, denominator, waveform, axis=1, zi=steady_state
        )
        return filtered
