"""The acoustic side channel (Evan's under-the-table microphone).

Laptop "coil whine" comes from VRM inductors and ceramic capacitors
physically deforming with load-current changes; Genkin et al.'s acoustic
RSA attack (the paper's acoustic citations [4], [51]) exploits exactly
this.  The model:

* pickup weights proportional to each component's *supply current*
  (acoustics, like power, has essentially one mode per emitting
  regulator; we model the CPU VRM and the memory VRM as two modes, so
  off-chip and on-chip activity are separable but finer structure is
  not);
* a low-pass at the top of the microphone/mechanical response
  (~50 kHz for an ultrasound-capable capture chain);
* an ambient acoustic noise floor well above an RF analyzer's.

The recommended alternation frequency sits in the quiet ultrasound gap
above human-audible noise but inside the mic's response — the same
"choose a quiet frequency" freedom Section III highlights.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import ChannelModel
from repro.em.environment import NoiseEnvironment, RadioInterferer
from repro.uarch.components import COMPONENT_INDEX, OFF_CHIP_COMPONENTS
from repro.channels.power import POWER_WEIGHTS

#: Microphone/mechanical response corner.
MICROPHONE_LOWPASS_HZ = 50_000.0

#: Ultrasonic alternation frequency (above fans/ambient, inside the mic).
ACOUSTIC_ALTERNATION_HZ = 30_000.0

#: Ambient + microphone noise floor at the capture output, W/Hz.
ACOUSTIC_FLOOR_W_PER_HZ = 1e-13


def laptop_acoustic_channel(scale: float = 2e-7) -> ChannelModel:
    """The coil-whine acoustic channel of a laptop.

    Mode 0 is the CPU VRM (on-chip components), mode 1 the memory
    subsystem VRM (bus + DRAM): two regulators whine independently and
    the microphone hears their (incoherent) sum.
    """
    weights = np.zeros((2, len(COMPONENT_INDEX)))
    for component, value in POWER_WEIGHTS.items():
        mode = 1 if component in OFF_CHIP_COMPONENTS else 0
        weights[mode, COMPONENT_INDEX[component]] = value * scale
    return ChannelModel(
        name="acoustic",
        weights=weights,
        environment=NoiseEnvironment(
            instrument_floor_w_per_hz=ACOUSTIC_FLOOR_W_PER_HZ,
            include_thermal=False,
            interferers=(
                # A fan's blade-pass tone and its harmonic, far below the
                # ultrasonic measurement band.
                RadioInterferer(frequency_hz=1_100.0, power_w=5e-9, bandwidth_hz=40.0),
                RadioInterferer(frequency_hz=2_200.0, power_w=1e-9, bandwidth_hz=40.0),
            ),
        ),
        lowpass_hz=MICROPHONE_LOWPASS_HZ,
        recommended_frequency_hz=ACOUSTIC_ALTERNATION_HZ,
    )
