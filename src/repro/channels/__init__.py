"""Non-EM side channels: power and acoustic SAVAT (Section VII)."""

from repro.channels.acoustic import (
    ACOUSTIC_ALTERNATION_HZ,
    MICROPHONE_LOWPASS_HZ,
    laptop_acoustic_channel,
)
from repro.channels.base import ChannelModel
from repro.channels.measurement import (
    ChannelSavatResult,
    channel_comparison,
    distinguishability_profile,
    measure_channel_savat,
)
from repro.channels.power import (
    POWER_ALTERNATION_HZ,
    POWER_WEIGHTS,
    PSU_LOWPASS_HZ,
    wall_power_channel,
)

__all__ = [
    "ACOUSTIC_ALTERNATION_HZ",
    "ChannelModel",
    "ChannelSavatResult",
    "MICROPHONE_LOWPASS_HZ",
    "POWER_ALTERNATION_HZ",
    "POWER_WEIGHTS",
    "PSU_LOWPASS_HZ",
    "channel_comparison",
    "distinguishability_profile",
    "laptop_acoustic_channel",
    "measure_channel_savat",
    "wall_power_channel",
]
