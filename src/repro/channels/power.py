"""The power-consumption side channel (Evita's wall-socket meter).

The paper's Figure 1 shows Evita measuring power fluctuations "through a
power meter, disguised as a battery charger, in the wall socket".  The
channel's physics differ from EM in two ways the model captures:

* **No spatial structure.**  Every component's switching current sums
  into one rail before the meter sees it, so the channel is a *single
  mode*: two events with equal total current draw are indistinguishable
  even if their EM fields differ.  (This is why LDM vs LDL2, easy for
  the EM attacker, is much harder for Evita.)
* **A low-pass between the chip and the meter.**  VRM and PSU bulk
  capacitance smooth the rail; the wall meter only sees slow envelope
  changes (a corner around a kilohertz).  The alternation frequency must
  be chosen far below the paper's 80 kHz — the methodology's
  software-tunable frequency makes that a one-line change.

Weights are per-component dynamic-power coefficients (watts per
activity unit, to an arbitrary common scale): off-chip drivers and DRAM
burn the most energy per toggle, the divider and L2 arrays follow, and
the small front-end structures cost the least.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import ChannelModel
from repro.em.environment import NoiseEnvironment
from repro.uarch.components import COMPONENT_INDEX, Component

#: Relative dynamic power per activity unit for each component.  Values
#: are ordered by physical size/capacitance: board-level structures >>
#: large arrays > execution units > small front-end logic.
POWER_WEIGHTS: dict[Component, float] = {
    Component.FETCH: 0.4,
    Component.DECODE: 0.5,
    Component.REGFILE: 0.3,
    Component.ALU: 0.6,
    Component.AGU: 0.4,
    Component.MUL: 1.2,
    Component.DIV: 1.0,
    Component.L1D: 0.8,
    Component.L2: 1.6,
    Component.WB_BUFFER: 0.3,
    Component.MEM_BUS: 3.0,
    Component.DRAM: 2.5,
}

#: PSU/VRM smoothing corner seen from the wall socket.
PSU_LOWPASS_HZ = 1_000.0

#: Alternation frequency suited to the power channel's passband.
POWER_ALTERNATION_HZ = 500.0

#: Wall-meter noise floor, in W/Hz at the meter's sense output.  Cheap
#: meters are far noisier per hertz than a spectrum analyzer, but the
#: methodology's narrowband integration still applies.
POWER_METER_FLOOR_W_PER_HZ = 1e-12


def wall_power_channel(scale: float = 1e-6) -> ChannelModel:
    """The wall-socket power-measurement channel.

    Parameters
    ----------
    scale:
        Global volts-per-activity scale at the meter's sense resistor.
        The default puts single-instruction power SAVAT in the
        femtojoule range — energies per instruction are physical here
        (they are actual switching energy), orders of magnitude above
        the *radiated* energies of the EM channel.
    """
    weights = np.zeros((1, len(COMPONENT_INDEX)))
    for component, value in POWER_WEIGHTS.items():
        weights[0, COMPONENT_INDEX[component]] = value * scale
    return ChannelModel(
        name="power",
        weights=weights,
        environment=NoiseEnvironment(
            instrument_floor_w_per_hz=POWER_METER_FLOOR_W_PER_HZ,
            include_thermal=False,
        ),
        lowpass_hz=PSU_LOWPASS_HZ,
        recommended_frequency_hz=POWER_ALTERNATION_HZ,
    )
