"""Validate observability outputs: JSONL traces and Prometheus metrics.

This is the tiny checker behind the CI observability smoke step and the
golden tests, runnable standalone::

    python -m repro.obs.check --trace t.jsonl --metrics m.prom \\
        --matrix campaign.json

It performs three independent checks and exits non-zero when any fails:

1. the trace file is schema-valid (header first, known version, every
   span closed, cell identities unique per attempt, monotone
   timestamps) — see :func:`repro.obs.trace.validate_trace`;
2. the metrics file parses as Prometheus text exposition format (every
   non-comment line is ``name{labels} value`` with a finite value);
3. when a campaign JSON (``savat campaign --format json``) is given,
   the registry counters in the metrics file equal the matrix's
   ``metadata["execution"]`` values exactly — the metadata is generated
   *from* the registry, so any mismatch means the two views diverged.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path

from repro.obs.trace import validate_trace_file

#: ``name{labels} value`` — one Prometheus text-format sample line.
_SAMPLE_PATTERN = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)

_LABEL_PATTERN = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

#: metadata["execution"] counters and the registry counter behind each.
EXECUTION_COUNTERS = {
    "cache_hits": "savat_cache_hits_total",
    "cache_misses": "savat_cache_misses_total",
    "cells_simulated": "savat_cells_simulated_total",
    "retries": "savat_cell_retries_total",
    "timeouts": "savat_cell_timeouts_total",
    "quarantined": "savat_cache_quarantined_total",
    "resumed": "savat_cells_resumed_total",
}

#: metadata["execution"] scalars backed by registry gauges.
EXECUTION_GAUGES = {
    "workers": "savat_workers",
    "wall_seconds": "savat_wall_seconds",
}

#: execution["trace_cache"] entries and the (metric, labels) behind each.
TRACE_CACHE_COUNTERS = {
    "memory_hits": ("savat_trace_cache_hits_total", (("tier", "memory"),)),
    "shm_hits": ("savat_trace_cache_hits_total", (("tier", "shm"),)),
    "disk_hits": ("savat_trace_cache_hits_total", (("tier", "disk"),)),
    "misses": ("savat_trace_cache_misses_total", ()),
    "stores": ("savat_trace_cache_stores_total", ()),
    "quarantined": ("savat_trace_cache_quarantined_total", ()),
}

#: execution["ipc"] entries and the registry counter behind each.
IPC_COUNTERS = {
    "sample_bytes": "savat_ipc_sample_bytes_total",
    "bytes_saved": "savat_ipc_bytes_saved_total",
}

#: execution["shm"] entries backed by registry gauges.
SHM_GAUGES = {
    "enabled": "savat_shm_enabled",
    "segments": "savat_shm_segments",
}


def parse_prometheus(text: str) -> tuple[dict, list[str]]:
    """Parse Prometheus text format into ``{(name, labels): value}``.

    Returns the samples (labels as a frozenset of ``(name, value)``
    pairs) and a list of parse errors; an empty error list means every
    non-comment line was a well-formed sample with a finite value.
    """
    samples: dict = {}
    errors: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_PATTERN.match(line)
        if match is None:
            errors.append(f"line {number}: not a sample line: {line!r}")
            continue
        labels = frozenset(
            (m.group("name"), m.group("value"))
            for m in _LABEL_PATTERN.finditer(match.group("labels") or "")
        )
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            errors.append(f"line {number}: unparseable value {raw!r}")
            continue
        if not math.isfinite(value):
            errors.append(f"line {number}: non-finite value {raw!r}")
            continue
        samples[(match.group("name"), labels)] = value
    if not samples and not errors:
        errors.append("metrics file contains no samples")
    return samples, errors


def check_against_execution(samples: dict, execution: dict) -> list[str]:
    """Compare registry samples with a matrix's execution metadata.

    Every counter and gauge the metadata exposes must appear in the
    metrics file with exactly the same value (the metadata is generated
    from the registry, so equality is exact, not approximate), the
    per-kind fault counters must match both ways, and every per-cell
    timing must round-trip.
    """
    errors: list[str] = []

    def expect(name: str, labels: frozenset, expected: float, what: str) -> None:
        actual = samples.get((name, labels))
        if actual is None:
            errors.append(f"{what}: metric {name} {dict(labels)} is missing")
        elif actual != float(expected):
            errors.append(
                f"{what}: metric {name} {dict(labels)} is {actual!r}, "
                f"execution metadata says {expected!r}"
            )

    for key, metric in EXECUTION_COUNTERS.items():
        expect(metric, frozenset(), execution[key], key)
    for key, metric in EXECUTION_GAUGES.items():
        expect(metric, frozenset(), execution[key], key)
    # Nested trace-cache counters (absent in matrices from releases that
    # predate the trace cache; skipped rather than failed there).
    trace_cache = execution.get("trace_cache")
    if trace_cache is not None:
        for key, (metric, labels) in TRACE_CACHE_COUNTERS.items():
            if key not in trace_cache:
                # Counters added after the matrix was written (e.g.
                # shm_hits) are skipped, not failed.
                continue
            expect(
                metric,
                frozenset(labels),
                trace_cache[key],
                f"trace_cache[{key}]",
            )
    # Shared-memory plane sections (absent in matrices from releases
    # that predate it; skipped rather than failed there).
    ipc = execution.get("ipc")
    if ipc is not None:
        for key, metric in IPC_COUNTERS.items():
            expect(metric, frozenset(), ipc[key], f"ipc[{key}]")
    shm = execution.get("shm")
    if shm is not None:
        for key, metric in SHM_GAUGES.items():
            expect(metric, frozenset(), shm[key], f"shm[{key}]")
    scheduling = execution.get("scheduling")
    if scheduling is not None and "tail_seconds" in scheduling:
        expect(
            "savat_sched_tail_seconds",
            frozenset(),
            scheduling["tail_seconds"],
            "scheduling[tail_seconds]",
        )
    faults = execution.get("faults_injected") or {}
    for kind, count in faults.items():
        expect(
            "savat_faults_injected_total",
            frozenset({("kind", kind)}),
            count,
            f"faults_injected[{kind}]",
        )
    recorded_kinds = {
        dict(labels).get("kind")
        for (name, labels) in samples
        if name == "savat_faults_injected_total"
    }
    for kind in recorded_kinds - set(faults):
        errors.append(
            f"metric savat_faults_injected_total has kind {kind!r} absent "
            "from execution metadata"
        )
    for pair, seconds in (execution.get("cell_seconds") or {}).items():
        expect(
            "savat_cell_seconds",
            frozenset({("pair", pair)}),
            seconds,
            f"cell_seconds[{pair}]",
        )
    return errors


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.obs.check``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.check",
        description="validate savat trace/metrics observability outputs",
    )
    parser.add_argument("--trace", metavar="FILE", help="JSONL trace to validate")
    parser.add_argument(
        "--metrics", metavar="FILE", help="Prometheus text metrics to validate"
    )
    parser.add_argument(
        "--matrix",
        metavar="FILE",
        help="campaign JSON (savat campaign --format json) to cross-check "
        "metrics counters against",
    )
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    failures: list[str] = []
    if args.trace:
        errors = validate_trace_file(args.trace)
        failures.extend(f"trace: {error}" for error in errors)
        print(f"trace {args.trace}: {'OK' if not errors else 'INVALID'}")
    samples: dict = {}
    if args.metrics:
        text = Path(args.metrics).read_text()
        samples, errors = parse_prometheus(text)
        failures.extend(f"metrics: {error}" for error in errors)
        print(
            f"metrics {args.metrics}: {len(samples)} sample(s), "
            f"{'OK' if not errors else 'INVALID'}"
        )
    if args.matrix:
        if not args.metrics:
            parser.error("--matrix requires --metrics to compare against")
        payload = json.loads(Path(args.matrix).read_text())
        execution = (payload.get("metadata") or {}).get("execution")
        if execution is None:
            failures.append(f"matrix: {args.matrix} has no execution metadata")
        else:
            errors = check_against_execution(samples, execution)
            failures.extend(f"consistency: {error}" for error in errors)
            print(
                f"metrics vs {args.matrix}: "
                f"{'CONSISTENT' if not errors else 'MISMATCH'}"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "EXECUTION_COUNTERS",
    "EXECUTION_GAUGES",
    "IPC_COUNTERS",
    "SHM_GAUGES",
    "TRACE_CACHE_COUNTERS",
    "check_against_execution",
    "main",
    "parse_prometheus",
]
