"""Structured run tracing: versioned JSONL span/event records.

A campaign trace is an append-only JSONL file telling the full story of
one execution: a header binding the trace to the campaign (schema
version plus the campaign's content-hash key), ``event`` records for
point-in-time occurrences (campaign start/end, cache hits and misses,
quarantines, journal resumes, retries, timeouts, fault injections), and
``span_start`` / ``span_end`` pairs for every simulation *attempt*,
identified by the cell's ``(i, j, attempt)`` triple.

Timestamps come from a monotonic clock (``time.monotonic``), so spans
can be subtracted without worrying about wall-clock steps; records are
written strictly in timestamp order by the parent process only.  Worker
processes never write to the trace — they return their span fragments
(worker pid, per-phase seconds, worker-side elapsed time) together with
the cell result, and the parent merges the fragment into the cell's
``span_end`` record.  That keeps the file safe under the process pool
without any cross-process locking.

:func:`validate_trace` is the schema checker used by the golden tests
and by ``python -m repro.obs.check``: header first, known version,
monotone timestamps, every span closed exactly once, and span
identities unique per attempt.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable, Iterable
from pathlib import Path

#: Bump whenever the trace record format changes; the validator rejects
#: traces written by another version instead of reinterpreting them.
TRACE_SCHEMA_VERSION = 1

#: Record kinds a trace may contain.
RECORD_KINDS = ("header", "event", "span_start", "span_end")


class TraceWriter:
    """Streams versioned JSONL trace records to a file.

    The writer is opened by :meth:`start` (which emits the header) and
    closed idempotently by :meth:`close`.  Records are flushed per line,
    so a killed campaign leaves at worst one torn trailing line; the
    validator treats any torn line as an error, which is the correct
    verdict for a trace that claims to describe a completed run.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path).expanduser()
        self.clock = clock
        self._handle = None

    # ------------------------------------------------------------------
    def start(self, **header_fields) -> None:
        """Open the file and write the version-stamped header record."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._write(
            {
                "kind": "header",
                "trace_schema_version": TRACE_SCHEMA_VERSION,
                **header_fields,
            }
        )

    def event(self, name: str, **fields) -> None:
        """Record a point-in-time occurrence."""
        self._write({"kind": "event", "name": name, "ts": self.clock(), **fields})

    def span_start(self, name: str, **identity) -> None:
        """Open a span (e.g. one cell simulation attempt)."""
        self._write(
            {"kind": "span_start", "name": name, "ts": self.clock(), **identity}
        )

    def span_end(self, name: str, status: str = "ok", **fields) -> None:
        """Close a span, recording its outcome status."""
        self._write(
            {
                "kind": "span_end",
                "name": name,
                "ts": self.clock(),
                "status": status,
                **fields,
            }
        )

    def _write(self, record: dict) -> None:
        if self._handle is None:
            raise ValueError("trace writer is not open (call start() first)")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    @property
    def is_open(self) -> bool:
        """Whether :meth:`start` has been called and the file is open."""
        return self._handle is not None

    def close(self) -> None:
        """Close the trace file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Parse every line of a JSONL trace file.

    Raises ``ValueError`` naming the line number on unparseable input —
    a trace handed to the validator must be complete and well-formed.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}: line {number} is not valid JSON: {error}"
                ) from error
    return records


def _span_key(record: dict) -> tuple:
    identity = tuple(
        (field, record[field])
        for field in ("i", "j", "attempt")
        if field in record
    )
    return (record.get("name"), identity)


def validate_trace(records: Iterable[dict]) -> list[str]:
    """Schema-check a trace; returns a list of problems (empty = valid).

    Checks, in order: a single leading header with a known schema
    version; every record carrying a known ``kind`` and (except the
    header) a numeric, non-decreasing ``ts``; every ``span_start``
    carrying a unique ``(name, i, j, attempt)`` identity; every span
    closed by exactly one matching ``span_end`` and no end without a
    start; and a terminal ``campaign_end`` event, which a cleanly
    finished run always writes (even after a fatal cell failure).
    """
    errors: list[str] = []
    records = list(records)
    if not records:
        return ["trace is empty"]
    header = records[0]
    if header.get("kind") != "header":
        errors.append("first record is not a header")
    elif header.get("trace_schema_version") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"unknown trace schema version "
            f"{header.get('trace_schema_version')!r} "
            f"(this validator understands {TRACE_SCHEMA_VERSION})"
        )
    open_spans: dict[tuple, int] = {}
    seen_spans: set[tuple] = set()
    last_ts: float | None = None
    for number, record in enumerate(records[1:], start=2):
        kind = record.get("kind")
        if kind not in RECORD_KINDS:
            errors.append(f"record {number}: unknown kind {kind!r}")
            continue
        if kind == "header":
            errors.append(f"record {number}: duplicate header")
            continue
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"record {number}: missing numeric ts")
        else:
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"record {number}: timestamp {ts} decreases "
                    f"(previous {last_ts})"
                )
            last_ts = ts
        if not record.get("name"):
            errors.append(f"record {number}: missing name")
            continue
        if kind == "span_start":
            key = _span_key(record)
            if key in seen_spans:
                errors.append(
                    f"record {number}: duplicate span identity {key}"
                )
            seen_spans.add(key)
            open_spans[key] = number
        elif kind == "span_end":
            key = _span_key(record)
            if key not in open_spans:
                errors.append(
                    f"record {number}: span_end without span_start {key}"
                )
            else:
                del open_spans[key]
    for key, number in open_spans.items():
        errors.append(f"span opened at record {number} never closed: {key}")
    tail = records[-1]
    if not (tail.get("kind") == "event" and tail.get("name") == "campaign_end"):
        errors.append("trace does not finish with a campaign_end event")
    return errors


def validate_trace_file(path: str | os.PathLike) -> list[str]:
    """Read and :func:`validate_trace` a JSONL trace file."""
    try:
        records = read_trace(path)
    except (OSError, ValueError) as error:
        return [str(error)]
    return validate_trace(records)


__all__ = [
    "RECORD_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceWriter",
    "read_trace",
    "validate_trace",
    "validate_trace_file",
]
