"""Observability for campaign execution: metrics, tracing, progress.

This package is the single instrumentation layer of the campaign
executor.  It replaces the ad-hoc counters that used to live as loose
integers on ``CampaignStats``, the bespoke ``record_phase_seconds``
side channel, and the post-hoc-only CLI summary with three composable
pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  and histograms with labels, exported as Prometheus text
  (``--metrics-out``) or a JSON snapshot; ``matrix.metadata["execution"]``
  is generated *from* this registry, so the existing metadata shape is
  a view over the metrics, not a parallel bookkeeping system.
* :class:`~repro.obs.trace.TraceWriter` — versioned JSONL span/event
  records (``--trace``) with monotonic timestamps and per-attempt cell
  identities; workers return span fragments with their results and the
  parent merges and writes, so the file is pool-safe by construction.
* :class:`~repro.obs.progress.ProgressReporter` — a live status line
  (done/total, EWMA ETA, retry/timeout tickers) refreshed on every cell
  completion (``--progress``).

:class:`CampaignObservability` bundles the three behind the hook
methods the executor calls (``campaign_start``, ``cell_start``,
``cell_end``, ``cache_hit``, ``fault_injected``, ...), so execution
code states *what happened* once and every backend renders it its own
way.  A default instance (registry only, no trace/progress/file
output) costs a few dict operations per cell and is always installed,
which is what keeps the metadata and the metrics structurally
identical.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TextIO

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceWriter, validate_trace

#: Environment variable naming the Prometheus text file to write
#: (equivalent to ``savat campaign --metrics-out FILE``).
METRICS_OUT_ENVIRONMENT_VARIABLE = "SAVAT_METRICS_OUT"

#: Environment variable naming the JSONL trace file to write
#: (equivalent to ``savat campaign --trace FILE``).
TRACE_ENVIRONMENT_VARIABLE = "SAVAT_TRACE"


class CampaignObservability:
    """Bundles metrics, tracing, and progress behind executor hooks.

    Parameters
    ----------
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` to record into;
        a fresh one is created when omitted.
    trace:
        Trace destination: a path (a :class:`TraceWriter` is created)
        or a pre-built writer.  ``None`` disables tracing.
    metrics_out:
        Path to write the registry's Prometheus text to when the
        campaign ends (written even after a fatal cell failure, so a
        crashed run still leaves its counters behind).
    progress:
        ``True``/``False`` force the live progress line on/off; ``None``
        auto-detects (render only on a terminal).
    progress_stream:
        Stream the progress line writes to (default ``stderr``).
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceWriter | str | os.PathLike | None = None,
        metrics_out: str | os.PathLike | None = None,
        progress: bool | None = False,
        progress_stream: TextIO | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if trace is not None and not isinstance(trace, TraceWriter):
            trace = TraceWriter(trace)
        self.trace = trace
        self.metrics_out = Path(metrics_out) if metrics_out is not None else None
        self.progress_setting = progress
        self.progress_stream = progress_stream
        self.progress: ProgressReporter | None = None
        self._ended = False

    @classmethod
    def from_environment(cls, environ: dict | None = None) -> "CampaignObservability":
        """Build one from ``SAVAT_TRACE`` / ``SAVAT_METRICS_OUT``."""
        environ = os.environ if environ is None else environ
        return cls(
            trace=environ.get(TRACE_ENVIRONMENT_VARIABLE) or None,
            metrics_out=environ.get(METRICS_OUT_ENVIRONMENT_VARIABLE) or None,
        )

    # ------------------------------------------------------------------
    # Campaign lifecycle
    # ------------------------------------------------------------------
    def campaign_start(self, total_cells: int, **header_fields) -> None:
        """Open the trace and progress line for one campaign execution."""
        self._ended = False
        if self.trace is not None:
            self.trace.start(total_cells=total_cells, **header_fields)
            self.trace.event("campaign_start", total_cells=total_cells)
        if self.progress_setting is not False:
            self.progress = ProgressReporter(
                total_cells,
                stream=self.progress_stream,
                enabled=self.progress_setting,
            )

    def campaign_end(self, status: str = "ok", wall_seconds: float = 0.0) -> None:
        """Close the trace/progress and write the metrics file (idempotent)."""
        if self._ended:
            return
        self._ended = True
        if self.progress is not None:
            self.progress.close()
        if self.trace is not None and self.trace.is_open:
            self.trace.event(
                "campaign_end", status=status, wall_seconds=float(wall_seconds)
            )
            self.trace.close()
        if self.metrics_out is not None:
            self.metrics_out.parent.mkdir(parents=True, exist_ok=True)
            self.metrics_out.write_text(self.metrics.to_prometheus())

    # ------------------------------------------------------------------
    # Cell lifecycle (one span per simulation attempt)
    # ------------------------------------------------------------------
    def cell_start(self, i: int, j: int, attempt: int, pair: str) -> None:
        """A simulation attempt was dispatched (serial or to a worker)."""
        if self.trace is not None:
            self.trace.span_start("cell", i=i, j=j, attempt=attempt, pair=pair)

    def cell_end(
        self,
        i: int,
        j: int,
        attempt: int,
        status: str,
        elapsed_s: float | None = None,
        fragment: dict | None = None,
        error: str | None = None,
    ) -> None:
        """A simulation attempt finished (ok / error / timeout / failed).

        ``fragment`` is the worker-returned span fragment (worker pid,
        worker-side elapsed time, per-phase seconds) merged into the
        record by the parent.
        """
        if self.trace is not None:
            fields: dict = {"i": i, "j": j, "attempt": attempt}
            if elapsed_s is not None:
                fields["elapsed_s"] = float(elapsed_s)
            if fragment:
                fields["fragment"] = fragment
            if error is not None:
                fields["error"] = error
            self.trace.span_end("cell", status=status, **fields)

    def cell_completed(self, pair: str, elapsed_s: float, done: int, total: int) -> None:
        """A cell reached its final state (simulated, cached, or resumed)."""
        if self.progress is not None:
            self.progress.cell_completed(pair, elapsed_s)

    def cell_retry(self, i: int, j: int, next_attempt: int, reason: str) -> None:
        """A failed or timed-out attempt was re-queued."""
        if self.trace is not None:
            self.trace.event(
                "cell_retry", i=i, j=j, attempt=next_attempt, reason=reason
            )
        if self.progress is not None:
            self.progress.note_retry()

    def cell_timeout(self, i: int, j: int, attempt: int, budget_s: float) -> None:
        """An attempt exceeded the per-cell wall-clock budget."""
        if self.trace is not None:
            self.trace.event(
                "cell_timeout", i=i, j=j, attempt=attempt, budget_s=float(budget_s)
            )
        if self.progress is not None:
            self.progress.note_timeout()

    # ------------------------------------------------------------------
    # Cache, journal, and fault events
    # ------------------------------------------------------------------
    def cache_hit(self, i: int, j: int) -> None:
        """A cell was served from the on-disk result cache."""
        if self.trace is not None:
            self.trace.event("cache_hit", i=i, j=j)

    def cache_miss(self, i: int, j: int) -> None:
        """A cell was absent from (or unusable in) the result cache."""
        if self.trace is not None:
            self.trace.event("cache_miss", i=i, j=j)

    def cache_quarantine(self, i: int, j: int) -> None:
        """A corrupt cache entry was moved to the quarantine directory."""
        if self.trace is not None:
            self.trace.event("cache_quarantine", i=i, j=j)

    def trace_cache(self, i: int, j: int, delta: dict) -> None:
        """One cell's kernel-trace-cache counter delta (hits, misses,
        stores, quarantines — see
        :meth:`repro.core.trace_cache.TraceCache.counters`).  Emitted
        only when the cell touched the trace cache at all."""
        if self.trace is not None and any(delta.values()):
            self.trace.event(
                "trace_cache",
                i=i,
                j=j,
                **{name: int(value) for name, value in delta.items()},
            )

    def journal_resume(self, i: int, j: int) -> None:
        """A completed cell was restored from the campaign journal."""
        if self.trace is not None:
            self.trace.event("journal_resume", i=i, j=j)

    def fault_injected(
        self,
        fault_kind: str,
        i: int,
        j: int,
        attempt: int | None = None,
        **fields,
    ) -> None:
        """An injected fault fired (testing/debugging campaigns only).

        Call as ``fault_injected(attempt=n, **fault.trace_fields())`` —
        :meth:`repro.core.faults.CellFault.trace_fields` supplies the
        ``fault_kind``/``i``/``j`` identity plus kind-specific extras
        (e.g. the hang duration).
        """
        if self.trace is not None:
            record: dict = {"fault_kind": fault_kind, "i": i, "j": j, **fields}
            if attempt is not None:
                record["attempt"] = attempt
            self.trace.event("fault_injected", **record)


__all__ = [
    "METRICS_OUT_ENVIRONMENT_VARIABLE",
    "TRACE_ENVIRONMENT_VARIABLE",
    "TRACE_SCHEMA_VERSION",
    "CampaignObservability",
    "MetricsRegistry",
    "ProgressReporter",
    "TraceWriter",
    "validate_trace",
]
