"""Metrics registry: named counters, gauges, and histograms with labels.

The campaign executor used to keep its instrumentation as loose integers
on ``CampaignStats`` and ad-hoc dicts threaded through return values.
This module gives those counters a single home — a
:class:`MetricsRegistry` of named metrics, each optionally carrying a
fixed set of label names (``machine``, ``phase``, ``pair``, ``worker``,
...) — plus two export surfaces:

* :meth:`MetricsRegistry.to_prometheus` renders the registry in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
  one ``name{label="value"} value`` sample per labelled child, and the
  ``_bucket`` / ``_sum`` / ``_count`` triplet for histograms), which is
  what ``savat campaign --metrics-out FILE`` writes;
* :meth:`MetricsRegistry.snapshot` returns the same data as a
  JSON-ready mapping, which is how ``matrix.metadata["execution"]`` is
  generated *from* the registry instead of alongside it.

The implementation is dependency-free and deliberately small: three
metric kinds, insertion-ordered children (so per-cell series keep the
campaign's completion order), and strict name/label validation so a
typo fails at registration time rather than producing a silent second
time series.
"""

from __future__ import annotations

import json
import math
import re
from collections.abc import Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

#: Metric and label names must be valid Prometheus identifiers.
_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets, tuned for per-cell wall times (seconds).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0,
)


def _check_name(name: str, what: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ConfigurationError(
            f"invalid {what} {name!r}; expected [a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value in Prometheus text form.

    Integral values print without a fractional part so counter samples
    stay exactly comparable with the integer counters in
    ``matrix.metadata["execution"]``; non-integral values use ``repr``
    so a round-trip through the text format is lossless.
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Child:
    """One labelled time series of a metric family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def get(self) -> float:
        """Current value of this series."""
        return self.value


class _CounterChild(_Child):
    """A monotonically increasing labelled series."""

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        self.value += amount


class _GaugeChild(_Child):
    """A labelled series that can be set to any value."""

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount


class _HistogramChild:
    """One labelled histogram series.

    ``bucket_counts`` stores per-bucket (non-cumulative) counts; the
    Prometheus export cumulates them into the ``le``-labelled samples.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                self.bucket_counts[index] += 1
                break

    def get(self) -> float:
        """The sum of all observations (the family's scalar view)."""
        return self.sum


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
}


class MetricFamily:
    """A named metric with a fixed label schema and labelled children.

    Families are created through :class:`MetricsRegistry` (``counter`` /
    ``gauge`` / ``histogram``); calling :meth:`labels` materializes (or
    returns) the child series for one label-value combination, and the
    mutators (``inc`` / ``set`` / ``observe``) on the family itself act
    on the label-less child, which is the common case for campaign-wide
    counters.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _check_name(name, "metric name")
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(
            _check_name(label, "label name") for label in labelnames
        )
        self.buckets = tuple(sorted(set(float(b) for b in buckets)))
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # A label-less metric exists (at zero) from registration on,
            # so never-incremented counters still export as 0 samples.
            self._children[()] = self._make_child()

    # ------------------------------------------------------------------
    def _make_child(self):
        if self.kind == "histogram":
            return _HistogramChild(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labelvalues: str):
        """The child series for one combination of label values.

        Children are created on first use and iterate in creation order,
        so exports preserve the order events were first observed in.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _unlabelled(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name} has labels {self.labelnames}; "
                "use .labels(...) to pick a series"
            )
        return self.labels()

    # Family-level shortcuts for label-less metrics -------------------
    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series (counters and gauges)."""
        self._unlabelled().inc(amount)

    def set(self, value: float) -> None:
        """Set the label-less series (gauges only)."""
        self._unlabelled().set(value)

    def observe(self, value: float) -> None:
        """Record one observation on the label-less series (histograms)."""
        self._unlabelled().observe(value)

    def value(self, labels: Mapping[str, str] | None = None) -> float:
        """Current value of one series (0 if it was never touched)."""
        if labels is None and not self.labelnames:
            child = self._children.get(())
            return child.get() if child is not None else 0.0
        key = tuple(str((labels or {})[name]) for name in self.labelnames)
        child = self._children.get(key)
        return child.get() if child is not None else 0.0

    def series(self) -> Iterator[tuple[dict[str, str], object]]:
        """Iterate ``(labels, child)`` pairs in creation order."""
        for key, child in self._children.items():
            yield dict(zip(self.labelnames, key)), child


class MetricsRegistry:
    """A collection of metric families with Prometheus and JSON exports.

    Registration is idempotent for an identical schema (same kind, help
    text may differ) and raises :class:`~repro.errors.ConfigurationError`
    on a conflicting re-registration, so two subsystems can safely ask
    for the same counter but can never silently shadow each other.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"metric {name} already registered as {existing.kind} "
                    f"with labels {existing.labelnames}; cannot re-register "
                    f"as {kind} with labels {tuple(labelnames)}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a monotonically increasing counter."""
        return self._register(name, help_text, "counter", labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge (set to arbitrary values)."""
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram with cumulative buckets."""
        return self._register(name, help_text, "histogram", labelnames, buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> MetricFamily:
        """Look up a registered family by name."""
        try:
            return self._families[name]
        except KeyError:
            raise ConfigurationError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterator[MetricFamily]:
        return iter(self._families.values())

    def value(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        """Shortcut for ``registry.get(name).value(labels)``."""
        return self.get(name).value(labels)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render every family in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.series():
                if family.kind == "histogram":
                    lines.extend(self._histogram_lines(family, labels, child))
                else:
                    lines.append(
                        f"{family.name}{self._label_text(labels)} "
                        f"{format_value(child.get())}"
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_text(labels: Mapping[str, str]) -> str:
        if not labels:
            return ""
        rendered = ",".join(
            f'{name}="{_escape_label_value(str(value))}"'
            for name, value in labels.items()
        )
        return "{" + rendered + "}"

    @classmethod
    def _histogram_lines(
        cls, family: MetricFamily, labels: Mapping[str, str], child
    ) -> list[str]:
        lines = []
        cumulative = 0
        for upper, count in zip(child.buckets, child.bucket_counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = format_value(upper)
            lines.append(
                f"{family.name}_bucket{cls._label_text(bucket_labels)} "
                f"{cumulative}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{family.name}_bucket{cls._label_text(inf_labels)} {child.count}"
        )
        lines.append(
            f"{family.name}_sum{cls._label_text(labels)} "
            f"{format_value(child.sum)}"
        )
        lines.append(
            f"{family.name}_count{cls._label_text(labels)} {child.count}"
        )
        return lines

    def snapshot(self) -> dict:
        """JSON-ready mapping of every family and its labelled series."""
        payload: dict = {}
        for family in self._families.values():
            series = []
            for labels, child in family.series():
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": {
                                format_value(upper): count
                                for upper, count in zip(
                                    child.buckets, child.bucket_counts
                                )
                            },
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.get()})
            payload[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return payload

    def to_json(self) -> str:
        """The :meth:`snapshot` mapping serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "format_value",
]
