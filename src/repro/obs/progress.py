"""Live campaign progress for the CLI: done/total, EWMA ETA, tickers.

A long campaign used to be a black box until the final summary printed.
:class:`ProgressReporter` turns cell completions into a single status
line, rewritten in place on a terminal::

    [ 37/121]  30.6%  ETA 64s  retries 1  timeouts 0  last ADD/LDM 0.71s

The ETA comes from an exponentially weighted moving average of the
*completion intervals* observed by the parent process.  Measuring
intervals rather than per-cell simulation time makes the estimate
correct under the process pool for free: with W workers completing
cells concurrently, intervals shrink by roughly W, and the EWMA tracks
whatever throughput the pool actually sustains — including cache-hit
bursts and retry stalls.

The reporter writes to ``stderr`` by default (never ``stdout``, which
may be carrying CSV/JSON output), refreshes on every cell completion,
retry, and timeout, and ends with a newline so the final state stays
visible.  When the stream is not a terminal it stays silent unless
explicitly enabled (``savat campaign --progress``).
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable
from typing import TextIO

#: Smoothing factor of the completion-interval EWMA; 0.25 weights the
#: last ~8 cells, enough to ride out one slow outlier without going
#: stale when throughput genuinely changes (e.g. cache hits run out).
EWMA_ALPHA = 0.25


def format_eta(seconds: float) -> str:
    """Human-compact duration: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 100:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 100:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Renders live campaign progress as one self-rewriting status line.

    Parameters
    ----------
    total:
        Total number of cells in the campaign.
    stream:
        Output stream (default ``sys.stderr``).
    enabled:
        ``True`` forces rendering, ``False`` silences the reporter, and
        ``None`` (default) auto-detects: render only when ``stream`` is
        a terminal.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        total: int,
        stream: TextIO | None = None,
        enabled: bool | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = int(total)
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self.clock = clock
        self.done = 0
        self.retries = 0
        self.timeouts = 0
        self.ewma_interval_s: float | None = None
        self._last_completion: float | None = None
        self._last_pair = ""
        self._last_elapsed_s = 0.0
        self._line_width = 0
        self._closed = False

    # ------------------------------------------------------------------
    def cell_completed(self, pair: str, elapsed_s: float) -> None:
        """Record one finished cell (simulated, cached, or resumed)."""
        now = self.clock()
        if self._last_completion is not None:
            interval = now - self._last_completion
            if self.ewma_interval_s is None:
                self.ewma_interval_s = interval
            else:
                self.ewma_interval_s += EWMA_ALPHA * (
                    interval - self.ewma_interval_s
                )
        self._last_completion = now
        self.done += 1
        self._last_pair = pair
        self._last_elapsed_s = float(elapsed_s)
        self.render()

    def note_retry(self) -> None:
        """Tick the retry counter and refresh the line."""
        self.retries += 1
        self.render()

    def note_timeout(self) -> None:
        """Tick the timeout counter and refresh the line."""
        self.timeouts += 1
        self.render()

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion, or ``None`` before data."""
        if self.ewma_interval_s is None or self.done >= self.total:
            return 0.0 if self.done >= self.total else None
        return self.ewma_interval_s * (self.total - self.done)

    # ------------------------------------------------------------------
    def compose(self) -> str:
        """The current status line (without carriage return/padding)."""
        width = len(str(self.total))
        percent = 100.0 * self.done / self.total if self.total else 100.0
        eta = self.eta_seconds()
        eta_text = format_eta(eta) if eta is not None else "--"
        line = (
            f"[{self.done:>{width}}/{self.total}] {percent:5.1f}%  "
            f"ETA {eta_text}  retries {self.retries}  "
            f"timeouts {self.timeouts}"
        )
        if self._last_pair:
            line += f"  last {self._last_pair} {self._last_elapsed_s:.2f}s"
        return line

    def render(self) -> None:
        """Rewrite the status line in place (no-op when disabled)."""
        if not self.enabled or self._closed:
            return
        line = self.compose()
        padding = " " * max(0, self._line_width - len(line))
        self._line_width = len(line)
        self.stream.write("\r" + line + padding)
        self.stream.flush()

    def close(self) -> None:
        """Finalize: render once more and terminate the line (idempotent)."""
        if not self.enabled or self._closed:
            self._closed = True
            return
        self.render()
        self.stream.write("\n")
        self.stream.flush()
        self._closed = True


__all__ = ["EWMA_ALPHA", "ProgressReporter", "format_eta"]
