"""Alternation-frequency planning.

Section III: "The value of inst_loop_count allows us to control the
number of alternations per second, and we select a value that produces
the desired alternation frequency for our measurements."  Because the
two halves can have very different per-iteration costs (an ADD iteration
is a few cycles, an LDM iteration includes a ~200-cycle off-chip access),
the solver first measures each event's steady-state cycles-per-iteration
with a short primed probe run, then picks the ``inst_loop_count`` whose
full period lands closest to the requested frequency.

Just as on real hardware, the achieved frequency is *not* exactly the
requested one (``inst_loop_count`` is an integer, and cache state drifts
slightly) — this is the frequency shift visible in the paper's Figure 7,
and it is why measurements integrate a +/-1 kHz band instead of a single
spectral bin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.isa.events import InstructionEvent
from repro.uarch.core import Core
from repro.codegen.alternation import (
    AlternationSpec,
    POINTER_REGISTER_A,
    build_probe_program,
    plan_alternation,
)
from repro.codegen.pointers import prime_for_sweep

#: Iteration count used by the cycles-per-iteration probe.
PROBE_ITERATIONS = 64


@dataclass(frozen=True)
class FrequencyPlan:
    """Outcome of alternation-frequency planning for one A/B pair."""

    spec: AlternationSpec
    target_frequency_hz: float
    predicted_frequency_hz: float
    cycles_per_iteration_a: float
    cycles_per_iteration_b: float

    @property
    def predicted_period_cycles(self) -> float:
        """Predicted cycles in one full A+B alternation period."""
        return self.spec.inst_loop_count * (
            self.cycles_per_iteration_a + self.cycles_per_iteration_b
        )

    @property
    def pairs_per_second(self) -> float:
        """A/B instruction pairs executed per second.

        Each alternation period contains ``inst_loop_count`` A
        instructions and the same number of B instructions, i.e.
        ``inst_loop_count`` A/B pairs; the paper divides the measured
        band power by this rate to obtain per-pair signal energy.
        """
        return self.spec.inst_loop_count * self.predicted_frequency_hz


def measure_cycles_per_iteration(
    core: Core,
    event: InstructionEvent,
    iterations: int = PROBE_ITERATIONS,
) -> float:
    """Steady-state cycles per loop iteration for ``event`` on ``core``.

    Runs a primed single-event probe loop and divides out the iteration
    count.  The one-instruction loop preamble (``mov ecx, N``) is
    excluded.
    """
    plan = plan_sweep_for_core(core, event)
    program = build_probe_program(event, iterations, plan, POINTER_REGISTER_A)
    prime_for_sweep(core.hierarchy, plan, is_write=event.is_store)
    core.registers[POINTER_REGISTER_A] = plan.base
    core.registers["eax"] = 173
    result = core.run(program, warm_hierarchy=True)
    preamble_cycles = core.timings.mov_cycles
    return max(result.cycles - preamble_cycles, iterations) / iterations


def plan_sweep_for_core(core: Core, event: InstructionEvent):
    """Sweep plan for ``event`` using ``core``'s cache geometry."""
    from repro.codegen.pointers import plan_sweep

    return plan_sweep(
        event, core.hierarchy.l1_geometry, core.hierarchy.l2_geometry
    )


def solve_inst_loop_count(
    core: Core,
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    target_frequency_hz: float,
    max_inst_loop_count: int = 1_000_000,
) -> FrequencyPlan:
    """Choose ``inst_loop_count`` so the alternation lands on the target
    frequency, and return the full plan.

    Raises
    ------
    MeasurementError
        If the target frequency is not positive, or if even a single
        iteration per half would alternate slower than the target allows
        (i.e. the requested frequency is too high for this pair on this
        machine).
    """
    if target_frequency_hz <= 0:
        raise MeasurementError(
            f"alternation frequency must be positive, got {target_frequency_hz}"
        )
    cpi_a = measure_cycles_per_iteration(core, event_a)
    cpi_b = measure_cycles_per_iteration(core, event_b)
    period_cycles_target = core.clock_hz / target_frequency_hz
    raw_count = period_cycles_target / (cpi_a + cpi_b)
    if raw_count < 0.5:
        raise MeasurementError(
            f"cannot alternate {event_a.name}/{event_b.name} at "
            f"{target_frequency_hz:.0f} Hz: one iteration pair already takes "
            f"{cpi_a + cpi_b:.0f} cycles ({core.clock_hz / (cpi_a + cpi_b):.0f} Hz max)"
        )
    inst_loop_count = min(max(round(raw_count), 1), max_inst_loop_count)
    spec = plan_alternation(
        event_a,
        event_b,
        core.hierarchy.l1_geometry,
        core.hierarchy.l2_geometry,
        inst_loop_count,
    )
    predicted_period = inst_loop_count * (cpi_a + cpi_b)
    predicted_frequency = core.clock_hz / predicted_period
    return FrequencyPlan(
        spec=spec,
        target_frequency_hz=target_frequency_hz,
        predicted_frequency_hz=predicted_frequency,
        cycles_per_iteration_a=cpi_a,
        cycles_per_iteration_b=cpi_b,
    )
