"""Builder for the paper's A/B alternation microbenchmark (Figure 4).

One :class:`AlternationSpec` describes a measurement kernel: events A
and B, the per-half instruction count (``inst_loop_count``), and the two
pointer sweeps.  :func:`build_alternation_program` emits one full
alternation period — the body of the paper's ``while(1)`` loop — ending
in ``halt`` so the simulator's trace covers exactly one period.  The
measurement code tiles that period to form the seconds-long signal the
spectrum analyzer sees.

The generated code mirrors Figure 4 faithfully:

* lines 2–7: ``inst_loop_count`` iterations of pointer update + the A
  test instruction;
* lines 8–13: the same with the B instruction;
* the pointer-update sequence ``ptr=(ptr&~mask)|((ptr+offset)&mask)`` is
  present *even when the event is non-memory* (e.g. ADD), so the
  not-under-test code is identical for every event — the property that
  makes the A/A diagonal a measurement-error estimate;
* the NOI event simply leaves the test slot empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.events import InstructionEvent
from repro.isa.instructions import Instruction, Opcode, imm, mem, reg
from repro.isa.program import Program
from repro.uarch.cache import CacheGeometry
from repro.codegen.pointers import (
    BASE_ADDRESS_A,
    BASE_ADDRESS_B,
    SweepPlan,
    plan_sweep,
)

#: Registers used by the kernel: A sweeps with esi, B with edi, the loop
#: counter lives in ecx, and ebx/edx are pointer-update scratch.
POINTER_REGISTER_A = "esi"
POINTER_REGISTER_B = "edi"
LOOP_REGISTER = "ecx"


@dataclass(frozen=True)
class AlternationSpec:
    """A fully planned alternation measurement kernel."""

    event_a: InstructionEvent
    event_b: InstructionEvent
    inst_loop_count: int
    sweep_a: SweepPlan
    sweep_b: SweepPlan

    def __post_init__(self) -> None:
        if self.inst_loop_count < 1:
            raise ConfigurationError(
                f"inst_loop_count must be >= 1, got {self.inst_loop_count}"
            )

    @property
    def name(self) -> str:
        """Readable kernel name, e.g. ``"ADD/LDM x128"``."""
        return f"{self.event_a.name}/{self.event_b.name} x{self.inst_loop_count}"

    def initial_registers(self) -> dict[str, int]:
        """Register values the core must hold before running the kernel."""
        return {
            POINTER_REGISTER_A: self.sweep_a.base,
            POINTER_REGISTER_B: self.sweep_b.base,
            "eax": 173,  # non-zero so idiv has a benign divisor
            "ebx": 0,
            "ecx": 0,
            "edx": 0,
        }


def plan_alternation(
    event_a: InstructionEvent,
    event_b: InstructionEvent,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
    inst_loop_count: int,
) -> AlternationSpec:
    """Plan sweeps for both halves and bundle them into a spec.

    A and B use disjoint base addresses so each half's accesses hit
    "separate groups of cache blocks", as Section III requires.
    """
    return AlternationSpec(
        event_a=event_a,
        event_b=event_b,
        inst_loop_count=inst_loop_count,
        sweep_a=plan_sweep(event_a, l1_geometry, l2_geometry, base=BASE_ADDRESS_A),
        sweep_b=plan_sweep(event_b, l1_geometry, l2_geometry, base=BASE_ADDRESS_B),
    )


def pointer_update_instructions(
    pointer_register: str, plan: SweepPlan, scratch1: str = "ebx", scratch2: str = "edx"
) -> list[Instruction]:
    """Emit ``ptr = (ptr & ~mask) | ((ptr + offset) & mask)``.

    Six instructions, identical in shape for every event (only the mask
    and offset constants differ, and those are immediates).
    """
    mask = plan.mask
    inverse_mask = mask ^ 0xFFFFFFFF
    return [
        Instruction(Opcode.LEA, dest=reg(scratch1), src=mem(pointer_register, displacement=plan.offset)),
        Instruction(Opcode.AND, dest=reg(scratch1), src=imm(mask)),
        Instruction(Opcode.MOV, dest=reg(scratch2), src=reg(pointer_register)),
        Instruction(Opcode.AND, dest=reg(scratch2), src=imm(inverse_mask)),
        Instruction(Opcode.OR, dest=reg(scratch2), src=reg(scratch1)),
        Instruction(Opcode.MOV, dest=reg(pointer_register), src=reg(scratch2)),
    ]


def build_half_program(
    event: InstructionEvent,
    inst_loop_count: int,
    plan: SweepPlan,
    pointer_register: str,
    tag: str,
) -> Program:
    """Build one half of the alternation: lines 2–7 (or 8–13) of Figure 4.

    The half is a counted loop: ``mov ecx, N`` followed by
    ``inst_loop_count`` iterations of pointer update, the test slot, and
    the loop bookkeeping (``dec ecx; jnz``).
    """
    loop_label = f"{tag}_loop"
    instructions: list[Instruction] = [
        Instruction(Opcode.MOV, dest=reg(LOOP_REGISTER), src=imm(inst_loop_count)),
    ]
    body = pointer_update_instructions(pointer_register, plan)
    test = event.test_instruction(pointer_register)

    first = body[0]
    instructions.append(
        Instruction(
            first.opcode,
            dest=first.dest,
            src=first.src,
            label=loop_label,
        )
    )
    instructions.extend(body[1:])
    if test is not None:
        instructions.append(test)
    instructions.append(Instruction(Opcode.DEC, dest=reg(LOOP_REGISTER)))
    instructions.append(Instruction(Opcode.JNZ, target=loop_label))
    return Program(instructions, name=f"{tag}:{event.name}")


def build_alternation_program(spec: AlternationSpec) -> Program:
    """One full alternation period (A half, then B half), ending in halt."""
    half_a = build_half_program(
        spec.event_a, spec.inst_loop_count, spec.sweep_a, POINTER_REGISTER_A, tag="a"
    )
    half_b = build_half_program(
        spec.event_b, spec.inst_loop_count, spec.sweep_b, POINTER_REGISTER_B, tag="b"
    )
    instructions = list(half_a.instructions) + list(half_b.instructions)
    instructions.append(Instruction(Opcode.HALT))
    return Program(instructions, name=spec.name)


def build_probe_program(
    event: InstructionEvent,
    iterations: int,
    plan: SweepPlan,
    pointer_register: str = POINTER_REGISTER_A,
) -> Program:
    """A single-event loop used to measure steady-state cycles/iteration.

    The alternation-frequency solver runs this probe (with the hierarchy
    primed) to learn each event's per-iteration cost before choosing
    ``inst_loop_count``.
    """
    half = build_half_program(event, iterations, plan, pointer_register, tag="probe")
    instructions = list(half.instructions)
    instructions.append(Instruction(Opcode.HALT))
    return Program(instructions, name=f"probe:{event.name}")
