"""Measurement-kernel generation: the Figure 4 alternation code."""

from repro.codegen.alternation import (
    AlternationSpec,
    LOOP_REGISTER,
    POINTER_REGISTER_A,
    POINTER_REGISTER_B,
    build_alternation_program,
    build_half_program,
    build_probe_program,
    plan_alternation,
    pointer_update_instructions,
)
from repro.codegen.microarch import (
    BRH,
    BRM,
    LFSR_REGISTER,
    LFSR_SEED,
    MicroarchEvent,
    build_microarch_half,
    get_microarch_event,
    lfsr_update_instructions,
)
from repro.codegen.frequency import (
    FrequencyPlan,
    PROBE_ITERATIONS,
    measure_cycles_per_iteration,
    solve_inst_loop_count,
)
from repro.codegen.pointers import (
    BASE_ADDRESS_A,
    BASE_ADDRESS_B,
    SweepPlan,
    footprint_bytes,
    plan_sweep,
    prime_for_sweep,
)

__all__ = [
    "AlternationSpec",
    "BRH",
    "BRM",
    "LFSR_REGISTER",
    "LFSR_SEED",
    "MicroarchEvent",
    "build_microarch_half",
    "get_microarch_event",
    "lfsr_update_instructions",
    "BASE_ADDRESS_A",
    "BASE_ADDRESS_B",
    "FrequencyPlan",
    "LOOP_REGISTER",
    "POINTER_REGISTER_A",
    "POINTER_REGISTER_B",
    "PROBE_ITERATIONS",
    "SweepPlan",
    "build_alternation_program",
    "build_half_program",
    "build_probe_program",
    "footprint_bytes",
    "measure_cycles_per_iteration",
    "plan_alternation",
    "plan_sweep",
    "pointer_update_instructions",
    "prime_for_sweep",
    "solve_inst_loop_count",
]
