"""Pointer-sweep planning: footprints, masks, and cache pre-conditioning.

The paper's kernel (Figure 4) updates the access pointer every iteration
with ``ptr = (ptr & ~mask) | ((ptr + offset) & mask)`` so the memory
access "repeatedly sweeps over an array of appropriate size (fits in L1
cache, does not fit in L1 but fits in L2 cache, or does not fit in L2)".
This module decides those array sizes for a given cache geometry, builds
the mask/offset constants, and can install the sweep's steady-state
cache contents directly so a measurement starts in the same regime the
paper's free-running loop reaches after its warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.events import Footprint, InstructionEvent
from repro.uarch.cache import Cache, CacheGeometry
from repro.uarch.hierarchy import MemoryHierarchy

#: Base virtual address of the A half's array.  A and B use disjoint
#: regions so their sweeps touch "separate groups of cache blocks"
#: (Section III).
BASE_ADDRESS_A = 0x1000_0000

#: Base virtual address of the B half's array.
BASE_ADDRESS_B = 0x4000_0000


def footprint_bytes(
    event: InstructionEvent,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
) -> int:
    """Array size (bytes) whose cyclic sweep produces ``event``'s cache
    behaviour on the given cache geometry.

    * L1 events sweep half the L1 so every access hits L1 (the other
      half leaves room for the B array and incidental state).
    * L2 events sweep an array at least 4x the L1 but at most half the
      L2, so every access misses L1 and hits L2.
    * Memory events sweep twice the L2, so a cyclic LRU sweep misses
      both levels on every access.
    * Non-memory events get a nominal L1-class footprint: the pointer
      update code still runs (identical surrounding code), but the test
      slot performs no access.
    """
    if event.footprint in (Footprint.L1, Footprint.NONE):
        return l1_geometry.size_bytes // 2
    if event.footprint is Footprint.L2:
        size = max(4 * l1_geometry.size_bytes, l2_geometry.size_bytes // 16)
        size = min(size, l2_geometry.size_bytes // 2)
        if size <= l1_geometry.size_bytes:
            raise ConfigurationError(
                "cannot construct an L2-resident footprint: L1 "
                f"({l1_geometry.size_bytes} B) too close to L2 "
                f"({l2_geometry.size_bytes} B)"
            )
        return size
    if event.footprint is Footprint.MEMORY:
        return 2 * l2_geometry.size_bytes
    raise ConfigurationError(f"unknown footprint {event.footprint!r}")


@dataclass(frozen=True)
class SweepPlan:
    """Constants describing one pointer sweep.

    ``mask`` selects the bits that wrap within the array; the update
    ``ptr = (ptr & ~mask) | ((ptr + offset) & mask)`` then cycles the
    pointer through ``footprint // offset`` line-aligned slots starting
    at ``base``.
    """

    base: int
    footprint: int
    offset: int

    def __post_init__(self) -> None:
        if self.footprint <= 0 or (self.footprint & (self.footprint - 1)) != 0:
            raise ConfigurationError(
                f"sweep footprint must be a positive power of two, got {self.footprint}"
            )
        if self.offset <= 0 or self.footprint % self.offset != 0:
            raise ConfigurationError(
                f"sweep offset {self.offset} must evenly divide footprint {self.footprint}"
            )
        if self.base % self.footprint != 0:
            raise ConfigurationError(
                f"sweep base {self.base:#x} must be aligned to footprint {self.footprint:#x}"
            )

    @property
    def mask(self) -> int:
        """Wrap mask: footprint - 1."""
        return self.footprint - 1

    @property
    def num_slots(self) -> int:
        """Number of distinct addresses the sweep visits."""
        return self.footprint // self.offset

    def addresses(self, start: int | None = None) -> list[int]:
        """The full cycle of addresses, beginning after ``start``.

        ``start`` defaults to :attr:`base`; the returned list has
        :attr:`num_slots` entries and ends back at ``start``.
        """
        pointer = self.base if start is None else start
        sequence: list[int] = []
        for _ in range(self.num_slots):
            pointer = (pointer & ~self.mask) | ((pointer + self.offset) & self.mask)
            sequence.append(pointer)
        return sequence


def advance_pointer(pointer: int, mask: int, offset: int, steps: int) -> int:
    """Pointer value after ``steps`` applications of the kernel's update.

    One update is ``ptr = (ptr & ~mask) | ((ptr + offset) & mask)``.
    Because ``mask`` spans a power-of-two footprint, the low bits evolve
    as ``(low + k * offset) mod (mask + 1)`` while the high bits are
    fixed, so any number of steps collapses to a single expression.
    """
    return (pointer & ~mask) | ((pointer + steps * offset) & mask)


def sweep_address_stream(plan: SweepPlan, start_pointer: int, count: int):
    """The next ``count`` addresses a sweep visits after ``start_pointer``.

    Returns an int64 array: element ``k`` is the pointer after ``k + 1``
    kernel updates (the loop updates the pointer *before* each access,
    so the stream starts one step past ``start_pointer``).  This is the
    vectorized equivalent of iterating the scalar update ``count`` times.
    """
    high = start_pointer & ~plan.mask
    low = start_pointer & plan.mask
    steps = np.arange(1, count + 1, dtype=np.int64)
    return high | ((low + steps * plan.offset) & plan.mask)


def plan_sweep(
    event: InstructionEvent,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
    base: int = BASE_ADDRESS_A,
) -> SweepPlan:
    """Build the :class:`SweepPlan` for ``event`` on the given caches."""
    footprint = footprint_bytes(event, l1_geometry, l2_geometry)
    aligned_base = (base // footprint) * footprint
    return SweepPlan(base=aligned_base, footprint=footprint, offset=l1_geometry.line_bytes)


def _install_lines(cache: Cache, line_addresses: list[int], dirty: bool) -> None:
    """Install ``line_addresses`` into ``cache`` in LRU-to-MRU order.

    Uses the normal access path (so LRU bookkeeping is honest) but with
    statistics subtracted afterwards, leaving counters untouched.
    """
    before = vars(cache.stats).copy()
    cache.access_block(line_addresses, is_write=dirty)
    for key, value in before.items():
        setattr(cache.stats, key, value)


def prime_for_sweep(
    hierarchy: MemoryHierarchy,
    plan: SweepPlan,
    is_write: bool,
    reset: bool = True,
) -> None:
    """Pre-condition ``hierarchy`` to the sweep's steady state.

    After priming, a cyclic sweep over ``plan``'s addresses behaves from
    the first access as the paper's free-running loop does after warm-up:

    * a footprint that fits L1 hits L1 on every access (dirty for
      stores);
    * a footprint that fits L2 but not L1 misses L1 and hits L2 on
      every access, with stores producing a dirty L1 victim each time;
    * a footprint exceeding L2 misses both levels on every access, with
      the attendant dirty write-backs for stores.

    Priming fills each level with the most-recently-swept lines that fit
    it, in sweep order, so LRU victims match steady state.

    Pass ``reset=False`` to prime a second sweep on top of an earlier
    one (the alternation kernel's two halves coexist in the caches; the
    half primed *last* holds the most-recently-used lines, so prime in
    execution order).
    """
    if reset:
        hierarchy.reset()
    line = hierarchy.line_bytes
    sweep_lines = [plan.base + slot * line for slot in range(plan.footprint // line)]

    l2_capacity = hierarchy.l2_geometry.size_bytes // line
    l1_capacity = hierarchy.l1_geometry.size_bytes // line

    # Most recently touched lines are at the *end* of the sweep cycle
    # (the sweep restarts at the base next).  Install the tail that fits.
    l2_tail = sweep_lines[-l2_capacity:] if len(sweep_lines) > l2_capacity else sweep_lines
    _install_lines(hierarchy.l2, l2_tail, dirty=is_write and len(sweep_lines) > l2_capacity)

    l1_tail = sweep_lines[-l1_capacity:] if len(sweep_lines) > l1_capacity else sweep_lines
    _install_lines(hierarchy.l1, l1_tail, dirty=is_write)
