"""Physical units, constants, and small conversion helpers.

The SAVAT paper reports its headline quantity in zeptojoules (1 zJ =
1e-21 J) and its spectra in W/Hz, while instruments usually display dBm.
This module centralizes those conversions so magnitudes stay consistent
across the EM model, the instrument models, and the reporting code.
"""

from __future__ import annotations

import math

#: One zeptojoule in joules.  SAVAT values in the paper are O(1) zJ.
ZEPTOJOULE = 1e-21

#: One attojoule in joules (occasionally convenient for larger SAVATs).
ATTOJOULE = 1e-18

#: Boltzmann constant (J/K), used for the thermal noise floor.
BOLTZMANN = 1.380649e-23

#: Reference temperature (K) for thermal noise calculations.
ROOM_TEMPERATURE_K = 290.0

#: Speed of light (m/s), used for near-field/far-field boundary estimates.
SPEED_OF_LIGHT = 299_792_458.0

#: Reference impedance (ohms) used when interpreting antenna voltages as
#: power.  Instruments in this library use a 50-ohm convention.
REFERENCE_IMPEDANCE = 50.0


def joules_to_zeptojoules(energy_j: float) -> float:
    """Convert an energy in joules to zeptojoules."""
    return energy_j / ZEPTOJOULE


def zeptojoules_to_joules(energy_zj: float) -> float:
    """Convert an energy in zeptojoules to joules."""
    return energy_zj * ZEPTOJOULE


def watts_to_dbm(power_w: float) -> float:
    """Convert a power in watts to dBm.

    Raises
    ------
    ValueError
        If ``power_w`` is not strictly positive (dBm is undefined).
    """
    if power_w <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {power_w!r}")
    return 10.0 * math.log10(power_w / 1e-3)


def dbm_to_watts(power_dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return 1e-3 * 10.0 ** (power_dbm / 10.0)


def db(ratio: float) -> float:
    """Express a power ratio in decibels.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert a decibel value back to a power ratio."""
    return 10.0 ** (decibels / 10.0)


def thermal_noise_psd(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """One-sided thermal noise power spectral density kT in W/Hz.

    At room temperature this is about 4e-21 W/Hz (-174 dBm/Hz), several
    orders of magnitude below the instrument floor the paper reports
    (~6e-18 W/Hz in Figure 8), which is why the instrument floor
    dominates the measured A/A diagonals.
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return BOLTZMANN * temperature_k


def voltage_to_power(volts_rms: float, impedance: float = REFERENCE_IMPEDANCE) -> float:
    """Power in watts dissipated by an RMS voltage across ``impedance``."""
    if impedance <= 0.0:
        raise ValueError(f"impedance must be positive, got {impedance!r}")
    return volts_rms**2 / impedance


def power_to_voltage(power_w: float, impedance: float = REFERENCE_IMPEDANCE) -> float:
    """RMS voltage corresponding to ``power_w`` across ``impedance``."""
    if power_w < 0.0:
        raise ValueError(f"power must be non-negative, got {power_w!r}")
    if impedance <= 0.0:
        raise ValueError(f"impedance must be positive, got {impedance!r}")
    return math.sqrt(power_w * impedance)
