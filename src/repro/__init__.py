"""savat-repro: a reproduction of "A Practical Methodology for Measuring
the Side-Channel Signal Available to the Attacker for Instruction-Level
Events" (Callan, Zajic, Prvulovic - MICRO 2014).

The paper's measurements require EM capture hardware; this library
replaces the physical bench with a simulated one - a cycle-level
microarchitectural activity simulator, an EM emanation model calibrated
against the paper's published matrices, and spectrum-analyzer /
oscilloscope instrument models - while implementing the SAVAT metric and
the alternation measurement methodology exactly as published.

Quick start::

    from repro import load_calibrated_machine, measure_savat

    machine = load_calibrated_machine("core2duo", distance_m=0.10)
    result = measure_savat(machine, "ADD", "LDM")
    print(result)   # SAVAT(ADD/LDM) = ... zJ on core2duo at 10 cm

See ``examples/`` for campaigns, distance studies, clustering, and the
RSA key-extraction demo, and ``benchmarks/`` for the per-figure
regeneration harness.
"""

from repro.core.campaign import run_campaign, selected_pairings_means
from repro.core.clustering import find_groups
from repro.core.study import StudyResult, run_study
from repro.core.matrix import SavatMatrix
from repro.core.savat import MeasurementConfig, SavatResult, measure_savat
from repro.core.single_instruction import (
    most_leaky_instructions,
    single_instruction_savat,
)
from repro.errors import (
    AssemblyError,
    CalibrationError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    SimulationError,
)
from repro.isa.events import EVENT_ORDER, PAPER_EVENTS, get_event
from repro.machines.calibrated import CalibratedMachine, load_calibrated_machine
from repro.machines.catalog import MACHINE_NAMES, get_machine
from repro.machines.reference_data import get_reference

__version__ = "1.0.0"

__all__ = [
    "AssemblyError",
    "CalibratedMachine",
    "CalibrationError",
    "ConfigurationError",
    "EVENT_ORDER",
    "MACHINE_NAMES",
    "MeasurementConfig",
    "MeasurementError",
    "PAPER_EVENTS",
    "ReproError",
    "SavatMatrix",
    "SavatResult",
    "SimulationError",
    "StudyResult",
    "__version__",
    "find_groups",
    "get_event",
    "get_machine",
    "get_reference",
    "load_calibrated_machine",
    "measure_savat",
    "most_leaky_instructions",
    "run_campaign",
    "run_study",
    "selected_pairings_means",
    "single_instruction_savat",
]
