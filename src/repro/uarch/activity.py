"""Per-cycle, per-component switching-activity traces.

The simulator does not model voltages or currents directly; it records an
abstract *switching activity* quantity for each component on each cycle
(roughly "how many wire/transistor toggles happened here").  The EM
model later projects these traces through per-component coupling
coefficients to obtain the signal at the attacker's antenna.

Recording is two-phase for speed: the core appends lightweight
``(component, start_cycle, duration, amount_per_cycle)`` events to an
:class:`ActivityRecorder` during simulation, and :meth:`ActivityRecorder.finish`
materializes a dense ``[num_components, num_cycles]`` array once at the
end.  Two refinements keep the hot measurement path off the Python
interpreter:

* Steady-state loop replay deposits whole *blocks* of events at once —
  an :class:`ActivityBlock` captured from one loop iteration is replayed
  at later base cycles via :meth:`ActivityRecorder.add_block`, storing
  one ``(block, base_cycle)`` reference instead of re-appending every
  event.
* :meth:`ActivityRecorder.finish` materializes with array operations:
  events are brought into a deterministic lexicographic order and the
  duration-1 majority is deposited with a single unbuffered
  ``np.add.at``; the few longer events (divider occupancy, L2 windows,
  mispredict flushes) are slice-added in that same deterministic order.
  Because the order depends only on the event *multiset*, two runs that
  record the same events — e.g. the reference interpreter and the
  block-replay fast path — materialize bit-identical traces.  (A
  difference-array/cumsum pass for the long events was rejected: cumsum
  leaves ~1-ulp residues on cycles that should be exactly zero.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.uarch.components import (
    COMPONENT_INDEX,
    COMPONENT_ORDER,
    Component,
    NUM_COMPONENTS,
)


@dataclass
class ActivityTrace:
    """Dense activity history: ``data[c, t]`` is component ``c``'s
    switching activity during cycle ``t``.

    Attributes
    ----------
    data:
        Array of shape ``(NUM_COMPONENTS, num_cycles)``, float64.
    clock_hz:
        Clock frequency the cycle axis corresponds to.
    """

    data: np.ndarray
    clock_hz: float

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 2 or self.data.shape[0] != NUM_COMPONENTS:
            raise SimulationError(
                f"activity trace must have shape ({NUM_COMPONENTS}, T), "
                f"got {self.data.shape}"
            )
        if self.clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {self.clock_hz}")

    @property
    def num_cycles(self) -> int:
        """Length of the trace in clock cycles."""
        return self.data.shape[1]

    @property
    def duration_s(self) -> float:
        """Wall-clock duration of the trace in seconds."""
        return self.num_cycles / self.clock_hz

    def component(self, component: Component) -> np.ndarray:
        """The per-cycle activity series of one component (a view)."""
        return self.data[COMPONENT_INDEX[component]]

    def totals(self) -> dict[Component, float]:
        """Total activity per component over the whole trace."""
        sums = self.data.sum(axis=1)
        return {component: float(sums[i]) for i, component in enumerate(COMPONENT_ORDER)}

    def mean_rates(self) -> np.ndarray:
        """Mean activity per cycle for each component (length-C vector)."""
        return self.data.mean(axis=1)

    def window(self, start_cycle: int, end_cycle: int) -> "ActivityTrace":
        """Sub-trace covering cycles ``[start_cycle, end_cycle)``."""
        if not 0 <= start_cycle < end_cycle <= self.num_cycles:
            raise SimulationError(
                f"invalid window [{start_cycle}, {end_cycle}) "
                f"for a {self.num_cycles}-cycle trace"
            )
        return ActivityTrace(self.data[:, start_cycle:end_cycle].copy(), self.clock_hz)

    def downsample(self, factor: int) -> "ActivityTrace":
        """Average the trace over non-overlapping blocks of ``factor`` cycles.

        The trailing partial block, if any, is dropped.  Downsampling is
        used to build the coarse activity envelope that the EM synthesis
        tiles over a full measurement interval.
        """
        if factor < 1:
            raise SimulationError(f"downsample factor must be >= 1, got {factor}")
        usable = (self.num_cycles // factor) * factor
        if usable == 0:
            raise SimulationError(
                f"trace of {self.num_cycles} cycles too short for factor {factor}"
            )
        blocks = self.data[:, :usable].reshape(NUM_COMPONENTS, usable // factor, factor)
        return ActivityTrace(blocks.mean(axis=2), self.clock_hz / factor)

    def project(self, weights: np.ndarray) -> np.ndarray:
        """Project the trace onto field modes: ``weights @ data``.

        Parameters
        ----------
        weights:
            Array of shape ``(num_modes, NUM_COMPONENTS)`` — per-mode,
            per-component coupling strengths.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(num_modes, num_cycles)``: the per-mode
            waveform seen by the antenna before noise.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim == 1:
            weights = weights[np.newaxis, :]
        if weights.shape[-1] != NUM_COMPONENTS:
            raise SimulationError(
                f"projection weights must have {NUM_COMPONENTS} columns, "
                f"got shape {weights.shape}"
            )
        return weights @ self.data


class ActivityBlock:
    """Immutable bundle of activity events with iteration-relative cycles.

    A block is captured once from a recorded loop iteration (component
    indices, cycle *offsets* from the iteration's start cycle, durations,
    and amounts) and replayed many times at different base cycles via
    :meth:`ActivityRecorder.add_block`.
    """

    __slots__ = ("components", "offsets", "durations", "amounts")

    def __init__(
        self,
        components: np.ndarray,
        offsets: np.ndarray,
        durations: np.ndarray,
        amounts: np.ndarray,
    ) -> None:
        self.components = np.asarray(components, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.durations = np.asarray(durations, dtype=np.int64)
        self.amounts = np.asarray(amounts, dtype=np.float64)
        if not (
            self.components.shape
            == self.offsets.shape
            == self.durations.shape
            == self.amounts.shape
        ):
            raise SimulationError("activity block arrays must share one shape")
        if self.offsets.size and int(self.offsets.min()) < 0:
            raise SimulationError("activity block offsets must be non-negative")

    @property
    def num_events(self) -> int:
        """Number of events one replay of this block deposits."""
        return self.components.shape[0]


class ActivityRecorder:
    """Accumulates activity events during simulation.

    Events may extend past the currently known end of the trace (e.g. a
    divider still busy when the program halts); :meth:`finish` clips to
    the final cycle count.
    """

    def __init__(self, clock_hz: float) -> None:
        if clock_hz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self._components: list[int] = []
        self._starts: list[int] = []
        self._durations: list[int] = []
        self._amounts: list[float] = []
        # Block replays, grouped per template: id(block) -> (block, [base cycles]).
        self._block_groups: dict[int, tuple[ActivityBlock, list[int]]] = {}

    def add(
        self,
        component: Component,
        start_cycle: int,
        duration: int,
        amount_per_cycle: float,
    ) -> None:
        """Record ``amount_per_cycle`` activity on ``component`` for
        ``duration`` cycles starting at ``start_cycle``."""
        if duration <= 0 or amount_per_cycle == 0.0:
            return
        if start_cycle < 0:
            raise SimulationError(f"negative start cycle {start_cycle}")
        self._components.append(COMPONENT_INDEX[component])
        self._starts.append(start_cycle)
        self._durations.append(duration)
        self._amounts.append(amount_per_cycle)

    def mark(self) -> int:
        """Position marker for :meth:`extract_block` (current event count)."""
        return len(self._components)

    def extract_block(self, mark: int, base_cycle: int) -> ActivityBlock:
        """Template of the events appended since ``mark``.

        Cycles are stored relative to ``base_cycle`` so the block can be
        replayed at any later iteration via :meth:`add_block`.  The
        recorded events themselves stay in place.
        """
        starts = self._starts[mark:]
        return ActivityBlock(
            components=np.array(self._components[mark:], dtype=np.int64),
            offsets=np.array([s - base_cycle for s in starts], dtype=np.int64),
            durations=np.array(self._durations[mark:], dtype=np.int64),
            amounts=np.array(self._amounts[mark:], dtype=np.float64),
        )

    def add_block(self, block: ActivityBlock, base_cycle: int) -> None:
        """Replay ``block`` with its offsets shifted by ``base_cycle``."""
        if base_cycle < 0:
            raise SimulationError(f"negative block base cycle {base_cycle}")
        group = self._block_groups.get(id(block))
        if group is None:
            self._block_groups[id(block)] = (block, [base_cycle])
        else:
            group[1].append(base_cycle)

    def add_block_batch(self, block: ActivityBlock, base_cycles: np.ndarray) -> None:
        """Replay ``block`` once per entry of ``base_cycles`` (a 1-D int array).

        Equivalent to calling :meth:`add_block` in a loop, without the
        per-call overhead — the steady-state loop replay deposits one
        template at every iteration's start cycle this way.
        """
        base_array = np.ascontiguousarray(base_cycles, dtype=np.int64)
        if base_array.size == 0:
            return
        if int(base_array.min()) < 0:
            raise SimulationError("negative block base cycle in batch")
        bases = base_array.tolist()
        group = self._block_groups.get(id(block))
        if group is None:
            self._block_groups[id(block)] = (block, bases)
        else:
            group[1].extend(bases)

    def _gather(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All events (scalar + expanded blocks) as flat arrays."""
        components = [np.asarray(self._components, dtype=np.int64)]
        starts = [np.asarray(self._starts, dtype=np.int64)]
        durations = [np.asarray(self._durations, dtype=np.int64)]
        amounts = [np.asarray(self._amounts, dtype=np.float64)]
        for block, bases in self._block_groups.values():
            if not block.num_events or not bases:
                continue
            base_array = np.asarray(bases, dtype=np.int64)
            instances = base_array.shape[0]
            starts.append((base_array[:, None] + block.offsets[None, :]).ravel())
            components.append(np.tile(block.components, instances))
            durations.append(np.tile(block.durations, instances))
            amounts.append(np.tile(block.amounts, instances))
        return (
            np.concatenate(components),
            np.concatenate(starts),
            np.concatenate(durations),
            np.concatenate(amounts),
        )

    def finish(self, num_cycles: int) -> ActivityTrace:
        """Materialize the dense :class:`ActivityTrace`.

        Events are deposited in a deterministic lexicographic order that
        depends only on the recorded event multiset, so any two recording
        strategies that produce the same events (per-instruction appends
        vs block replay) materialize bit-identical traces.

        Parameters
        ----------
        num_cycles:
            Final length of the trace; events are clipped to this bound.
        """
        if num_cycles <= 0:
            raise SimulationError(f"trace length must be positive, got {num_cycles}")
        data = np.zeros((NUM_COMPONENTS, num_cycles), dtype=np.float64)
        components, starts, durations, amounts = self._gather()
        if components.size == 0:
            return ActivityTrace(data, self.clock_hz)

        visible = starts < num_cycles
        if not visible.all():
            components = components[visible]
            starts = starts[visible]
            durations = durations[visible]
            amounts = amounts[visible]
            if components.size == 0:
                return ActivityTrace(data, self.clock_hz)
        lengths = np.minimum(starts + durations, num_cycles) - starts

        order = np.lexsort((amounts, lengths, starts, components))
        components = components[order]
        starts = starts[order]
        lengths = lengths[order]
        amounts = amounts[order]

        single = lengths == 1
        if single.any():
            flat = data.reshape(-1)
            np.add.at(
                flat,
                components[single] * num_cycles + starts[single],
                amounts[single],
            )
        if not single.all():
            rest = ~single
            for component, start, length, amount in zip(
                components[rest].tolist(),
                starts[rest].tolist(),
                lengths[rest].tolist(),
                amounts[rest].tolist(),
            ):
                data[component, start : start + length] += amount
        return ActivityTrace(data, self.clock_hz)
